"""End-to-end vRead tests: shortcut reads, fallback, remote reads, updates."""

import pytest

from repro.metrics.accounting import COPY_VREAD_BUFFER, VHOST_NET
from repro.storage.content import PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))
    bed.sim.run()  # let mount refreshes complete


def vread_read_all(bed, path, request_bytes=64 * 1024):
    def proc():
        source = yield from bed.vread_client.read_file(path, request_bytes)
        return source

    return bed.run(bed.sim.process(proc()))


def open_stream(bed, path):
    def proc():
        stream = yield from bed.vread_client.open(path)
        return stream

    stream = bed.run(bed.sim.process(proc()))
    return stream


def test_colocated_vread_roundtrip(vread_bed):
    payload = PatternSource(300 * 1024, seed=1)
    write(vread_bed, "/f", payload, favored=["dn1"])
    got = vread_read_all(vread_bed, "/f")
    assert got.size == payload.size
    assert got.checksum() == payload.checksum()
    library = vread_bed.manager.library_of(vread_bed.client_vm)
    assert library.reads > 0
    assert library.fallback_denials == 0


def test_vread_bypasses_datanode_process(vread_bed):
    bed = vread_bed
    write(bed, "/f", PatternSource(256 * 1024, seed=2), favored=["dn1"])
    served_before = bed.datanode1.blocks_served
    vread_read_all(bed, "/f")
    # The datanode process never saw the read.
    assert bed.datanode1.blocks_served == served_before


def test_vread_skips_vhost_for_colocated_reads(vread_bed):
    bed = vread_bed
    write(bed, "/f", PatternSource(256 * 1024, seed=3), favored=["dn1"])
    mark = bed.hosts[0].accounting.snapshot()
    vread_read_all(bed, "/f")
    window = bed.hosts[0].accounting.since(mark).by_category()
    assert window.get(VHOST_NET, 0) == 0
    assert window.get(COPY_VREAD_BUFFER, 0) > 0


def test_remote_vread_over_rdma(vread_bed):
    bed = vread_bed
    payload = PatternSource(300 * 1024, seed=4)
    write(bed, "/remote", payload, favored=["dn2"])
    got = vread_read_all(bed, "/remote")
    assert got.checksum() == payload.checksum()
    library = bed.manager.library_of(bed.client_vm)
    assert library.reads > 0 and library.fallback_denials == 0
    # Data crossed the wire from host2.
    assert bed.lan.nic_of(bed.hosts[1]).bytes_sent >= payload.size


def test_remote_vread_over_tcp_transport():
    from tests.conftest import VReadBed

    bed = VReadBed(transport="tcp")
    payload = PatternSource(200 * 1024, seed=5)
    write(bed, "/remote", payload, favored=["dn2"])
    got = vread_read_all(bed, "/remote")
    assert got.checksum() == payload.checksum()
    assert bed.manager.library_of(bed.client_vm).reads > 0


def test_hybrid_read_mixes_local_and_remote(vread_bed):
    bed = vread_bed
    payload = PatternSource(512 * 1024, seed=6)  # exactly 2 blocks

    def proc():
        stream = yield from bed.client.create("/hybrid", spread=True)
        yield from stream.write(payload)
        yield from stream.close()

    bed.run(bed.sim.process(proc()))
    bed.sim.run()
    blocks = bed.namenode.get_blocks("/hybrid")
    locations = [block.locations[0] for block in blocks]
    # Round-robin placement puts blocks on both datanodes.
    assert set(locations) == {"dn1", "dn2"}
    got = vread_read_all(bed, "/hybrid")
    assert got.checksum() == payload.checksum()
    assert bed.manager.library_of(bed.client_vm).fallback_denials == 0


def test_stale_mount_falls_back_to_vanilla(vread_bed):
    bed = vread_bed
    # Plant a block file + metadata *without* the commit notification, so
    # the mount's dentry cache has never seen it.
    bed.namenode.create_file("/sneaky")
    block = bed.namenode.allocate_block("/sneaky", bed.client_vm,
                                        favored=["dn1"])
    path = bed.datanode1.block_path(block.name)
    bed.datanode1_vm.guest_fs.create(path, b"hidden" * 100)
    block.size = 600
    block.committed = True  # bypass commit_block => no observer refresh
    bed.namenode.file("/sneaky").complete = True

    got = vread_read_all(bed, "/sneaky")
    assert got.read(0, got.size) == b"hidden" * 100
    library = bed.manager.library_of(bed.client_vm)
    assert library.fallback_denials > 0          # open returned null
    # And the datanode process served it the vanilla way.
    assert bed.datanode1.blocks_served > 0


def test_commit_notification_makes_new_blocks_visible(vread_bed):
    bed = vread_bed
    service = bed.manager.service_for(bed.hosts[0])
    refreshes_before = service.refreshes
    write(bed, "/f", b"x" * 1000, favored=["dn1"])
    assert service.refreshes > refreshes_before
    mount = bed.hosts[0].mounts[bed.datanode1_vm.image.name]
    block = bed.namenode.get_blocks("/f")[0]
    assert mount.exists(bed.datanode1.block_path(block.name))


def test_vread_update_api_refreshes(vread_bed):
    bed = vread_bed
    library = bed.manager.library_of(bed.client_vm)
    # Create a file invisible to the mount, then vread_update to reveal it.
    path = f"{bed.config.data_dir}/blk_9999"
    bed.datanode1_vm.guest_fs.create(path, b"late block")

    def proc():
        yield from library.vread_update("blk_9999", "dn1")

    bed.run(bed.sim.process(proc()))
    bed.sim.run()
    mount = bed.hosts[0].mounts[bed.datanode1_vm.image.name]
    assert mount.exists(path)


def test_unknown_datanode_open_returns_none(vread_bed):
    bed = vread_bed
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_1", "dn99")
        return vfd

    assert bed.run(bed.sim.process(proc())) is None
    assert library.fallback_denials == 1


def test_sequential_read_closes_vfd_at_block_end(vread_bed):
    bed = vread_bed
    write(bed, "/f", PatternSource(256 * 1024, seed=7), favored=["dn1"])
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        stream = yield from bed.vread_client.open("/f")
        while True:
            piece = yield from stream.read(64 * 1024)
            if piece is None:
                break
        return len(library.vfd_hash)

    # Algorithm 1: descriptor closed when position reaches block size.
    assert bed.run(bed.sim.process(proc())) == 0


def test_pread_keeps_vfd_open_for_reuse(vread_bed):
    bed = vread_bed
    write(bed, "/f", PatternSource(256 * 1024, seed=8), favored=["dn1"])
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        stream = yield from bed.vread_client.open("/f")
        yield from stream.pread(1000, 5000)
        open_after_first = len(library.vfd_hash)
        yield from stream.pread(9000, 5000)
        opens = library.opens
        stream.close()
        return open_after_first, opens, len(library.vfd_hash)

    open_after_first, opens, after_close = bed.run(bed.sim.process(proc()))
    assert open_after_first == 1     # Algorithm 2 keeps it in the hash
    assert opens == 1                # second pread reused the descriptor
    assert after_close == 0          # stream close releases descriptors


def test_vread_pread_spans_blocks(vread_bed):
    bed = vread_bed
    payload = PatternSource(600 * 1024, seed=9)
    write(bed, "/f", payload, favored=["dn1"])

    def proc():
        stream = yield from bed.vread_client.open("/f")
        piece = yield from stream.pread(250 * 1024, 20 * 1024)
        return piece

    piece = bed.run(bed.sim.process(proc()))
    assert piece.read(0, piece.size) == payload.read(250 * 1024, 20 * 1024)


def test_bypass_host_fs_mode_reads_without_mounts():
    from tests.conftest import VReadBed

    bed = VReadBed(bypass_host_fs=True)
    payload = PatternSource(256 * 1024, seed=10)
    write(bed, "/f", payload, favored=["dn1"])
    assert bed.hosts[0].mounts == {}  # no loop mounts in bypass mode
    got = vread_read_all(bed, "/f")
    assert got.checksum() == payload.checksum()
    assert bed.manager.library_of(bed.client_vm).fallback_denials == 0


def test_vread_applies_only_to_reads_not_writes(vread_bed):
    bed = vread_bed
    payload = PatternSource(100 * 1024, seed=11)

    def proc():
        yield from bed.vread_client.write_file("/w", payload, favored=["dn1"])

    bed.run(bed.sim.process(proc()))
    bed.sim.run()
    got = vread_read_all(bed, "/w")
    assert got.checksum() == payload.checksum()
