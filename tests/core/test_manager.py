"""Tests for the VReadManager deployment logic."""

import pytest

from repro.core import VReadManager


def test_transport_validation(hadoop_bed):
    with pytest.raises(ValueError, match="transport"):
        VReadManager(hadoop_bed.namenode, hadoop_bed.network, hadoop_bed.lan,
                     rdma_link=hadoop_bed.rdma, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="RdmaLink"):
        VReadManager(hadoop_bed.namenode, hadoop_bed.network, hadoop_bed.lan,
                     rdma_link=None, transport="rdma")


def test_tcp_transport_needs_no_rdma_link(hadoop_bed):
    manager = VReadManager(hadoop_bed.namenode, hadoop_bed.network,
                           hadoop_bed.lan, transport="tcp")
    assert manager.transport_mode == "tcp"


def test_services_created_per_datanode_host(vread_bed):
    manager = vread_bed.manager
    service1 = manager.service_for(vread_bed.hosts[0])
    service2 = manager.service_for(vread_bed.hosts[1])
    assert service1 is not service2
    assert service1.is_local("dn1") and not service1.is_local("dn2")
    assert service2.is_local("dn2") and not service2.is_local("dn1")


def test_service_for_is_idempotent(vread_bed):
    manager = vread_bed.manager
    assert manager.service_for(vread_bed.hosts[0]) is \
        manager.service_for(vread_bed.hosts[0])


def test_images_mounted_on_owning_hosts(vread_bed):
    assert vread_bed.datanode1_vm.image.name in vread_bed.hosts[0].mounts
    assert vread_bed.datanode2_vm.image.name in vread_bed.hosts[1].mounts
    # And not cross-mounted.
    assert vread_bed.datanode2_vm.image.name not in vread_bed.hosts[0].mounts


def test_attach_client_reuses_library(vread_bed):
    first = vread_bed.manager.attach_client(vread_bed.client_vm)
    second = vread_bed.manager.attach_client(vread_bed.client_vm)
    assert first.library is second.library
    assert vread_bed.manager.library_of(vread_bed.client_vm) is first.library
    assert vread_bed.manager.daemon_of(vread_bed.client_vm) is not None


def test_attach_client_on_second_host(vread_bed):
    """A client VM on host2 gets its own channel/daemon and local reads
    from dn2 work without the network."""
    from repro.virt.vm import VirtualMachine
    from repro.storage.content import PatternSource

    bed = vread_bed
    other_client_vm = VirtualMachine(bed.hosts[1], "client2")
    other_client = bed.manager.attach_client(other_client_vm)
    payload = PatternSource(100 * 1024, seed=8)

    def load():
        yield from bed.client.write_file("/f2", payload, favored=["dn2"])

    bed.run(bed.sim.process(load()))
    bed.sim.run()
    sent_before = bed.lan.nic_of(bed.hosts[1]).bytes_sent

    def read():
        source = yield from other_client.read_file("/f2", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()
    # dn2 is local to host2's client: nothing crossed the wire.
    assert bed.lan.nic_of(bed.hosts[1]).bytes_sent - sent_before < 10_000


def test_unregister_datanode_unmounts(vread_bed):
    service = vread_bed.manager.service_for(vread_bed.hosts[0])
    service.unregister_datanode("dn1")
    assert service.lookup("dn1") is None
    assert vread_bed.datanode1_vm.image.name not in vread_bed.hosts[0].mounts
    # Unregistering twice is harmless.
    service.unregister_datanode("dn1")


def test_ring_geometry_flows_to_channels(hadoop_bed):
    manager = VReadManager(hadoop_bed.namenode, hadoop_bed.network,
                           hadoop_bed.lan, rdma_link=hadoop_bed.rdma,
                           ring_slots=64, ring_slot_bytes=8192,
                           channel_chunk_bytes=128 * 1024)
    manager.attach_client(hadoop_bed.client_vm)
    library = manager.library_of(hadoop_bed.client_vm)
    ring = library.channel.response_ring
    assert ring.slots == 64 and ring.slot_bytes == 8192
    assert library.channel.chunk_bytes == 128 * 1024


def test_chunk_clamped_to_ring_capacity(hadoop_bed):
    manager = VReadManager(hadoop_bed.namenode, hadoop_bed.network,
                           hadoop_bed.lan, rdma_link=hadoop_bed.rdma,
                           ring_slots=16, ring_slot_bytes=4096,
                           channel_chunk_bytes=1 << 20)
    manager.attach_client(hadoop_bed.client_vm)
    library = manager.library_of(hadoop_bed.client_vm)
    assert library.channel.chunk_bytes == 16 * 4096
