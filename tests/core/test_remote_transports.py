"""Unit tests for the remote daemon transports (RDMA & TCP conduits)."""

import pytest

from repro.core.daemon import VReadHostService
from repro.core.remote import (
    RdmaTransport,
    RemoteRequest,
    RemoteResponse,
    TcpTransport,
)
from repro.metrics.accounting import RDMA, VREAD_NET


def make_services(bed, transport_cls, **kwargs):
    service1 = VReadHostService(bed.hosts[0], bed.lan)
    service2 = VReadHostService(bed.hosts[1], bed.lan)
    if transport_cls is RdmaTransport:
        service1.transport = RdmaTransport(service1, bed.rdma)
        service2.transport = RdmaTransport(service2, bed.rdma)
    else:
        service1.transport = TcpTransport(service1)
        service2.transport = TcpTransport(service2)
    return service1, service2


def plant_block(bed, service, datanode_vm, name, data):
    datanode_vm.guest_fs.mkdir(service.data_dir, parents=True)
    datanode_vm.guest_fs.create(f"{service.data_dir}/{name}", data)


@pytest.mark.parametrize("transport_cls", [RdmaTransport, TcpTransport])
def test_remote_open_and_read(testbed, transport_cls):
    bed = testbed
    service1, service2 = make_services(bed, transport_cls)
    dn_vm = bed.vms[2]  # on host2
    plant_block(bed, service2, dn_vm, "blk_1", b"remote-bytes" * 10)
    service2.register_local_datanode("dnX", dn_vm.image)
    service1.register_remote_datanode("dnX", service2)

    def proc():
        open_response = yield from service1.transport.request(
            service2, RemoteRequest("open", "dnX", "blk_1"))
        read_response = yield from service1.transport.request(
            service2, RemoteRequest("read", "dnX", "blk_1", 12, 24))
        return open_response, read_response

    open_response, read_response = bed.run(bed.sim.process(proc()))
    assert open_response.ok and open_response.size == 120
    assert read_response.ok
    assert read_response.payload.read(0, 24) == (b"remote-bytes" * 10)[12:36]


@pytest.mark.parametrize("transport_cls", [RdmaTransport, TcpTransport])
def test_remote_missing_block(testbed, transport_cls):
    bed = testbed
    service1, service2 = make_services(bed, transport_cls)
    dn_vm = bed.vms[2]
    plant_block(bed, service2, dn_vm, "blk_other", b"x")
    service2.register_local_datanode("dnX", dn_vm.image)
    service1.register_remote_datanode("dnX", service2)

    def proc():
        return (yield from service1.transport.request(
            service2, RemoteRequest("open", "dnX", "blk_404")))

    response = bed.run(bed.sim.process(proc()))
    assert not response.ok


def test_bad_remote_request_kind(testbed):
    bed = testbed
    service1, service2 = make_services(bed, TcpTransport)

    def proc():
        return (yield from service1.transport.request(
            service2, RemoteRequest("format-disk", "dnX", "blk_1")))

    response = bed.run(bed.sim.process(proc()))
    assert not response.ok
    assert "bad remote request" in response.message


def test_conduits_are_cached_per_peer(testbed):
    bed = testbed
    service1, service2 = make_services(bed, TcpTransport)
    conduit_a, lock_a = service1.transport._conduit_to(service2)
    conduit_b, lock_b = service1.transport._conduit_to(service2)
    assert conduit_a is conduit_b and lock_a is lock_b


def test_requests_serialize_per_peer(testbed):
    """Two concurrent requesters share one conduit; responses must not
    cross over."""
    bed = testbed
    service1, service2 = make_services(bed, TcpTransport)
    dn_vm = bed.vms[2]
    plant_block(bed, service2, dn_vm, "blk_a", b"A" * 100)
    plant_block(bed, service2, dn_vm, "blk_b", b"B" * 100)
    service2.register_local_datanode("dnX", dn_vm.image)
    service1.register_remote_datanode("dnX", service2)
    results = {}

    def requester(name):
        response = yield from service1.transport.request(
            service2, RemoteRequest("read", "dnX", name, 0, 100))
        results[name] = response.payload.read(0, 100)

    proc_a = bed.sim.process(requester("blk_a"))
    proc_b = bed.sim.process(requester("blk_b"))
    bed.run(proc_a)
    bed.run(proc_b)
    assert results["blk_a"] == b"A" * 100
    assert results["blk_b"] == b"B" * 100


def test_transport_categories(testbed):
    bed = testbed
    for transport_cls, category in ((RdmaTransport, RDMA),
                                    (TcpTransport, VREAD_NET)):
        service1, service2 = make_services(bed, transport_cls)
        dn_vm = bed.vms[2]
        block_name = f"blk_{category.replace('-', '_')}"
        plant_block(bed, service2, dn_vm, block_name, b"z" * 50_000)
        dn_id = f"dn_{category}"
        service2.register_local_datanode(dn_id, dn_vm.image)
        service1.register_remote_datanode(dn_id, service2)
        mark = bed.hosts[1].accounting.snapshot()

        def proc():
            yield from service1.transport.request(
                service2, RemoteRequest("read", dn_id, block_name, 0, 50_000))

        bed.run(bed.sim.process(proc()))
        window = bed.hosts[1].accounting.since(mark).by_category()
        assert window.get(category, 0) > 0
