"""Unit tests for the vRead channel, descriptors, and libvread semantics."""

import pytest

from repro.core.api import VReadError, VReadLibrary
from repro.core.channel import ChannelRequest, VReadChannel
from repro.core.descriptors import VfdHashTable, VReadDescriptor


# -------------------------------------------------------------- descriptors
def test_descriptor_identity_and_state():
    d1 = VReadDescriptor("blk_1", "dn1", size=100)
    d2 = VReadDescriptor("blk_2", "dn1", size=200)
    assert d1.vfd != d2.vfd
    assert d1.open and d1.offset == 0
    assert d1.size == 100


def test_vfd_hash_put_get_remove():
    table = VfdHashTable()
    descriptor = VReadDescriptor("blk_7", "dn1", 10)
    assert table.get("blk_7") is None
    table.put(descriptor)
    assert table.get("blk_7") is descriptor
    assert "blk_7" in table and len(table) == 1
    assert table.remove("blk_7") is descriptor
    assert table.remove("blk_7") is None
    assert len(table) == 0


# ------------------------------------------------------------------ channel
def test_channel_chunk_count(vread_bed):
    channel = VReadChannel(vread_bed.sim, vread_bed.client_vm,
                           chunk_bytes=1 << 20)
    assert channel.chunk_count(0) == 1
    assert channel.chunk_count(1) == 1
    assert channel.chunk_count(1 << 20) == 1
    assert channel.chunk_count((1 << 20) + 1) == 2
    assert channel.chunk_count(4 << 20) == 4


def test_channel_conversations_serialize(vread_bed):
    """Two concurrent streams must not interleave ring conversations."""
    bed = vread_bed
    library = bed.manager.library_of(bed.client_vm)
    channel = library.channel
    order = []

    def conversation(tag):
        token = yield from channel.acquire()
        order.append(("begin", tag))
        yield bed.sim.timeout(0.001)
        order.append(("end", tag))
        channel.release(token)

    bed.sim.process(conversation("a"))
    bed.sim.process(conversation("b"))
    bed.sim.run()
    assert order == [("begin", "a"), ("end", "a"),
                     ("begin", "b"), ("end", "b")]


# ------------------------------------------------------------------ library
def test_vread_open_populates_hash(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_500"
    bed.datanode1_vm.guest_fs.create(path, b"x" * 64)
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_500", "dn1")
        return vfd

    vfd = bed.run(bed.sim.process(proc()))
    assert vfd is not None and vfd.size == 64
    assert library.vfd_hash.get("blk_500") is vfd


def test_vread_read_returns_exact_bytes(vread_bed):
    bed = vread_bed
    payload = bytes(range(256)) * 16
    path = f"{bed.config.data_dir}/blk_501"
    bed.datanode1_vm.guest_fs.create(path, payload)
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_501", "dn1")
        piece = yield from library.vread_read(vfd, 100, 500)
        return piece.read(0, piece.size)

    assert bed.run(bed.sim.process(proc())) == payload[100:600]


def test_vread_read_clamps_at_eof(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_502"
    bed.datanode1_vm.guest_fs.create(path, b"z" * 100)
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_502", "dn1")
        piece = yield from library.vread_read(vfd, 80, 1000)
        return piece.size, vfd.offset

    size, offset = bed.run(bed.sim.process(proc()))
    assert size == 20
    assert offset == 100


def test_vread_seek_and_close(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_503"
    bed.datanode1_vm.guest_fs.create(path, b"q" * 50)
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_503", "dn1")
        position = yield from library.vread_seek(vfd, 25)
        assert position == 25 and vfd.offset == 25
        rc = yield from library.vread_close(vfd)
        assert rc == 0
        rc_again = yield from library.vread_close(vfd)
        assert rc_again == -1
        return vfd

    vfd = bed.run(bed.sim.process(proc()))
    assert not vfd.open
    assert library.vfd_hash.get("blk_503") is None


def test_operations_on_closed_descriptor_raise(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_504"
    bed.datanode1_vm.guest_fs.create(path, b"q" * 50)
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_504", "dn1")
        yield from library.vread_close(vfd)
        yield from library.vread_read(vfd, 0, 10)

    bed.sim.process(proc())
    with pytest.raises(VReadError):
        bed.sim.run()


def test_negative_seek_rejected(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_505"
    bed.datanode1_vm.guest_fs.create(path, b"q")
    bed.manager.service_for(bed.hosts[0]).schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_505", "dn1")
        yield from library.vread_seek(vfd, -1)

    bed.sim.process(proc())
    with pytest.raises(VReadError):
        bed.sim.run()


def test_block_deleted_between_open_and_read_raises(vread_bed):
    bed = vread_bed
    path = f"{bed.config.data_dir}/blk_506"
    bed.datanode1_vm.guest_fs.create(path, b"v" * 200)
    service = bed.manager.service_for(bed.hosts[0])
    service.schedule_refresh("dn1")
    bed.sim.run()
    library = bed.manager.library_of(bed.client_vm)

    def proc():
        vfd = yield from library.vread_open("blk_506", "dn1")
        # Delete the block file + refresh the mount behind vRead's back.
        bed.datanode1_vm.guest_fs.unlink(path)
        service.schedule_refresh("dn1")
        yield bed.sim.timeout(0.01)
        try:
            yield from library.vread_read(vfd, 0, 10)
        except VReadError:
            return "error"
        return "ok"

    assert bed.run(bed.sim.process(proc())) == "error"
