"""Shared test fixtures: minimal virtualized testbeds."""

import pytest

from repro.hostmodel import PhysicalHost
from repro.hostmodel.costs import CostModel
from repro.net.lan import Lan
from repro.net.rdma import RdmaLink
from repro.net.tcp import VmNetwork
from repro.sim import Simulator
from repro.virt.vm import VirtualMachine


class Testbed:
    """A small simulated testbed: hosts on a LAN, VMs, TCP and RDMA."""

    __test__ = False  # not a pytest test class

    def __init__(self, n_hosts=2, vms_per_host=2, cores=4,
                 frequency_hz=2.0e9, costs=None):
        self.sim = Simulator()
        self.costs = costs or CostModel()
        self.lan = Lan(self.sim, self.costs)
        self.network = VmNetwork(self.sim, self.lan, self.costs)
        self.rdma = RdmaLink(self.sim, self.lan, self.costs)
        self.hosts = []
        self.vms = []
        for h in range(n_hosts):
            host = PhysicalHost(self.sim, f"host{h + 1}", cores=cores,
                                frequency_hz=frequency_hz, costs=self.costs)
            self.lan.attach(host)
            self.hosts.append(host)
            for v in range(vms_per_host):
                vm = VirtualMachine(host, f"vm{h + 1}-{v + 1}")
                self.vms.append(vm)

    def run(self, process):
        """Run the sim until ``process`` completes; return its value."""
        return self.sim.run_until_complete(process)


class HadoopBed(Testbed):
    """The paper's Figure 10 topology: client+namenode VM and a co-located
    datanode VM on host1, a second datanode VM on host2."""

    def __init__(self, block_size=256 * 1024, replication=1, **kwargs):
        from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode

        super().__init__(n_hosts=2, vms_per_host=2, **kwargs)
        self.client_vm = self.vms[0]        # host1
        self.datanode1_vm = self.vms[1]     # host1 (co-located)
        self.datanode2_vm = self.vms[2]     # host2 (remote)
        self.config = HdfsConfig(block_size=block_size,
                                 replication=replication)
        self.namenode = Namenode(self.config, vm=self.client_vm)
        self.datanode1 = Datanode("dn1", self.datanode1_vm, self.namenode,
                                  self.network)
        self.datanode2 = Datanode("dn2", self.datanode2_vm, self.namenode,
                                  self.network)
        self.client = DfsClient(self.client_vm, self.namenode, self.network)


@pytest.fixture
def testbed():
    return Testbed()


class VReadBed(HadoopBed):
    """HadoopBed plus vRead installed (RDMA transport by default)."""

    def __init__(self, transport="rdma", bypass_host_fs=False, **kwargs):
        from repro.core import VReadManager

        super().__init__(**kwargs)
        self.manager = VReadManager(self.namenode, self.network, self.lan,
                                    rdma_link=self.rdma, transport=transport,
                                    bypass_host_fs=bypass_host_fs)
        self.vread_client = self.manager.attach_client(self.client_vm)


@pytest.fixture
def hadoop_bed():
    return HadoopBed()


@pytest.fixture
def vread_bed():
    return VReadBed()



@pytest.fixture
def single_host_bed():
    return Testbed(n_hosts=1, vms_per_host=2)
