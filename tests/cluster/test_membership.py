"""Tests for the cluster membership control plane (``cluster.membership``)."""

import pytest

from repro.cluster import (MembershipError, VirtualHadoopCluster,
                           rack_cluster)
from repro.storage.content import PatternSource


def elastic_cluster(vread=False, replication=2, **kwargs):
    return VirtualHadoopCluster(block_size=256 << 10,
                                replication=replication, vread=vread,
                                topology=rack_cluster(2, 2, clients=2),
                                **kwargs)


def write(cluster, path, payload, **kwargs):
    def proc():
        yield from cluster.write_dataset(path, payload, **kwargs)

    cluster.run(cluster.sim.process(proc()))
    cluster.settle()


def read_checksum(cluster, path, client=None):
    client = client or cluster.clients.get()

    def proc():
        source = yield from client.read_file(path, 64 << 10)
        return source.checksum()

    return cluster.run(cluster.sim.process(proc()))


# ----------------------------------------------------------- churn-free path
def test_untouched_cluster_stays_at_version_zero():
    cluster = elastic_cluster()
    assert cluster.membership.version == 0
    assert cluster.membership.log == []
    assert cluster.membership.monitor is None
    write(cluster, "/f", PatternSource(300 << 10, seed=1))
    assert read_checksum(cluster, "/f") == PatternSource(300 << 10,
                                                        seed=1).checksum()
    # Plain load never moves the membership version.
    assert cluster.membership.version == 0


def test_runtime_view_matches_build():
    cluster = elastic_cluster()
    controller = cluster.membership
    assert controller.live_datanode_ids() == ["dn1", "dn2", "dn3", "dn4"]
    assert controller.client_vm_names() == ["client", "client2"]
    spec = controller.runtime_spec()
    assert [h.name for h in spec.hosts()] == [h.name for h in cluster.hosts]


# -------------------------------------------------------------- add_datanode
def test_add_datanode_registers_everywhere():
    cluster = elastic_cluster(vread=True)
    controller = cluster.membership
    datanode = controller.add_datanode("host1")
    assert datanode.datanode_id == "dn5"
    assert controller.live_datanode_ids()[-1] == "dn5"
    assert "dn5" in cluster.namenode.datanode_ids()
    assert controller.version == 1
    assert controller.log[0][1] == "datanode-added"
    # The new node is placeable: a favored write lands on it.
    write(cluster, "/new", PatternSource(300 << 10, seed=2), favored=["dn5"])
    assert all("dn5" in b.locations
               for b in cluster.namenode.get_blocks("/new"))
    # vRead host services know where it lives.
    assert cluster.vread_manager.service_for(
        cluster.hosts[0]).is_local("dn5")


def test_add_datanode_rejects_duplicate_names():
    cluster = elastic_cluster()
    controller = cluster.membership
    with pytest.raises(MembershipError, match="already in use"):
        controller.add_datanode("host1", name="datanode1")
    with pytest.raises(MembershipError, match="already in use"):
        controller.add_datanode("host1", datanode_id="dn2")


def test_unknown_host_gets_suggestion():
    cluster = elastic_cluster()
    with pytest.raises(MembershipError, match="did you mean 'host1'"):
        cluster.membership.add_datanode("host11")


# ------------------------------------------------------------- decommission
def test_decommission_drains_detaches_and_data_survives():
    cluster = elastic_cluster()
    controller = cluster.membership
    payload = PatternSource(600 << 10, seed=3)
    write(cluster, "/f", payload)

    def churn():
        yield from controller.decommission_datanode("dn2",
                                                    poll_interval=0.2)

    cluster.run(cluster.sim.process(churn()))
    controller.stop_monitor()
    cluster.settle()

    assert controller.live_datanode_ids() == ["dn1", "dn3", "dn4"]
    assert controller.decommissioned == ["dn2"]
    assert "dn2" not in cluster.namenode.datanode_ids()
    assert controller.version == 1
    for block in cluster.namenode.get_blocks("/f"):
        assert "dn2" not in block.locations
    assert read_checksum(cluster, "/f") == payload.checksum()
    # The drained VM left its host: threads retired, roster clean.
    assert all(vm.name != "datanode2"
               for host in cluster.hosts for vm in host.vms)


def test_decommission_unknown_and_repeat_are_informative():
    cluster = elastic_cluster()
    controller = cluster.membership
    with pytest.raises(MembershipError, match="did you mean 'dn1'"):
        next(controller.decommission_datanode("dn11"))

    def churn():
        yield from controller.decommission_datanode("dn4",
                                                    poll_interval=0.2)

    cluster.run(cluster.sim.process(churn()))
    controller.stop_monitor()
    with pytest.raises(MembershipError, match="already decommissioned"):
        next(controller.decommission_datanode("dn4"))


def test_last_datanode_cannot_be_decommissioned():
    cluster = VirtualHadoopCluster(block_size=256 << 10,
                                   topology=rack_cluster(1, 2))
    controller = cluster.membership

    def churn():
        yield from controller.decommission_datanode("dn2",
                                                    poll_interval=0.2)

    cluster.run(cluster.sim.process(churn()))
    controller.stop_monitor()
    assert controller.live_datanode_ids() == ["dn1"]
    with pytest.raises(MembershipError, match="last"):
        next(controller.decommission_datanode("dn1"))


# ------------------------------------------------------------------ clients
def test_client_vm_add_remove_roundtrip():
    cluster = elastic_cluster(vread=True)
    controller = cluster.membership
    vm = controller.add_client_vm()
    assert vm.name == "client3"
    assert vm.name in controller.client_vm_names()
    client = cluster.clients.get(vm=vm)
    write(cluster, "/f", PatternSource(300 << 10, seed=4))
    expected = PatternSource(300 << 10, seed=4).checksum()
    assert read_checksum(cluster, "/f", client=client) == expected

    controller.remove_client_vm(vm.name)
    assert vm.name not in controller.client_vm_names()
    assert all(vm is not other for host in cluster.hosts
               for other in host.vms)
    assert controller.removed_clients == ["client3"]
    with pytest.raises(MembershipError, match="already removed"):
        controller.remove_client_vm(vm.name)
    with pytest.raises(MembershipError, match="did you mean 'client2'"):
        controller.remove_client_vm("client22")


def test_remove_client_vm_accepts_the_vm_object():
    cluster = elastic_cluster()
    controller = cluster.membership
    vm = controller.add_client_vm()
    controller.remove_client_vm(vm)
    assert vm.name not in controller.client_vm_names()
    with pytest.raises(MembershipError, match="already removed"):
        controller.remove_client_vm(vm)


def test_primary_client_vm_cannot_be_removed():
    cluster = elastic_cluster()
    with pytest.raises(MembershipError, match="namenode"):
        cluster.membership.remove_client_vm("client")


# ---------------------------------------------------------------- migration
def test_migrate_datanode_rebinds_vread():
    cluster = elastic_cluster(vread=True)
    controller = cluster.membership
    payload = PatternSource(300 << 10, seed=5)
    write(cluster, "/f", payload, favored=["dn2"])

    def churn():
        yield from controller.migrate("datanode2", "host3",
                                      ram_bytes=1 << 20)

    cluster.run(cluster.sim.process(churn()))
    assert controller.version == 1
    datanode2 = cluster.namenode.datanode("dn2")
    assert datanode2.vm.host.name == "host3"
    assert cluster.vread_manager.service_for(
        cluster.hosts[2]).is_local("dn2")
    assert not cluster.vread_manager.service_for(
        cluster.hosts[1]).is_local("dn2")
    client = cluster.clients.get(mode="vread")
    assert read_checksum(cluster, "/f", client=client) == payload.checksum()


def test_migrate_same_host_and_attached_client_rejected():
    cluster = elastic_cluster(vread=True)
    controller = cluster.membership
    with pytest.raises(MembershipError,
                       match="is the VM's current host"):
        next(controller.migrate("datanode1", "host1"))
    cluster.clients.get(mode="vread")  # attach the library
    with pytest.raises(MembershipError, match="detach it first"):
        next(controller.migrate("client", "host2"))


# ---------------------------------------------------------------- observers
def test_observers_see_every_membership_event():
    cluster = elastic_cluster()
    controller = cluster.membership
    events = []
    controller.add_observer(lambda event, detail: events.append(event))
    controller.add_client_vm("elastic1")
    controller.add_datanode("host2")
    controller.remove_client_vm("elastic1")
    assert events == ["client-added", "datanode-added", "client-removed"]
    assert [entry[0] for entry in controller.log] == [1, 2, 3]
    assert cluster.fault_counters.get("membership.client-added") == 1
