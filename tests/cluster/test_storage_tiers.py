"""Integration tests: tiered storage through the whole stack.

Covers the ``storage=`` config/topology plumbing, tier-aware hot
placement, per-tier fault targeting, the stream layer shadowing HDFS
blocks, and the edit-log round trip of the ``hot`` flag.
"""

import pytest

from repro.cluster import (
    HostSpec,
    TopologyError,
    VirtualHadoopCluster,
    paper_fig10,
    rack_cluster,
)
from repro.faults.plan import DiskLatencySpike, DiskOutage, _find_devices
from repro.hdfs.editlog import JournaledNamenode, replay_into
from repro.hdfs.namenode import Namenode
from repro.storage.content import PatternSource
from repro.storage.device import NVME_PROFILE


def mixed_tier_cluster(**overrides):
    """client + dn1 on an HDD host (rack1), dn2 on an NVMe host (rack2)."""
    topology = rack_cluster(n_racks=2, hosts_per_rack=1,
                            storage=("hdd", "nvme"))
    return VirtualHadoopCluster(topology=topology, **overrides)


# ------------------------------------------------------------------ config
def test_cluster_storage_default_reaches_every_host():
    cluster = VirtualHadoopCluster(storage="nvme")
    assert all(host.storage.profile is NVME_PROFILE
               for host in cluster.hosts)
    assert cluster.hosts[0].storage.name == f"{cluster.hosts[0].name}.nvme"


def test_cluster_storage_typo_is_diagnosed():
    with pytest.raises(KeyError, match="did you mean 'nvme'"):
        VirtualHadoopCluster(storage="nvmee")


def test_default_cluster_keeps_legacy_ssd_name():
    cluster = VirtualHadoopCluster()
    host = cluster.hosts[0]
    assert host.storage.profile.tier == "ssd"
    assert host.storage.name == f"{host.name}.ssd"
    assert host.ssd is host.storage  # legacy alias
    assert host.storage_tier == "ssd"


# ---------------------------------------------------------------- topology
def test_host_spec_storage_overrides_cluster_default():
    topology = paper_fig10()
    topology.racks[0].hosts[1].storage = "nvme"
    cluster = VirtualHadoopCluster(topology=topology, storage="hdd")
    by_name = {host.name: host.storage.profile.tier
               for host in cluster.hosts}
    assert sorted(by_name.values()) == ["hdd", "nvme"]


def test_topology_tiers_query_and_validation():
    topology = rack_cluster(n_racks=2, hosts_per_rack=1,
                            storage=("nvme", "hdd"))
    assert topology.tiers() == ["hdd", "nvme"]
    assert paper_fig10().tiers() == []
    with pytest.raises(TopologyError, match="did you mean"):
        rack_cluster(n_racks=2, hosts_per_rack=1, storage=("sdd", "hdd"))
    with pytest.raises(TopologyError, match="per rack"):
        rack_cluster(n_racks=2, hosts_per_rack=1, storage=("hdd",))


def test_topology_describe_shows_tiers():
    topology = rack_cluster(n_racks=2, hosts_per_rack=1,
                            storage=("hdd", "nvme"))
    text = topology.describe()
    assert "<hdd>" in text and "<nvme>" in text


def test_host_spec_storage_validation_names_the_host():
    topology = paper_fig10()
    topology.racks[0].hosts[0].storage = "floppy"
    with pytest.raises(TopologyError, match=topology.racks[0].hosts[0].name):
        topology.validate()


# --------------------------------------------------------------- placement
def test_hot_file_lands_on_fast_tier():
    cluster = mixed_tier_cluster()
    client = cluster.clients.get(mode="vanilla")

    def load():
        yield from client.write_file("/cold", PatternSource(1 << 16, seed=1),
                                     replication=1)
        yield from client.write_file("/hot", PatternSource(1 << 16, seed=2),
                                     replication=1, hot=True)

    cluster.run(cluster.sim.process(load()))
    # Cold data keeps the co-located preference (dn1, the HDD host); hot
    # data skips it for the NVMe host's datanode.
    assert cluster.namenode.get_blocks("/cold")[0].locations == ["dn1"]
    assert cluster.namenode.get_blocks("/hot")[0].locations == ["dn2"]


def test_hot_is_a_no_op_on_homogeneous_clusters():
    for storage in (None, "hdd"):
        cluster = VirtualHadoopCluster(storage=storage)
        client = cluster.clients.get(mode="vanilla")

        def load():
            yield from client.write_file(
                "/a", PatternSource(1 << 16, seed=3), replication=1)
            yield from client.write_file(
                "/b", PatternSource(1 << 16, seed=3), replication=1,
                hot=True)

        cluster.run(cluster.sim.process(load()))
        assert (cluster.namenode.get_blocks("/a")[0].locations
                == cluster.namenode.get_blocks("/b")[0].locations)


def test_hot_replication_spills_to_slow_tier_after_fast():
    cluster = mixed_tier_cluster()
    client = cluster.clients.get(mode="vanilla")

    def load():
        yield from client.write_file("/hot2", PatternSource(1 << 16, seed=4),
                                     replication=2, hot=True)

    cluster.run(cluster.sim.process(load()))
    locations = cluster.namenode.get_blocks("/hot2")[0].locations
    assert locations[0] == "dn2"  # fast tier first
    assert sorted(locations) == ["dn1", "dn2"]


def test_write_dataset_hot_passthrough_counts_placement():
    cluster = mixed_tier_cluster()

    def load():
        yield from cluster.write_dataset(
            "/ds", PatternSource(1 << 16, seed=5), hot=True)

    cluster.run(cluster.sim.process(load()))
    assert cluster.namenode.file("/ds").hot
    assert cluster.fault_counters.get("placement.hot") >= 1


# ------------------------------------------------------------------ faults
def test_tier_fault_targets_every_matching_device():
    cluster = mixed_tier_cluster()
    hdd_devices = _find_devices(cluster, None, "hdd")
    assert [d.profile.tier for d in hdd_devices] == ["hdd"]

    def storm():
        yield from DiskLatencySpike(tier="hdd", factor=8.0,
                                    duration=0.01).inject(cluster, None)

    process = cluster.sim.process(storm())
    # Mid-hold: the spike is applied to every HDD device and nothing else.
    cluster.sim.run(until=cluster.sim.now + 0.005)
    assert all(d.latency_factor == 8.0 for d in hdd_devices)
    assert all(h.storage.latency_factor == 1.0
               for h in cluster.hosts if h.storage.profile.tier != "hdd")
    cluster.run(process)
    assert all(d.latency_factor == 1.0 for d in hdd_devices)


def test_tier_fault_on_absent_tier_lists_available_tiers():
    cluster = VirtualHadoopCluster()  # all-SSD
    with pytest.raises(ValueError, match="'ssd'"):
        _find_devices(cluster, None, "hdd")
    with pytest.raises(ValueError, match="not both"):
        _find_devices(cluster, cluster.hosts[0].name, "hdd")


def test_disk_outage_describe_mentions_tier():
    assert "tier:nvme" in DiskOutage(tier="nvme").describe()
    assert "tier:hdd" in DiskLatencySpike(tier="hdd").describe()


# ------------------------------------------------------------ stream layer
def test_stream_layer_shadows_committed_blocks():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    client = cluster.clients.get(mode="vanilla")
    file_bytes = (1 << 20) * 2 + 4096  # three blocks

    def load():
        yield from client.write_file("/s/data",
                                     PatternSource(file_bytes, seed=6))

    cluster.run(cluster.sim.process(load()))
    layer = cluster.stream_layer
    assert layer.mapped_blocks == 3
    assert layer.streams() == ["/s/data"]
    stream = layer.stream("/s/data")
    assert stream.length == file_bytes
    for block in cluster.namenode.get_blocks("/s/data"):
        name, extent, offset, length = layer.locate_block(block.name)
        assert name == "/s/data" and length == block.size


def test_stream_layer_digest_is_reproducible_across_clusters():
    def build():
        cluster = VirtualHadoopCluster(block_size=1 << 20)
        client = cluster.clients.get(mode="vanilla")

        def load():
            yield from client.write_file(
                "/d", PatternSource((1 << 20) + 17, seed=7))

        cluster.run(cluster.sim.process(load()))
        return cluster.stream_layer.digest()

    assert build() == build()


def test_stream_layer_forgets_deleted_blocks():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    client = cluster.clients.get(mode="vanilla")

    def proc():
        yield from client.write_file("/t", PatternSource(4096, seed=8))
        yield from client.delete("/t")

    cluster.run(cluster.sim.process(proc()))
    assert cluster.stream_layer.mapped_blocks == 0


# ---------------------------------------------------------------- edit log
def test_edit_log_round_trips_hot_flag():
    source = JournaledNamenode()
    source.create_file("/hotfile", replication=1, hot=True)
    source.create_file("/coldfile", replication=1)
    restored = Namenode(source.config)
    replay_into(restored, source)
    assert restored.file("/hotfile").hot
    assert not restored.file("/coldfile").hot
    # Through a checkpoint as well.
    source.checkpoint()
    restored2 = Namenode(source.config)
    replay_into(restored2, source)
    assert restored2.file("/hotfile").hot


def test_edit_log_replays_legacy_two_tuple_create_payloads():
    from repro.hdfs.editlog import EditLogEntry

    source = JournaledNamenode()
    source.create_file("/old", replication=1)
    # Simulate a journal written before the hot flag existed.
    entry = source.edit_log.entries[0]
    source.edit_log.entries[0] = EditLogEntry(
        entry.txid, entry.op, entry.path, entry.payload[:2])
    restored = Namenode(source.config)
    replay_into(restored, source)
    assert not restored.file("/old").hot
