"""Tests for the declarative topology layer: specs, presets, interpreter."""

import pytest

from repro.cluster import (
    ClusterConfig,
    HostSpec,
    RackSpec,
    TopologyError,
    TopologySpec,
    VirtualHadoopCluster,
    VmSpec,
    paper_fig10,
    rack_cluster,
)


# ------------------------------------------------------------------ spec basics
def test_vm_spec_rejects_unknown_role():
    with pytest.raises(TopologyError, match="unknown VM role"):
        VmSpec("vm1", role="namenode")


def test_vm_spec_rejects_datanode_id_on_other_roles():
    with pytest.raises(TopologyError, match="only datanode VMs"):
        VmSpec("vm1", role="client", datanode_id="dn1")


def test_validate_assigns_datanode_ids_in_declaration_order():
    spec = TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("c", "client"), VmSpec("d1", "datanode")]),
        HostSpec("b", [VmSpec("d2", "datanode")]),
    ])])
    ids = [vm.datanode_id for _, _, vm in spec.placements("datanode")]
    assert ids == ["dn1", "dn2"]


@pytest.mark.parametrize("build, pattern", [
    (lambda: TopologySpec(racks=[]), "no racks"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [])]), "no hosts"),
    (lambda: TopologySpec(racks=[
        RackSpec("r1", [HostSpec("a", [VmSpec("c", "client")])]),
        RackSpec("r1", [HostSpec("b", [VmSpec("d", "datanode")])]),
    ]), "duplicate rack"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("c", "client")]),
        HostSpec("a", [VmSpec("d", "datanode")]),
    ])]), "duplicate host"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("x", "client"), VmSpec("x", "datanode")]),
    ])]), "duplicate VM"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("c", "client"),
                       VmSpec("d1", "datanode", datanode_id="dn1"),
                       VmSpec("d2", "datanode", datanode_id="dn1")]),
    ])]), "duplicate datanode id"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("d", "datanode")]),
    ])]), "no client VM"),
    (lambda: TopologySpec(racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("c", "client")]),
    ])]), "no datanode VM"),
    (lambda: TopologySpec(oversubscription=0.5, racks=[RackSpec("r1", [
        HostSpec("a", [VmSpec("c", "client"), VmSpec("d", "datanode")]),
    ])]), "oversubscription"),
])
def test_spec_validation_errors(build, pattern):
    with pytest.raises(TopologyError, match=pattern):
        build()


def test_spec_queries():
    spec = rack_cluster(n_racks=2, hosts_per_rack=2)
    assert spec.rack_of("host3") == "rack2"
    assert spec.host_of_datanode("dn4") == "host4"
    counts = spec.counts()
    assert counts == {"racks": 2, "hosts": 4, "client": 1, "datanode": 4,
                      "background": 0, "aux": 0}
    with pytest.raises(TopologyError, match="no host named"):
        spec.rack_of("host99")
    with pytest.raises(TopologyError, match="no datanode"):
        spec.host_of_datanode("dn99")
    assert "rack2" in spec.describe()


# -------------------------------------------------------------------- presets
def test_paper_fig10_matches_the_testbed():
    spec = paper_fig10()
    assert [rack.name for rack in spec.racks] == ["rack1"]
    host1, host2 = spec.hosts()
    assert [vm.name for vm in host1.vms] == ["client", "datanode1"]
    assert [vm.name for vm in host2.vms] == ["datanode2"]


def test_paper_fig10_background_fill():
    spec = paper_fig10(total_vms_per_host=4)
    names = [vm.name for _, _, vm in spec.placements("background")]
    assert names == ["host1-bg1", "host1-bg2",
                     "host2-bg1", "host2-bg2", "host2-bg3"]


def test_paper_fig10_multiple_clients_on_host1():
    spec = paper_fig10(clients=3)
    placements = spec.placements("client")
    assert [vm.name for _, _, vm in placements] == ["client", "client2",
                                                    "client3"]
    assert {host.name for _, host, _ in placements} == {"host1"}


@pytest.mark.parametrize("kwargs, pattern", [
    ({"n_hosts": 1}, "at least 2 hosts"),
    ({"total_vms_per_host": 1}, "at least 2 VMs"),
    ({"clients": 0}, "at least 1 client"),
    ({"n_datanodes": 0}, "n_datanodes must be >= 2"),
    ({"n_datanodes": 1}, "n_datanodes must be >= 2"),
    ({"n_datanodes": 3}, "exceeds n_hosts"),
])
def test_paper_fig10_validation(kwargs, pattern):
    with pytest.raises(TopologyError, match=pattern):
        paper_fig10(**kwargs)


def test_rack_cluster_layout():
    spec = rack_cluster(n_racks=2, hosts_per_rack=2, datanodes_per_host=2,
                        clients=3)
    assert [rack.name for rack in spec.racks] == ["rack1", "rack2"]
    assert [host.name for host in spec.hosts()] == ["host1", "host2",
                                                    "host3", "host4"]
    clients = [(host.name, vm.name)
               for _, host, vm in spec.placements("client")]
    assert clients == [("host1", "client"), ("host2", "client2"),
                       ("host3", "client3")]
    assert len(spec.placements("datanode")) == 8


@pytest.mark.parametrize("kwargs, pattern", [
    ({"n_racks": 0, "hosts_per_rack": 2}, "at least 1 rack"),
    ({"n_racks": 1, "hosts_per_rack": 0}, "at least 1 host per rack"),
    ({"n_racks": 1, "hosts_per_rack": 1}, "at least 2 hosts in total"),
    ({"n_racks": 1, "hosts_per_rack": 2, "datanodes_per_host": 0},
     "at least 1 datanode per host"),
    ({"n_racks": 1, "hosts_per_rack": 2, "clients": 0},
     "at least 1 client"),
])
def test_rack_cluster_validation(kwargs, pattern):
    with pytest.raises(TopologyError, match=pattern):
        rack_cluster(**kwargs)


# -------------------------------------------------------------- interpretation
def test_config_rejects_topology_plus_layout_knobs():
    with pytest.raises(ValueError, match="not both"):
        ClusterConfig(n_hosts=3, topology=paper_fig10())


def test_cluster_interprets_multi_rack_spec():
    cluster = VirtualHadoopCluster(block_size=1 << 20,
                                   topology=rack_cluster(2, 2, clients=2))
    assert [h.name for h in cluster.hosts] == ["host1", "host2", "host3",
                                               "host4"]
    assert [h.rack for h in cluster.hosts] == ["rack1", "rack1",
                                               "rack2", "rack2"]
    assert [vm.name for vm in cluster.client_vms] == ["client", "client2"]
    assert cluster.client_vm.host is cluster.hosts[0]
    assert [d.datanode_id for d in cluster.datanodes] == ["dn1", "dn2",
                                                          "dn3", "dn4"]
    assert cluster.host_of_datanode("dn3") is cluster.hosts[2]
    assert cluster.host_named("host4") is cluster.hosts[3]
    with pytest.raises(ValueError, match="no host named"):
        cluster.host_named("host9")
    with pytest.raises(ValueError, match="no datanode"):
        cluster.host_of_datanode("dn9")


def test_default_cluster_topology_attribute_is_paper_fig10():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    assert cluster.topology.counts() == {"racks": 1, "hosts": 2,
                                         "client": 1, "datanode": 2,
                                         "background": 0, "aux": 0}
    assert all(host.rack == "rack1" for host in cluster.hosts)
