"""Tests for the cluster builder: topology, vRead wiring, lookbusy."""

import pytest

from repro.cluster import ClusterConfig, VirtualHadoopCluster
from repro.core.integration import VReadDfsClient
from repro.hdfs import DfsClient
from repro.hostmodel.frequency import GHZ_1_6, GHZ_3_2
from repro.storage.content import PatternSource


def test_default_topology_matches_figure_10():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    assert len(cluster.hosts) == 2
    assert cluster.client_vm.host is cluster.hosts[0]
    assert cluster.datanode_vms[0].host is cluster.hosts[0]  # co-located
    assert cluster.datanode_vms[1].host is cluster.hosts[1]  # remote
    assert cluster.namenode.vm is cluster.client_vm
    assert cluster.lookbusy == []  # 2 VMs per host: no background load


def test_four_vm_scenario_adds_lookbusy():
    cluster = VirtualHadoopCluster(block_size=1 << 20, total_vms_per_host=4)
    # host1 has client+dn1 => 2 hogs; host2 has dn2 => 3 hogs.
    assert len(cluster.lookbusy) == 5
    host1_vms = [vm.name for vm in cluster.hosts[0].vms]
    host2_vms = [vm.name for vm in cluster.hosts[1].vms]
    assert len(host1_vms) == 4 and len(host2_vms) == 4
    cluster.stop_background()


def test_vanilla_vs_vread_client_types():
    vanilla = VirtualHadoopCluster(block_size=1 << 20)
    assert isinstance(vanilla.clients.get(), DfsClient)
    assert not isinstance(vanilla.clients.get(), VReadDfsClient)
    enabled = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    assert isinstance(enabled.clients.get(), VReadDfsClient)
    assert enabled.vread_manager is not None


def test_clients_facade_modes():
    enabled = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    assert isinstance(enabled.clients.get(mode="vread"), VReadDfsClient)
    vanilla = enabled.clients.get(mode="vanilla")
    assert isinstance(vanilla, DfsClient)
    assert not isinstance(vanilla, VReadDfsClient)
    with pytest.raises(ValueError, match="unknown client mode"):
        enabled.clients.get(mode="turbo")
    plain = VirtualHadoopCluster(block_size=1 << 20)
    with pytest.raises(ValueError, match="vread=True"):
        plain.clients.get(mode="vread")


def test_clients_facade_per_vm():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    vm2 = cluster.membership.add_client_vm("client2")
    client2 = cluster.clients.get(vm=vm2)
    assert client2.vm is vm2
    # Same VM, same vanilla client (cached, so blacklists persist).
    assert cluster.clients.get(vm=vm2) is client2
    assert cluster.clients.get() is cluster.clients.get(mode="vanilla")


def test_direct_add_client_vm_is_a_deprecated_shim():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    with pytest.warns(DeprecationWarning, match="membership.add_client_vm"):
        vm = cluster.add_client_vm("client2")
    assert vm.name in cluster.membership.client_vm_names()
    cluster.remove_client_vm("client2")
    assert "client2" not in cluster.membership.client_vm_names()


def test_deprecated_client_aliases_removed():
    # The clients facade is the only way in; the old alias trio is gone.
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    for alias in ("client", "vanilla_client", "client_for"):
        assert not hasattr(cluster, alias)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_hosts=1)
    with pytest.raises(ValueError):
        ClusterConfig(total_vms_per_host=1)
    with pytest.raises(ValueError):
        VirtualHadoopCluster(ClusterConfig(), block_size=1)


def test_from_kwargs_rejects_unknown_keys_helpfully():
    with pytest.raises(TypeError) as excinfo:
        ClusterConfig.from_kwargs(block_sized=1 << 20)
    message = str(excinfo.value)
    assert "block_sized" in message
    assert "block_size" in message  # the did-you-mean suggestion
    with pytest.raises(TypeError, match="valid options are"):
        VirtualHadoopCluster(utterly_bogus=True)


def test_set_frequency_applies_to_all_hosts():
    cluster = VirtualHadoopCluster(block_size=1 << 20, frequency_hz=GHZ_3_2)
    assert all(host.frequency_hz == GHZ_3_2 for host in cluster.hosts)
    cluster.set_frequency(GHZ_1_6)
    assert all(host.frequency_hz == GHZ_1_6 for host in cluster.hosts)


def test_write_dataset_and_read_through_cluster_client():
    cluster = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    payload = PatternSource(512 * 1024, seed=1)

    def load():
        yield from cluster.write_dataset("/data", payload, favored=["dn1"])

    cluster.run(cluster.sim.process(load()))
    cluster.settle()

    def read():
        source = yield from cluster.clients.get().read_file("/data")
        return source

    got = cluster.run(cluster.sim.process(read()))
    assert got.checksum() == payload.checksum()


def test_drop_all_caches():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    payload = PatternSource(128 * 1024, seed=2)

    def load():
        yield from cluster.write_dataset("/data", payload)

    cluster.run(cluster.sim.process(load()))
    assert cluster.hosts[0].page_cache.resident_pages > 0
    cluster.drop_all_caches()
    assert all(h.page_cache.resident_pages == 0 for h in cluster.hosts)
    assert all(vm.guest_cache.resident_pages == 0
               for h in cluster.hosts for vm in h.vms)


def test_lookbusy_consumes_target_utilization():
    cluster = VirtualHadoopCluster(block_size=1 << 20, total_vms_per_host=4)
    host = cluster.hosts[0]
    mark = host.accounting.snapshot()

    def wait():
        yield cluster.sim.timeout(1.0)

    cluster.run(cluster.sim.process(wait()))
    cluster.stop_background()
    window = host.accounting.since(mark)
    hog_busy = window.by_category().get("lookbusy", 0.0)
    # Two hogs at 85% on host1 for 1 second ~ 1.7 CPU-seconds.
    assert hog_busy == pytest.approx(1.7, rel=0.1)
