"""Property tests on the CPU scheduler: conservation, fairness, stacking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler
from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.sim import Simulator

CLEAN = CostModel().with_overrides(context_switch_cycles=0.0,
                                   wakeup_stacking_delay_seconds=0.0)


@given(burst_cycles=st.lists(st.integers(min_value=1, max_value=5_000_000),
                             min_size=1, max_size=8),
       cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_busy_time_conservation(burst_cycles, cores):
    """Accounted busy time == requested cycles / frequency, and the host can
    never be busier than cores x elapsed."""
    sim = Simulator()
    acct = CpuAccounting()
    sched = CpuScheduler(sim, cores, 1e9, acct, CLEAN)
    for i, cycles in enumerate(burst_cycles):
        thread = sched.thread(f"t{i}")

        def proc(thread=thread, cycles=cycles):
            yield from thread.run(cycles, "work")

        sim.process(proc())
    sim.run()
    total_work = acct.by_category()["work"]
    assert total_work == pytest.approx(sum(burst_cycles) / 1e9)
    assert total_work <= cores * sim.now + 1e-12


@given(cores=st.integers(min_value=1, max_value=4),
       n_threads=st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_equal_bursts_finish_within_fairness_bound(cores, n_threads):
    """N equal bursts on C cores all finish within ~ceil(N/C) x solo time."""
    sim = Simulator()
    acct = CpuAccounting()
    sched = CpuScheduler(sim, cores, 1e9, acct, CLEAN)
    cycles = 3_000_000  # 3ms solo
    finish = []

    for i in range(n_threads):
        thread = sched.thread(f"t{i}")

        def proc(thread=thread):
            yield from thread.run(cycles, "work")
            finish.append(sim.now)

        sim.process(proc())

    sim.run()
    solo = cycles / 1e9
    rounds = -(-n_threads // cores)
    assert max(finish) <= rounds * solo * 1.10 + 1e-9
    assert min(finish) >= solo - 1e-12


def test_stacked_wakeups_occur_only_under_load():
    sim = Simulator()
    acct = CpuAccounting()
    sched = CpuScheduler(sim, 4, 1e9, acct)  # default costs: stacking on

    # A lone thread never experiences wake stacking.
    def lone():
        yield from sched.thread("lone").run(1_000_000, "work")

    sim.run_until_complete(sim.process(lone()))
    assert sched.stacked_wakeups == 0


def test_stacked_wakeups_happen_with_busy_cores():
    sim = Simulator()
    acct = CpuAccounting()
    sched = CpuScheduler(sim, 2, 1e9, acct, name="stacktest")
    hog_threads = [sched.thread(f"hog{i}") for i in range(2)]

    def hog(thread):
        for _ in range(200):
            yield from thread.run(1_000_000, "hog")  # 1ms bursts

    for thread in hog_threads:
        sim.process(hog(thread))

    def waker():
        thread = sched.thread("waker")
        for _ in range(200):
            yield from thread.run(10_000, "work")
            yield sim.timeout(0.0005)

    sim.process(waker())
    sim.run()
    # With both cores hot, (busy/cores)^2 = 1 -> essentially every wakeup
    # of the waker stacks.
    assert sched.stacked_wakeups > 100


def test_stacking_is_deterministic_per_name():
    def run_once():
        sim = Simulator()
        sched = CpuScheduler(sim, 2, 1e9, CpuAccounting(), name="same-seed")
        threads = [sched.thread(f"t{i}") for i in range(3)]

        def worker(thread):
            for _ in range(50):
                yield from thread.run(500_000, "w")
                yield sim.timeout(0.0002)

        for thread in threads:
            sim.process(worker(thread))
        sim.run()
        return sched.stacked_wakeups, sim.now

    assert run_once() == run_once()


@given(frequency=st.sampled_from([1.6e9, 2.0e9, 3.2e9]))
@settings(max_examples=3, deadline=None)
def test_duration_scales_inversely_with_frequency(frequency):
    sim = Simulator()
    sched = CpuScheduler(sim, 1, frequency, CpuAccounting(), CLEAN)

    def proc():
        yield from sched.thread("t").run(8_000_000, "work")
        return sim.now

    process = sim.process(proc())
    sim.run()
    assert process.value == pytest.approx(8_000_000 / frequency)
