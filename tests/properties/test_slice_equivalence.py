"""Coalesced-burst scheduling must be indistinguishable from the reference.

The fast path (whole-burst timers, lazy accounting folds, ceremony elision)
and the slice-loop reference behind ``REPRO_LEGACY_SLICES`` are run on the
same randomized scenario — staggered bursts over shared cores, mid-burst
interrupts, mid-run accounting probes, and a mid-run frequency change —
and must agree *exactly* (float-equal, not approximately) on:

* final simulated time and per-burst completion/interruption times,
* the full accounting snapshot and the category roll-up,
* every probe's mid-run reading (this exercises the settle hook),
* the scheduler trace (dispatch/preempt/stacked events) and the
  stacked-wakeup counter (this exercises RNG-draw equivalence).

Probe/interrupt/frequency instants carry an off-grid offset so they never
land float-exactly on a slice-fold boundary: at an exact tie the two
implementations may order an unrelated reader against the boundary charge
differently (see the tie caveat in ``hostmodel/cpu.py``); real experiments
measure over windows, not at adversarially exact instants.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import (CpuScheduler, legacy_slices,
                                 legacy_slices_enabled, use_legacy_slices)
from repro.metrics.accounting import CpuAccounting
from repro.metrics.tracing import Tracer
from repro.sim import Interrupt, Simulator

# Short slices (100us = 200k cycles at 2GHz) so generated bursts span
# multiple slices and the coalescing logic is actually exercised.
COSTS = CostModel().with_overrides(time_slice_seconds=1e-4)

#: Off-grid skew keeping probes/interrupts off exact fold boundaries.
SKEW = 3.7e-10

bursts_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),      # thread index
              st.integers(min_value=0, max_value=1500),   # start delay (us)
              st.integers(min_value=1, max_value=2_000_000),  # cycles
              st.sampled_from(["work", "io"])),
    min_size=1, max_size=6)


def _run_scenario(legacy, cores, n_threads, bursts, probe_times_us,
                  interrupts, freq_change_us):
    use_legacy_slices(legacy)
    try:
        sim = Simulator()
        acct = CpuAccounting()
        sched = CpuScheduler(sim, cores, 2.0e9, acct, COSTS, name="equiv")
        tracer = Tracer()
        sched.tracer = tracer
        threads = [sched.thread(f"t{i}") for i in range(n_threads)]
        completions = []
        probes = []
        procs = []

        for index, (t_index, delay_us, cycles, category) in enumerate(bursts):
            def worker(index=index, t_index=t_index, delay_us=delay_us,
                       cycles=cycles, category=category):
                try:
                    yield sim.timeout(delay_us * 1e-6)
                    yield from threads[t_index % n_threads].run(
                        cycles, category)
                    completions.append((index, "done", sim.now))
                except Interrupt:
                    completions.append((index, "interrupted", sim.now))
            procs.append(sim.process(worker()))

        for at_us in probe_times_us:
            def probe(at_us=at_us):
                yield sim.timeout(at_us * 1e-6 + SKEW)
                probes.append((sim.now, acct.total(),
                               tuple(sorted(acct.snapshot().items())),
                               tuple(sorted(acct.by_category().items()))))
            sim.process(probe())

        # Dedupe same-victim same-instant interrupts: delivering a second
        # interrupt to a process that finished handling the first at the
        # same instant is kernel misuse (it crashes both implementations).
        for victim, at_us in {(victim % len(procs), at_us)
                              for victim, at_us in interrupts}:
            def sniper(victim=victim, at_us=at_us):
                yield sim.timeout(at_us * 1e-6 + SKEW)
                target = procs[victim]
                if target.is_alive:
                    target.interrupt("equivalence-test")
            sim.process(sniper())

        if freq_change_us is not None:
            def governor():
                yield sim.timeout(freq_change_us * 1e-6 + SKEW)
                sched.set_frequency(1.6e9)
            sim.process(governor())

        sim.run()
        trace = tuple((event.time, event.category, event.name, event.fields)
                      for event in tracer.events())
        return (sim.now,
                tuple(sorted(acct.snapshot().items())),
                tuple(sorted(completions)),
                tuple(probes),
                trace,
                sched.stacked_wakeups)
    finally:
        use_legacy_slices(False)


@given(cores=st.integers(min_value=1, max_value=2),
       n_threads=st.integers(min_value=1, max_value=4),
       bursts=bursts_strategy,
       probe_times_us=st.lists(st.integers(min_value=1, max_value=3000),
                               max_size=3),
       interrupts=st.lists(
           st.tuples(st.integers(min_value=0, max_value=5),
                     st.integers(min_value=1, max_value=2500)),
           max_size=2),
       freq_change_us=st.one_of(
           st.none(), st.integers(min_value=1, max_value=2000)))
# Regression: an accounting probe armed at t=0 landing float-exactly on a
# slice-fold boundary must not see that boundary charged — the reference
# fires the lower-seq probe before the slice timer (fixed via the kernel's
# schedule-time tracking and _Burst.commit's observer_sched rule).
@example(cores=1, n_threads=1,
         bursts=[(0, 0, 548001, "work"), (0, 0, 200000, "work")],
         probe_times_us=[382], interrupts=[(0, 278)], freq_change_us=None)
@settings(max_examples=40, deadline=None)
def test_fast_path_equivalent_to_slice_loop(cores, n_threads, bursts,
                                            probe_times_us, interrupts,
                                            freq_change_us):
    reference = _run_scenario(True, cores, n_threads, bursts,
                              probe_times_us, interrupts, freq_change_us)
    fast = _run_scenario(False, cores, n_threads, bursts,
                         probe_times_us, interrupts, freq_change_us)
    assert fast == reference


def test_toggle_roundtrip():
    assert not legacy_slices_enabled()
    with legacy_slices():
        assert legacy_slices_enabled()
        with legacy_slices(False):
            assert not legacy_slices_enabled()
        assert legacy_slices_enabled()
    assert not legacy_slices_enabled()


def test_env_spelling_matches_buffers_toggle():
    """The toggle mirrors REPRO_LEGACY_BUFFERS: '' and '0' mean off."""
    import os
    import subprocess
    import sys
    code = ("import sys; sys.path.insert(0, 'src'); "
            "from repro.hostmodel.cpu import legacy_slices_enabled; "
            "print(legacy_slices_enabled())")
    for value, expected in (("", "False"), ("0", "False"), ("1", "True")):
        env = dict(os.environ, REPRO_LEGACY_SLICES=value)
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, env=env,
                             cwd=os.path.dirname(os.path.dirname(
                                 os.path.dirname(os.path.abspath(__file__)))))
        assert out.stdout.strip() == expected, out.stderr
