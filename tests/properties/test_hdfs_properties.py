"""Property-based end-to-end tests: HDFS and vRead never corrupt data.

These drive the full simulated stack (write pipelines, block carving,
datanode streaming / vRead shortcut, caches) with randomized shapes and
check the golden invariant: every read returns exactly the bytes written.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import HadoopBed, VReadBed
from repro.storage.content import LiteralSource


@st.composite
def file_and_block_geometry(draw):
    block_size = draw(st.sampled_from([4 * 1024, 16 * 1024, 64 * 1024]))
    size = draw(st.integers(min_value=1, max_value=4 * block_size))
    seed_byte = draw(st.integers(min_value=0, max_value=255))
    # Structured but position-dependent content: catches offset bugs that
    # uniform content would hide.
    data = bytes((seed_byte + i * 7) % 256 for i in range(size))
    return block_size, data


@given(geometry=file_and_block_geometry())
@settings(max_examples=15, deadline=None)
def test_vanilla_read_returns_written_bytes(geometry):
    block_size, data = geometry
    bed = HadoopBed(block_size=block_size)

    def proc():
        yield from bed.client.write_file("/f", data)
        source = yield from bed.client.read_file("/f", 8 * 1024)
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(proc())) == data


@given(geometry=file_and_block_geometry(),
       ranges=st.lists(st.tuples(st.integers(0, 200_000),
                                 st.integers(1, 64 * 1024)),
                       min_size=1, max_size=5))
@settings(max_examples=15, deadline=None)
def test_vanilla_pread_matches_reference_slices(geometry, ranges):
    block_size, data = geometry
    bed = HadoopBed(block_size=block_size)

    def proc():
        yield from bed.client.write_file("/f", data)
        stream = yield from bed.client.open("/f")
        results = []
        for offset, length in ranges:
            offset = offset % max(1, len(data))
            piece = yield from stream.pread(offset, length)
            results.append((offset, length, piece.read(0, piece.size)))
        stream.close()
        return results

    for offset, length, got in bed.run(bed.sim.process(proc())):
        assert got == data[offset:offset + length]


@given(geometry=file_and_block_geometry(),
       favored=st.sampled_from([["dn1"], ["dn2"], None]))
@settings(max_examples=10, deadline=None)
def test_vread_and_vanilla_read_identical_bytes(geometry, favored):
    block_size, data = geometry
    bed = VReadBed(block_size=block_size)

    def proc():
        yield from bed.client.write_file("/f", data, favored=favored)
        vanilla = yield from bed.client.read_file("/f", 16 * 1024)
        vread = yield from bed.vread_client.read_file("/f", 16 * 1024)
        return (vanilla.read(0, vanilla.size), vread.read(0, vread.size))

    vanilla_bytes, vread_bytes = bed.run(bed.sim.process(proc()))
    assert vanilla_bytes == data
    assert vread_bytes == data


@given(request_bytes=st.sampled_from([1024, 4096, 64 * 1024, 1 << 20]),
       drop_caches=st.booleans())
@settings(max_examples=10, deadline=None)
def test_read_results_independent_of_request_size_and_caching(request_bytes,
                                                              drop_caches):
    data = bytes(range(256)) * 300  # 76,800 bytes over multiple blocks
    bed = VReadBed(block_size=32 * 1024)

    def proc():
        yield from bed.client.write_file("/f", data)
        return None

    bed.run(bed.sim.process(proc()))
    bed.sim.run()
    if drop_caches:
        for host in bed.hosts:
            host.drop_caches()
            for vm in host.vms:
                vm.drop_guest_cache()

    def read():
        source = yield from bed.vread_client.read_file("/f", request_bytes)
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(read())) == data


@given(sizes=st.lists(st.integers(min_value=1, max_value=40_000),
                      min_size=1, max_size=4))
@settings(max_examples=10, deadline=None)
def test_multiple_files_stay_isolated(sizes):
    bed = HadoopBed(block_size=16 * 1024)
    datasets = {f"/f{i}": bytes(((i * 31) + j) % 256 for j in range(size))
                for i, size in enumerate(sizes)}

    def proc():
        for path, data in datasets.items():
            yield from bed.client.write_file(path, data)
        results = {}
        for path in datasets:
            source = yield from bed.client.read_file(path, 8 * 1024)
            results[path] = source.read(0, source.size)
        return results

    results = bed.run(bed.sim.process(proc()))
    assert results == datasets


@given(chunks=st.lists(st.binary(min_size=1, max_size=30_000),
                       min_size=1, max_size=5))
@settings(max_examples=10, deadline=None)
def test_streaming_writes_concatenate(chunks):
    bed = HadoopBed(block_size=16 * 1024)

    def proc():
        stream = yield from bed.client.create("/f")
        for chunk in chunks:
            yield from stream.write(chunk)
        yield from stream.close()
        source = yield from bed.client.read_file("/f", 8 * 1024)
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(proc())) == b"".join(chunks)
