"""The timer wheel must be indistinguishable from the reference heap.

The bucketed wheel behind the kernel and the binary heap behind
``REPRO_LEGACY_HEAP`` are run on the same randomized scenario — timers
minted up front at colliding and wildly spread instants, mid-run cancels,
cancel-and-re-arm reschedules, and a ``run(until=...)`` checkpoint — and
must agree *exactly* (float-equal, not approximately) on:

* the full firing order and each firing instant (this exercises the
  ``(when, seq)`` tie-break on same-tick collisions, the near-band
  bucket sort, and overflow promotion for far-future timers),
* the clock, pending-event count, firing prefix and ``peek()`` reading
  at the ``run(until=...)`` boundary,
* the cancelled-entry discard and compaction counters (lazy discard must
  drop the same entries regardless of which structure holds them).

Cancelled timers must never fire on either path.  Delays are integer
multiples of a tick chosen so that small ticks collide inside one wheel
bucket, mid ticks span buckets, and large ticks land in the overflow
band — all three placement bands get traffic from every example.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.kernel import (legacy_heap, legacy_heap_enabled,
                              use_legacy_heap)

#: One scheduling tick.  The wheel's buckets are ~61us wide, so ticks
#: 0-4 collide within a bucket, ticks up to ~50 spread across the near
#: band, and six-figure ticks overflow past the wheel horizon.
TICK = 1.3e-5

#: Tick values mixing three scales: same-bucket collisions, cross-bucket
#: spreads, and overflow-band far futures.
tick_strategy = st.one_of(st.integers(min_value=0, max_value=4),
                          st.integers(min_value=0, max_value=50),
                          st.integers(min_value=0, max_value=300_000))


def _run_scenario(legacy, delays, cancels, reschedules, until_tick):
    """Drive one randomized schedule on the selected kernel structure.

    Returns everything observable: firing order with instants, the
    ``run(until=...)`` checkpoint, the final clock, and the kernel's
    cancellation bookkeeping.
    """
    use_legacy_heap(legacy)
    try:
        sim = Simulator()
        fired = []
        timers = []
        for label, tick in enumerate(delays):
            timer = sim.timeout(tick * TICK, value=label)
            timer.callbacks.append(
                lambda event, label=label: fired.append((label, sim.now)))
            timers.append(timer)

        def canceller(at_tick, target):
            yield sim.timeout(at_tick * TICK)
            timers[target].cancel()

        for at_tick, target in cancels:
            sim.process(canceller(at_tick, target % len(timers)))

        def rescheduler(at_tick, target, new_tick, label):
            yield sim.timeout(at_tick * TICK)
            timers[target].cancel()
            rearmed = sim.timeout(new_tick * TICK)
            rearmed.callbacks.append(
                lambda event: fired.append((label, sim.now)))

        for index, (at_tick, target, new_tick) in enumerate(reschedules):
            sim.process(rescheduler(at_tick, target % len(timers),
                                    new_tick, f"resched{index}"))

        checkpoint = None
        if until_tick is not None:
            sim.run(until=until_tick * TICK)
            checkpoint = (sim.now, sim.peek(), sim._pending_count(),
                          tuple(fired))
        sim.run()
        return (sim.now, tuple(fired), checkpoint,
                sim.cancelled_discarded, sim.compactions)
    finally:
        use_legacy_heap(False)


@given(delays=st.lists(tick_strategy, min_size=1, max_size=12),
       cancels=st.lists(
           st.tuples(st.integers(min_value=0, max_value=60),
                     st.integers(min_value=0, max_value=11)),
           max_size=4),
       reschedules=st.lists(
           st.tuples(st.integers(min_value=0, max_value=60),
                     st.integers(min_value=0, max_value=11),
                     tick_strategy),
           max_size=3),
       until_tick=st.one_of(st.none(),
                            st.integers(min_value=0, max_value=70)))
# All timers due at t=0: pure seq-order tie-break inside one bucket.
@example(delays=[0, 0, 0, 0], cancels=[], reschedules=[], until_tick=None)
# Cancel lands at the exact instant its victim is due: the victim holds
# the lower seq, so it fires first and the cancel is a late no-op.
@example(delays=[3, 3], cancels=[(3, 0)], reschedules=[], until_tick=None)
# run(until=...) boundary exactly on a timer's instant: the due timer
# fires inside the bounded run, peek() then reports the survivor.
@example(delays=[5, 9], cancels=[], reschedules=[], until_tick=5)
# Far-future timer cancelled while still in the overflow band, plus a
# reschedule that re-arms from the near band into overflow.
@example(delays=[250_000, 2], cancels=[(1, 0)],
         reschedules=[(4, 1, 280_000)], until_tick=20)
@settings(max_examples=60, deadline=None)
def test_wheel_equivalent_to_heap(delays, cancels, reschedules, until_tick):
    reference = _run_scenario(True, delays, cancels, reschedules, until_tick)
    fast = _run_scenario(False, delays, cancels, reschedules, until_tick)
    assert fast == reference

    # Cancelled timers never fire (checked on the wheel run; equality
    # above extends the guarantee to the reference).
    now, fired, _checkpoint, _discarded, _compactions = fast
    fired_labels = [label for label, _ in fired]
    survivors = {label for label, _ in fired if isinstance(label, int)}
    cancelled = {target % len(delays) for _, target in cancels}
    cancelled |= {target % len(delays) for _, target, _ in reschedules}
    for label in cancelled:
        if label in survivors:
            # A cancel can lose the race when its victim was already due;
            # then the victim legitimately fired before the cancel ran.
            fire_time = dict(fired)[label]
            due = delays[label] * TICK
            assert fire_time == pytest.approx(due)
    # Firing instants are non-decreasing and each label fires at most once.
    assert [time for _, time in fired] == sorted(time for _, time in fired)
    assert len(fired_labels) == len(set(fired_labels))
    assert now >= max((time for _, time in fired), default=0.0)


def test_toggle_roundtrip():
    assert not legacy_heap_enabled()
    with legacy_heap():
        assert legacy_heap_enabled()
        with legacy_heap(False):
            assert not legacy_heap_enabled()
        assert legacy_heap_enabled()
    assert not legacy_heap_enabled()


def test_env_spelling_matches_other_toggles():
    """REPRO_LEGACY_HEAP mirrors the other planes: '' and '0' mean off."""
    import subprocess
    import sys
    code = ("import sys; sys.path.insert(0, 'src'); "
            "from repro.sim.kernel import legacy_heap_enabled; "
            "print(legacy_heap_enabled())")
    for value, expected in (("", "False"), ("0", "False"), ("1", "True")):
        output = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_LEGACY_HEAP": value, "PATH": ""},
            capture_output=True, text=True, cwd="/root/repo",
            check=True).stdout.strip()
        assert output == expected, f"REPRO_LEGACY_HEAP={value!r}"
