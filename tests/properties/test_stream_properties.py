"""Property-based tests for the append-only stream layer.

The golden invariants: reads round-trip appends byte-exactly at every
position, sealed extents never change, appends are atomic (never span
extents), and digests are pure functions of the append sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.stream import (
    ExtentPlacement,
    Stream,
    StreamError,
    StreamLayer,
)

NODES = ("dn1", "dn2", "dn3", "dn4")


def records():
    return st.lists(st.binary(min_size=0, max_size=300),
                    min_size=1, max_size=20)


@given(chunks=records(), extent_bytes=st.integers(300, 1000))
@settings(max_examples=40, deadline=None)
def test_reads_round_trip_appends(chunks, extent_bytes):
    stream = Stream("s", ExtentPlacement(NODES), extent_bytes=extent_bytes,
                    retain=True)
    for data in chunks:
        stream.append(data)
    joined = b"".join(chunks)
    assert stream.length == len(joined)
    assert stream.read(0, stream.length) == joined


@given(chunks=records(), extent_bytes=st.integers(300, 1000),
       windows=st.lists(st.tuples(st.integers(0, 5000), st.integers(0, 500)),
                        min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_positional_reads_match_reference(chunks, extent_bytes, windows):
    stream = Stream("s", ExtentPlacement(NODES), extent_bytes=extent_bytes,
                    retain=True)
    for data in chunks:
        stream.append(data)
    joined = b"".join(chunks)
    for position, length in windows:
        position = position % (len(joined) + 1)
        length = min(length, len(joined) - position)
        assert stream.read(position, length) == joined[position:
                                                       position + length]


@given(chunks=records(), extent_bytes=st.integers(300, 1000))
@settings(max_examples=30, deadline=None)
def test_only_last_extent_is_open_and_sealed_extents_reject_appends(
        chunks, extent_bytes):
    stream = Stream("s", ExtentPlacement(NODES), extent_bytes=extent_bytes,
                    retain=True)
    for data in chunks:
        stream.append(data)
    for extent in stream.extents[:-1]:
        assert extent.sealed
        with pytest.raises(StreamError):
            extent.append(b"x")
    # Sealing the stream freezes the tail extent too.
    stream.seal()
    digest_before = stream.digest()
    for extent in stream.extents:
        with pytest.raises(StreamError):
            extent.append(b"x")
    assert stream.digest() == digest_before


@given(chunks=records(), extent_bytes=st.integers(300, 1000))
@settings(max_examples=30, deadline=None)
def test_appends_are_atomic_within_one_extent(chunks, extent_bytes):
    stream = Stream("s", ExtentPlacement(NODES), extent_bytes=extent_bytes,
                    retain=True)
    for data in chunks:
        index, offset = stream.append(data)
        # The record landed entirely inside extent ``index``.
        assert offset + len(data) <= stream.extents[index].limit_bytes
        assert stream.extents[index].read(offset, len(data)) == data


@given(chunks=records(), extent_bytes=st.integers(300, 1000))
@settings(max_examples=30, deadline=None)
def test_digest_is_deterministic_and_order_sensitive(chunks, extent_bytes):
    def build():
        stream = Stream("s", ExtentPlacement(NODES),
                        extent_bytes=extent_bytes, retain=True)
        for data in chunks:
            stream.append(data)
        return stream

    assert build().digest() == build().digest()
    if len(chunks) > 1 and chunks[0] != chunks[-1]:
        reordered = Stream("s", ExtentPlacement(NODES),
                           extent_bytes=extent_bytes, retain=True)
        for data in reversed(chunks):
            reordered.append(data)
        assert reordered.digest() != build().digest()


@given(sizes=st.lists(st.integers(0, 300), min_size=1, max_size=20),
       extent_bytes=st.integers(300, 1000))
@settings(max_examples=30, deadline=None)
def test_virtual_appends_track_lengths_with_flat_content(sizes, extent_bytes):
    stream = Stream("s", ExtentPlacement(NODES), extent_bytes=extent_bytes,
                    retain=False)
    for i, nbytes in enumerate(sizes):
        index, offset = stream.append_virtual(nbytes, f"r{i}".encode())
        assert offset + nbytes <= extent_bytes
    assert stream.length == sum(sizes)
    for extent in stream.extents:
        assert not extent.retained
        with pytest.raises(StreamError):
            extent.read(0, extent.length)


@given(extent_count=st.integers(1, 12),
       replication=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_extent_placement_is_deterministic_round_robin(extent_count,
                                                       replication):
    placement = ExtentPlacement(NODES, replication)
    effective = min(replication, len(NODES))
    for index in range(extent_count):
        targets = placement.targets(index)
        assert len(targets) == len(set(targets)) == effective
        assert targets == placement.targets(index)  # pure function
        assert targets[0] == NODES[index % len(NODES)]


@given(sizes=st.lists(st.integers(1, 64), min_size=1, max_size=15))
@settings(max_examples=25, deadline=None)
def test_layer_digest_depends_only_on_append_sequence(sizes):
    def build():
        layer = StreamLayer(NODES, replication=3, extent_bytes=128)
        for i, nbytes in enumerate(sizes):
            layer.get_or_create(f"/f{i % 3}").append_virtual(
                nbytes, f"blk_{i}".encode())
        return layer

    assert build().digest() == build().digest()
