"""Property tests: the zero-copy buffer plane equals the legacy bytes plane.

PR 3 replaced the hot-path bytes slicing/joining in the content sources and
the filesystem with ``readinto`` into reusable buffers, plus memoized
checksums.  ``REPRO_LEGACY_BUFFERS`` (here via the ``legacy_buffers``
context manager) keeps the original implementation alive as a reference:
these tests drive both planes with randomized source shapes and random
offset/length windows — including page- and pattern-block-aligned
boundaries — and require byte-for-byte and digest-for-digest agreement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.content import (
    ConcatSource,
    LiteralSource,
    PatternSource,
    SliceSource,
    ZeroSource,
    legacy_buffers,
)
from repro.storage.filesystem import Inode, InodeRangeSource
from repro.storage.pagecache import PAGE_SIZE, PageCache

# Offsets/lengths are drawn around the implementation's interesting edges:
# the 32-byte pattern block, the 4 KiB page, and the 1 MiB streaming chunk.
_EDGES = (0, 1, 31, 32, 33, PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE + 1)


def _windows(size):
    values = [v for v in _EDGES if v <= size] + [size, max(0, size - 7)]
    return st.tuples(st.sampled_from(values), st.sampled_from(values))


@st.composite
def source_and_window(draw):
    kind = draw(st.sampled_from(
        ["literal", "pattern", "zero", "concat", "slice", "chunked"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    size = draw(st.integers(min_value=1, max_value=3 * PAGE_SIZE))
    if kind == "literal":
        data = bytes((seed + i * 13) % 256 for i in range(size))
        source = LiteralSource(data)
    elif kind == "pattern":
        source = PatternSource(size, seed=seed)
    elif kind == "zero":
        source = ZeroSource(size)
    elif kind == "concat":
        third = max(1, size // 3)
        source = ConcatSource([
            PatternSource(third, seed=seed),
            LiteralSource(bytes((seed + i) % 256 for i in range(third))),
            ZeroSource(size - 2 * third) if size > 2 * third
            else PatternSource(1, seed=seed + 1),
        ])
    elif kind == "slice":
        base = PatternSource(size + 64, seed=seed)
        source = SliceSource(base, draw(st.integers(0, 64)), size)
    else:
        # Adjacent slices of (a window of) one base — the shape a ring
        # read streams — exercises ConcatSource's transitive coalescing.
        base = SliceSource(PatternSource(size + 64, seed=seed),
                           draw(st.integers(0, 64)), size)
        chunk = draw(st.sampled_from([1, 7, 32, PAGE_SIZE]))
        source = ConcatSource([
            SliceSource(base, pos, min(chunk, size - pos))
            for pos in range(0, size, chunk)])
    offset, length = draw(_windows(source.size))
    return source, offset, length


@given(case=source_and_window())
@settings(max_examples=60, deadline=None)
def test_fast_read_equals_legacy_read(case):
    source, offset, length = case
    fast = source.read(offset, length)
    with legacy_buffers():
        legacy = source.read(offset, length)
    assert fast == legacy


@given(case=source_and_window(),
       chunk=st.sampled_from([7, 32, 100, PAGE_SIZE, 1 << 20]))
@settings(max_examples=60, deadline=None)
def test_fast_checksum_equals_legacy_checksum(case, chunk):
    source, _, _ = case
    # Fast plane memoizes; compute it first so a stale memo would be caught
    # by the legacy reference, which always streams from scratch.
    fast = source.checksum(chunk)
    with legacy_buffers():
        legacy = source.checksum(chunk)
    assert fast == legacy
    assert source.checksum(chunk) == legacy  # memo stays right


@given(case=source_and_window())
@settings(max_examples=60, deadline=None)
def test_readinto_matches_read(case):
    source, offset, length = case
    expected = source.read(offset, length)
    buf = bytearray(len(expected))
    wrote = source.readinto(offset, buf)
    assert wrote == len(expected)
    assert bytes(buf) == expected


@st.composite
def inode_and_window(draw):
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    n_parts = draw(st.integers(min_value=1, max_value=4))
    inode = Inode("file")
    for i in range(n_parts):
        part_size = draw(st.integers(min_value=1, max_value=PAGE_SIZE + 33))
        style = draw(st.sampled_from(["pattern", "literal", "zero"]))
        if style == "pattern":
            inode.append(PatternSource(part_size, seed=seed + i))
        elif style == "literal":
            inode.append(bytes((seed + i + j * 7) % 256
                               for j in range(part_size)))
        else:
            inode.append(ZeroSource(part_size))
    offset, length = draw(_windows(inode.size))
    return inode, offset, length


@given(case=inode_and_window())
@settings(max_examples=40, deadline=None)
def test_inode_read_across_parts_equals_legacy(case):
    inode, offset, length = case
    fast = inode.read(offset, length)
    with legacy_buffers():
        legacy = inode.read(offset, length)
    assert fast == legacy

    view = InodeRangeSource(inode)
    fast_sum = view.checksum()
    with legacy_buffers():
        legacy_sum = view.checksum()
    assert fast_sum == legacy_sum


@given(case=inode_and_window())
@settings(max_examples=40, deadline=None)
def test_inode_range_source_window_reads(case):
    inode, offset, length = case
    n = max(0, min(length, inode.size - offset))
    if inode.size - offset <= 0:
        return
    view = InodeRangeSource(inode, offset, inode.size - offset)
    assert view.read(0, length) == inode.read(offset, n)


# --------------------------------------------------------------- page cache
class _ReferenceLru:
    """The pre-optimization PageCache accounting, kept as an oracle."""

    def __init__(self, capacity_pages):
        from collections import OrderedDict
        self.capacity_pages = capacity_pages
        self.pages = OrderedDict()
        self.hits = self.misses = self.evictions = 0

    def missing_bytes(self, key, offset, length):
        missing = 0
        for page in PageCache.page_span(offset, length):
            if (key, page) in self.pages:
                self.hits += 1
                self.pages.move_to_end((key, page))
            else:
                self.misses += 1
                missing += 1
        return missing * PAGE_SIZE

    def insert(self, key, offset, length):
        for page in PageCache.page_span(offset, length):
            entry = (key, page)
            if entry in self.pages:
                self.pages.move_to_end(entry)
            else:
                self.pages[entry] = None
                if len(self.pages) > self.capacity_pages:
                    self.pages.popitem(last=False)
                    self.evictions += 1


@st.composite
def cache_workload(draw):
    capacity_pages = draw(st.sampled_from([1, 2, 3, 8, float("inf")]))
    n_ops = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(n_ops):
        ops.append((
            draw(st.sampled_from(["miss_then_insert", "probe"])),
            draw(st.sampled_from(["a", "b"])),
            draw(st.sampled_from(
                [0, 1, PAGE_SIZE - 1, PAGE_SIZE, 3 * PAGE_SIZE])),
            draw(st.sampled_from([1, PAGE_SIZE, 2 * PAGE_SIZE + 5])),
        ))
    return capacity_pages, ops


@given(workload=cache_workload())
@settings(max_examples=60, deadline=None)
def test_pagecache_accounting_matches_reference_lru(workload):
    """The split bounded/unbounded fast paths keep exact LRU semantics.

    Capacities of a few pages force evictions right at the LRU boundary —
    the regime where a recency-bookkeeping bug changes which page gets
    evicted and therefore every later hit/miss count.
    """
    capacity_pages, ops = workload
    capacity_bytes = (float("inf") if capacity_pages == float("inf")
                      else capacity_pages * PAGE_SIZE)
    cache = PageCache(capacity_bytes=capacity_bytes)
    oracle = _ReferenceLru(capacity_pages)
    for op, key, offset, length in ops:
        missing = cache.missing_bytes(key, offset, length)
        assert missing == oracle.missing_bytes(key, offset, length)
        if op == "miss_then_insert":
            cache.insert(key, offset, length)
            oracle.insert(key, offset, length)
        assert cache.resident_pages == len(oracle.pages)
    assert (cache.hits, cache.misses, cache.evictions) == \
        (oracle.hits, oracle.misses, oracle.evictions)
    if capacity_pages != float("inf"):
        # LRU order is only observable (and only maintained) when bounded.
        assert list(cache._pages) == list(oracle.pages)
    else:
        assert set(cache._pages) == set(oracle.pages)
