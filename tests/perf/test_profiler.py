"""End-to-end tests for the profiling harness (``python -m repro profile``)."""

import json

import pytest

from repro.perf.profiler import ProfileReport, profile_experiment, write_json


@pytest.fixture(scope="module")
def fig03_report():
    # One real profiled run shared across the module: cProfile makes the
    # quick fig03 sweep a second or two, no need to repeat it per test.
    return profile_experiment("fig03", profile="quick", top=5)


def test_profile_runs_experiment_end_to_end(fig03_report):
    report = fig03_report
    assert report.experiment == "fig03"
    assert report.profile == "quick"
    assert report.wall_seconds > 0
    assert report.kernel["events_processed"] > 0
    assert report.kernel["simulators"] >= 1
    assert report.events_per_second > 0
    assert 0.0 <= report.cancelled_ratio < 1.0


def test_top_functions_shortened_and_bounded(fig03_report):
    top = fig03_report.top_functions
    assert 0 < len(top) <= 5
    for where, calls, tottime, cumtime in top:
        assert calls > 0
        assert cumtime >= 0
        # Repo paths are shortened to repro/...; builtins keep their name.
        assert not where.startswith("/") or "repro/" not in where


def test_render_mentions_kernel_counters(fig03_report):
    text = fig03_report.render()
    assert "events processed" in text
    assert "heap high-water" in text
    assert "hottest functions" in text


def test_json_roundtrip(fig03_report, tmp_path):
    out = tmp_path / "prof.json"
    write_json(fig03_report, str(out))
    data = json.loads(out.read_text())
    assert data["experiment"] == "fig03"
    assert data["kernel"]["events_processed"] \
        == fig03_report.kernel["events_processed"]
    assert len(data["top_functions"]) == len(fig03_report.top_functions)


def test_kernel_breakdown_reports_fast_path_counters():
    report = profile_experiment("fig03", profile="quick", top=3,
                                kernel_breakdown=True)
    assert report.epochs is not None
    for key in ("epochs_formed", "epochs_completed", "epochs_demoted",
                "epochs_rejected", "epoch_records"):
        assert key in report.epochs
    # fig03 runs uncontended VMs: the wheel spins, epochs never form.
    assert report.kernel["wheel_advances"] > 0
    assert report.epochs["epochs_formed"] == 0
    text = report.render()
    assert "kernel breakdown" in text
    assert "wheel advances" in text
    assert "epochs formed" in text


def test_kernel_breakdown_off_by_default(fig03_report, tmp_path):
    assert fig03_report.epochs is None
    assert "kernel breakdown" not in fig03_report.render()
    out = tmp_path / "prof.json"
    write_json(fig03_report, str(out))
    assert json.loads(out.read_text())["epochs"] is None


def test_memory_mode_reports_traced_heap():
    report = profile_experiment("fig03", profile="quick", top=3, memory=True)
    assert report.peak_traced_mb is not None
    assert report.peak_traced_mb > 0
    assert report.trace_top  # at least one allocation site
    assert "peak traced heap" in report.render()


def test_events_per_second_zero_wall_guard():
    report = ProfileReport(experiment="x", profile="quick",
                           wall_seconds=0.0, kernel={})
    assert report.events_per_second == 0.0
    assert report.cancelled_ratio == 0.0
