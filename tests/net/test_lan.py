"""Tests for the physical LAN / NIC model."""

import pytest

from repro.hostmodel import PhysicalHost
from repro.hostmodel.costs import CostModel
from repro.net.lan import Lan
from repro.sim import SimulationError, Simulator


def make_lan(n_hosts=2):
    sim = Simulator()
    costs = CostModel()
    lan = Lan(sim, costs)
    hosts = [PhysicalHost(sim, f"host{i}", costs=costs) for i in range(n_hosts)]
    for host in hosts:
        lan.attach(host)
    return sim, lan, hosts, costs


def test_attach_installs_nic():
    _, lan, hosts, _ = make_lan()
    assert hosts[0].nic is lan.nic_of(hosts[0])


def test_double_attach_rejected():
    sim, lan, hosts, _ = make_lan()
    with pytest.raises(SimulationError):
        lan.attach(hosts[0])


def test_nic_of_unattached_host():
    sim, lan, hosts, costs = make_lan()
    stranger = PhysicalHost(sim, "stranger", costs=costs)
    with pytest.raises(SimulationError):
        lan.nic_of(stranger)


def test_transfer_time_is_wire_plus_latency():
    sim, lan, hosts, costs = make_lan()
    nbytes = 1 << 20

    def proc():
        yield from lan.transfer(hosts[0], hosts[1], nbytes)
        return sim.now

    process = sim.process(proc())
    sim.run()
    expected = nbytes / costs.nic_bandwidth_bytes_per_sec + costs.lan_latency
    assert process.value == pytest.approx(expected)


def test_transfer_same_host_rejected():
    sim, lan, hosts, _ = make_lan()

    def proc():
        yield from lan.transfer(hosts[0], hosts[0], 100)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_sender_nic_serializes_transmissions():
    sim, lan, hosts, costs = make_lan()
    finish = []
    nbytes = 1 << 20

    def proc():
        yield from lan.transfer(hosts[0], hosts[1], nbytes)
        finish.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    wire = nbytes / costs.nic_bandwidth_bytes_per_sec
    assert finish[0] == pytest.approx(wire + costs.lan_latency)
    assert finish[1] == pytest.approx(2 * wire + costs.lan_latency)


def test_byte_counters():
    sim, lan, hosts, _ = make_lan()

    def proc():
        yield from lan.transfer(hosts[0], hosts[1], 1000)

    sim.process(proc())
    sim.run()
    assert lan.nic_of(hosts[0]).bytes_sent == 1000
    assert lan.nic_of(hosts[1]).bytes_received == 1000


def test_negative_transmit_rejected():
    sim, lan, hosts, _ = make_lan()

    def proc():
        yield from lan.nic_of(hosts[0]).transmit(-5)

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()
