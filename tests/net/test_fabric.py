"""Tests for the rack-aware fabric: distances, uplinks, cross-rack cost."""

import pytest

from repro.hostmodel import PhysicalHost
from repro.hostmodel.costs import CostModel
from repro.net.lan import (
    CROSS_RACK,
    DEFAULT_RACK,
    SAME_HOST,
    SAME_RACK,
    Lan,
    host_distance,
)
from repro.sim import SimulationError, Simulator


def make_fabric(racks=("rackA", "rackA", "rackB"), oversubscription=4.0):
    sim = Simulator()
    costs = CostModel()
    lan = Lan(sim, costs, oversubscription=oversubscription)
    hosts = []
    for i, rack in enumerate(racks):
        host = PhysicalHost(sim, f"h{i}", costs=costs)
        lan.attach(host, rack=rack)
        hosts.append(host)
    return sim, lan, hosts, costs


def test_attach_stamps_rack():
    _, _, hosts, _ = make_fabric()
    assert hosts[0].rack == "rackA"
    assert hosts[2].rack == "rackB"


def test_attach_without_rack_uses_default():
    sim = Simulator()
    costs = CostModel()
    lan = Lan(sim, costs)
    host = PhysicalHost(sim, "h0", costs=costs)
    lan.attach(host)
    assert host.rack == DEFAULT_RACK


def test_host_distance_levels():
    _, lan, hosts, _ = make_fabric()
    assert host_distance(hosts[0], hosts[0]) == SAME_HOST
    assert host_distance(hosts[0], hosts[1]) == SAME_RACK
    assert host_distance(hosts[0], hosts[2]) == CROSS_RACK
    assert lan.distance(hosts[0], hosts[2]) == CROSS_RACK


def test_host_distance_unattached_hosts_count_as_same_rack():
    sim = Simulator()
    a = PhysicalHost(sim, "a")
    b = PhysicalHost(sim, "b")
    assert host_distance(a, b) == SAME_RACK


def test_oversubscription_below_one_rejected():
    with pytest.raises(SimulationError, match="oversubscription"):
        Lan(Simulator(), CostModel(), oversubscription=0.5)


def test_uplink_bandwidth_is_rack_sum_over_oversubscription():
    _, lan, _, costs = make_fabric(oversubscription=4.0)
    uplink = lan.uplink_of("rackA")  # two hosts in rackA
    expected = costs.nic_bandwidth_bytes_per_sec * 2 / 4.0
    assert uplink.bandwidth_bytes_per_sec == pytest.approx(expected)


def test_same_rack_transfer_matches_flat_lan():
    sim, lan, hosts, costs = make_fabric()
    nbytes = 1 << 20

    def proc():
        yield from lan.transfer(hosts[0], hosts[1], nbytes)
        return sim.now

    process = sim.process(proc())
    sim.run()
    expected = nbytes / costs.nic_bandwidth_bytes_per_sec + costs.lan_latency
    assert process.value == pytest.approx(expected)


def test_cross_rack_transfer_pays_uplink_and_extra_hops():
    sim, lan, hosts, costs = make_fabric()
    nbytes = 1 << 20

    def proc():
        yield from lan.transfer(hosts[0], hosts[2], nbytes)
        return sim.now

    process = sim.process(proc())
    sim.run()
    uplink = lan.uplink_of("rackA")
    expected = (nbytes / costs.nic_bandwidth_bytes_per_sec
                + nbytes / uplink.bandwidth_bytes_per_sec
                + 3 * costs.lan_latency)
    assert process.value == pytest.approx(expected)
    assert uplink.bytes_sent == nbytes


def test_cross_rack_flows_serialize_on_the_uplink():
    sim, lan, hosts, costs = make_fabric(racks=("rackA", "rackA", "rackB"))
    nbytes = 4 << 20

    def proc(src):
        yield from lan.transfer(src, hosts[2], nbytes)
        return sim.now

    a = sim.process(proc(hosts[0]))
    b = sim.process(proc(hosts[1]))
    sim.run()
    # Two senders share one rackA uplink: the later finisher pays for both
    # uplink occupancies, so it cannot match the solo transfer time.
    solo = (nbytes / costs.nic_bandwidth_bytes_per_sec
            + nbytes / lan.uplink_of("rackA").bandwidth_bytes_per_sec
            + 3 * costs.lan_latency)
    assert max(a.value, b.value) > solo
