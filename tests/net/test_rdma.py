"""Tests for the RDMA/RoCE model, including the TCP CPU-cost asymmetry."""

import pytest

from repro.metrics.accounting import RDMA
from repro.sim import SimulationError


def make_qp(bed):
    daemon1 = bed.hosts[0].thread("vread-daemon")
    daemon2 = bed.hosts[1].thread("vread-daemon")
    return bed.rdma.queue_pair(bed.hosts[0], daemon1, bed.hosts[1], daemon2)


def test_post_send_delivers_payload(testbed):
    qp_a, qp_b = make_qp(testbed)
    got = []

    def receiver():
        got.append((yield from qp_b.poll_recv()))

    def sender():
        yield from qp_a.post_send(b"rdma-payload")

    recv_proc = testbed.sim.process(receiver())
    testbed.sim.process(sender())
    testbed.run(recv_proc)
    assert got == [b"rdma-payload"]
    assert qp_a.messages_sent == 1
    assert qp_a.bytes_sent == len(b"rdma-payload")


def test_rdma_cpu_cost_is_tiny_compared_to_tcp(testbed):
    bed = testbed
    costs = bed.costs
    nbytes = 1 << 20
    # RDMA CPU cycles for 1MB: 2 WRs + ~0.02/byte.
    rdma_cycles = (2 * costs.rdma_work_request_cycles
                   + costs.rdma_copy_cycles_per_byte * nbytes
                   + 2 * costs.rdma_mr_registration_cycles)
    # TCP path cycles for 1MB (guest tx + vhost both sides + guest rx).
    segs = costs.segments(nbytes)
    tcp_cycles = (costs.tcp_tx_segment_cycles * segs
                  + costs.tcp_copy_cycles_per_byte * nbytes * 2
                  + 2 * (costs.vhost_segment_cycles * segs
                         + costs.vhost_copy_cycles_per_byte * nbytes)
                  + costs.tcp_rx_segment_cycles * segs)
    assert rdma_cycles < tcp_cycles / 10


def test_rdma_charges_rdma_category(testbed):
    bed = testbed
    qp_a, qp_b = make_qp(bed)
    mark1 = bed.hosts[0].accounting.snapshot()
    mark2 = bed.hosts[1].accounting.snapshot()

    def exchange():
        def sender():
            yield from qp_a.post_send(b"x" * 100_000)
        bed.sim.process(sender())
        yield from qp_b.poll_recv()

    bed.run(bed.sim.process(exchange()))
    w1 = bed.hosts[0].accounting.since(mark1).by_category()
    w2 = bed.hosts[1].accounting.since(mark2).by_category()
    assert w1.get(RDMA, 0) > 0
    assert w2.get(RDMA, 0) > 0
    # Active-push: the sender side carries more RDMA cost per message.
    assert w1[RDMA] > w2[RDMA] - 1e-12


def test_mr_registration_charged_once(testbed):
    bed = testbed
    qp_a, qp_b = make_qp(bed)
    costs = bed.costs

    def exchange(n):
        def sender():
            for _ in range(n):
                yield from qp_a.post_send(b"small")
        bed.sim.process(sender())
        for _ in range(n):
            yield from qp_b.poll_recv()

    mark = bed.hosts[0].accounting.snapshot()
    bed.run(bed.sim.process(exchange(3)))
    busy = bed.hosts[0].accounting.since(mark).by_category()[RDMA]
    freq = bed.hosts[0].frequency_hz
    expected_cycles = (costs.rdma_mr_registration_cycles
                       + 3 * (costs.rdma_work_request_cycles
                              + costs.rdma_copy_cycles_per_byte * 5))
    assert busy == pytest.approx(expected_cycles / freq, rel=1e-6)


def test_queue_pair_same_host_rejected(testbed):
    bed = testbed
    t1 = bed.hosts[0].thread("d1")
    t2 = bed.hosts[0].thread("d2")
    with pytest.raises(SimulationError):
        bed.rdma.queue_pair(bed.hosts[0], t1, bed.hosts[0], t2)


def test_unconnected_qp_has_no_peer(testbed):
    from repro.net.rdma import RdmaQueuePair
    qp = RdmaQueuePair(testbed.rdma, testbed.hosts[0],
                       testbed.hosts[0].thread("d"))
    with pytest.raises(SimulationError):
        _ = qp.peer


def test_wire_time_matches_lan(testbed):
    bed = testbed
    qp_a, qp_b = make_qp(bed)
    nbytes = 1 << 20

    def exchange():
        def sender():
            yield from qp_a.post_send(b"", size=nbytes)
        bed.sim.process(sender())
        yield from qp_b.poll_recv()
        return bed.sim.now

    finish = bed.run(bed.sim.process(exchange()))
    wire = nbytes / bed.costs.nic_bandwidth_bytes_per_sec
    # Wire time dominates; CPU adds a little.
    assert finish >= wire
    assert finish < wire * 1.5
