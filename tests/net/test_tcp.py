"""Tests for VM-to-VM TCP: delivery, ordering, cost attribution, paths."""

import pytest

from repro.metrics.accounting import CLIENT_APPLICATION, OTHERS, VHOST_NET
from repro.sim import SimulationError
from repro.storage.content import LiteralSource


def _connect(bed, client, server, port=50010):
    listener = bed.network.listen(server, port)
    conn_holder = {}

    def server_side():
        conn = yield from listener.accept()
        conn_holder["server"] = conn

    def client_side():
        conn = yield from bed.network.connect(client, server, port)
        conn_holder["client"] = conn

    server_proc = bed.sim.process(server_side())
    bed.sim.process(client_side())
    bed.run(server_proc)
    bed.sim.run()  # drain the client side's final resumption
    # Both sides hold the same connection object.
    assert conn_holder["client"] is conn_holder["server"]
    return conn_holder["client"]


def test_send_recv_roundtrip_same_host(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    received = []

    def receiver():
        payload = yield from conn.recv(vm2)
        received.append(payload)

    def sender():
        yield from conn.send(vm1, b"hello hdfs")

    recv_proc = bed.sim.process(receiver())
    bed.sim.process(sender())
    bed.run(recv_proc)
    assert received == [b"hello hdfs"]


def test_messages_preserve_fifo_order(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    received = []

    def receiver():
        for _ in range(5):
            received.append((yield from conn.recv(vm2)))

    def sender():
        for i in range(5):
            yield from conn.send(vm1, f"msg-{i}".encode())

    recv_proc = bed.sim.process(receiver())
    bed.sim.process(sender())
    bed.run(recv_proc)
    assert received == [f"msg-{i}".encode() for i in range(5)]


def test_bytesource_payloads_pass_without_materializing(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    payload = LiteralSource(b"x" * 1000)

    def receiver():
        source = yield from conn.recv(vm2)
        return source

    def sender():
        yield from conn.send(vm1, payload)

    recv_proc = bed.sim.process(receiver())
    bed.sim.process(sender())
    got = bed.run(recv_proc)
    assert got is payload


def test_colocated_send_charges_both_vhost_threads(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    mark = bed.hosts[0].accounting.snapshot()

    def exchange():
        def sender():
            yield from conn.send(vm1, b"z" * 100_000)
        bed.sim.process(sender())
        yield from conn.recv(vm2)

    bed.run(bed.sim.process(exchange()))
    window = bed.hosts[0].accounting.since(mark)
    by_thread = window.by_thread()
    # tx descriptors on the sender's vhost; the inter-VM copy lands on the
    # receiver's vhost, so the receiver side carries the per-byte cost.
    assert by_thread.get(vm1.vhost.name, 0) > 0
    assert by_thread.get(vm2.vhost.name, 0) > by_thread[vm1.vhost.name]
    assert window.by_category().get(VHOST_NET, 0) > 0


def test_remote_send_charges_both_vhosts_and_wire_time(testbed):
    bed = testbed
    vm1 = bed.vms[0]            # host1
    vm3 = bed.vms[2]            # host2
    conn = _connect(bed, vm1, vm3)
    mark1 = bed.hosts[0].accounting.snapshot()
    mark2 = bed.hosts[1].accounting.snapshot()

    def exchange():
        def sender():
            yield from conn.send(vm1, b"z" * 500_000)
        bed.sim.process(sender())
        yield from conn.recv(vm3)

    bed.run(bed.sim.process(exchange()))
    w1 = bed.hosts[0].accounting.since(mark1).by_thread()
    w2 = bed.hosts[1].accounting.since(mark2).by_thread()
    assert w1.get(vm1.vhost.name, 0) > 0
    assert w2.get(vm3.vhost.name, 0) > 0
    assert bed.lan.nic_of(bed.hosts[0]).bytes_sent >= 500_000


def test_recv_copy_category_is_honoured(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    mark = bed.hosts[0].accounting.snapshot()

    def exchange():
        def sender():
            yield from conn.send(vm1, b"y" * 200_000)
        bed.sim.process(sender())
        yield from conn.recv(vm2, copy_category=CLIENT_APPLICATION)

    bed.run(bed.sim.process(exchange()))
    window = bed.hosts[0].accounting.since(mark)
    per_cat = window.by_category(threads=[vm2.vcpu.name])
    assert per_cat.get(CLIENT_APPLICATION, 0) > 0


def test_connect_to_unbound_port_refused(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms

    def proc():
        yield from bed.network.connect(vm1, vm2, 9999)

    bed.sim.process(proc())
    with pytest.raises(SimulationError, match="refused"):
        bed.sim.run()


def test_double_listen_rejected(single_host_bed):
    bed = single_host_bed
    _, vm2 = bed.vms
    bed.network.listen(vm2, 50010)
    with pytest.raises(SimulationError):
        bed.network.listen(vm2, 50010)


def test_send_after_close_rejected(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    conn.close()

    def proc():
        yield from conn.send(vm1, b"late")

    bed.sim.process(proc())
    with pytest.raises(SimulationError, match="closed"):
        bed.sim.run()


def test_non_endpoint_cannot_send(testbed):
    bed = testbed
    vm1, vm2, vm3 = bed.vms[:3]
    conn = _connect(bed, vm1, vm2)

    def proc():
        yield from conn.send(vm3, b"intruder")

    bed.sim.process(proc())
    with pytest.raises(SimulationError):
        bed.sim.run()


def test_backpressure_blocks_sender(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    sent = []

    def sender():
        # In-flight window is 8 by default; receiver never drains, so at
        # most window + a couple in the pipe can complete.
        for i in range(40):
            yield from conn.send(vm1, f"m{i}".encode())
            sent.append(i)

    bed.sim.process(sender())
    bed.sim.run()
    assert len(sent) < 40


def test_bidirectional_traffic(single_host_bed):
    bed = single_host_bed
    vm1, vm2 = bed.vms
    conn = _connect(bed, vm1, vm2)
    log = []

    def side_a():
        yield from conn.send(vm1, b"ping")
        log.append((yield from conn.recv(vm1)))

    def side_b():
        log.append((yield from conn.recv(vm2)))
        yield from conn.send(vm2, b"pong")

    proc = bed.sim.process(side_a())
    bed.sim.process(side_b())
    bed.run(proc)
    assert log == [b"ping", b"pong"]
