"""Validation tests for HdfsConfig."""

import pytest

from repro.hdfs.config import DEFAULT_BLOCK_SIZE, HdfsConfig


def test_defaults_match_hadoop_1x():
    config = HdfsConfig()
    assert config.block_size == 64 * 1024 * 1024 == DEFAULT_BLOCK_SIZE
    assert config.replication == 1
    assert config.data_dir == "/hadoop/dfs/data"
    assert config.datanode_port == 50010
    assert config.packet_bytes == 256 * 1024


def test_block_size_validation():
    with pytest.raises(ValueError):
        HdfsConfig(block_size=0)


def test_replication_validation():
    with pytest.raises(ValueError):
        HdfsConfig(replication=0)


def test_data_dir_must_be_absolute():
    with pytest.raises(ValueError):
        HdfsConfig(data_dir="relative/path")


def test_packet_bytes_validation():
    with pytest.raises(ValueError):
        HdfsConfig(packet_bytes=0)


def test_config_is_frozen():
    config = HdfsConfig()
    with pytest.raises(Exception):
        config.block_size = 1
