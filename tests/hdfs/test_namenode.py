"""Tests for namenode metadata: files, blocks, placement, notifications."""

import pytest

from repro.hdfs.namenode import HdfsError


def test_create_file_and_exists(hadoop_bed):
    meta = hadoop_bed.namenode.create_file("/f")
    assert hadoop_bed.namenode.exists("/f")
    assert meta.length == 0
    with pytest.raises(HdfsError):
        hadoop_bed.namenode.create_file("/f")


def test_allocate_blocks_sequential_offsets(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    b1 = nn.allocate_block("/f", hadoop_bed.client_vm)
    b1.size = 100
    nn.commit_block(b1)
    b2 = nn.allocate_block("/f", hadoop_bed.client_vm)
    assert b1.index == 0 and b2.index == 1
    assert b2.offset == 100
    assert b1.name != b2.name


def test_allocate_requires_previous_commit(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    nn.allocate_block("/f", hadoop_bed.client_vm)
    with pytest.raises(HdfsError, match="under construction"):
        nn.allocate_block("/f", hadoop_bed.client_vm)


def test_placement_prefers_colocated_datanode(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    block = nn.allocate_block("/f", hadoop_bed.client_vm)
    # dn1 shares host1 with the client VM.
    assert block.locations[0] == "dn1"


def test_placement_favored_datanode_wins(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    block = nn.allocate_block("/f", hadoop_bed.client_vm, favored=["dn2"])
    assert block.locations == ["dn2"]


def test_placement_replication_spreads(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f", replication=2)
    block = nn.allocate_block("/f", hadoop_bed.client_vm)
    assert sorted(block.locations) == ["dn1", "dn2"]


def test_replication_exceeding_datanodes_fails(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f", replication=3)
    with pytest.raises(RuntimeError, match="replication"):
        nn.allocate_block("/f", hadoop_bed.client_vm)


def test_read_replica_prefers_colocated(hadoop_bed):
    policy = hadoop_bed.namenode.policy
    chosen = policy.choose_read_replica(hadoop_bed.client_vm, ["dn2", "dn1"])
    assert chosen == "dn1"
    chosen_remote_only = policy.choose_read_replica(
        hadoop_bed.client_vm, ["dn2"])
    assert chosen_remote_only == "dn2"


def test_commit_notifies_observers(hadoop_bed):
    nn = hadoop_bed.namenode
    events = []
    nn.add_observer(lambda ev, blk, dn: events.append((ev, blk.name, dn)))
    nn.create_file("/f")
    block = nn.allocate_block("/f", hadoop_bed.client_vm)
    nn.commit_block(block)
    assert ("commit", block.name, "dn1") in events


def test_double_commit_rejected(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    block = nn.allocate_block("/f", hadoop_bed.client_vm)
    nn.commit_block(block)
    with pytest.raises(HdfsError):
        nn.commit_block(block)


def test_blocks_in_range(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    blocks = []
    for _ in range(3):
        block = nn.allocate_block("/f", hadoop_bed.client_vm)
        block.size = 100
        nn.commit_block(block)
        blocks.append(block)
    assert nn.blocks_in_range("/f", 0, 50) == [blocks[0]]
    assert nn.blocks_in_range("/f", 50, 100) == blocks[:2]
    assert nn.blocks_in_range("/f", 100, 1) == [blocks[1]]
    assert nn.blocks_in_range("/f", 0, 300) == blocks
    assert nn.blocks_in_range("/f", 299, 100) == [blocks[2]]
    with pytest.raises(HdfsError):
        nn.blocks_in_range("/f", -1, 10)


def test_complete_file_requires_committed_tail(hadoop_bed):
    nn = hadoop_bed.namenode
    nn.create_file("/f")
    nn.allocate_block("/f", hadoop_bed.client_vm)
    with pytest.raises(HdfsError):
        nn.complete_file("/f")


def test_delete_file_notifies_and_clears(hadoop_bed):
    nn = hadoop_bed.namenode
    events = []
    nn.add_observer(lambda ev, blk, dn: events.append((ev, blk.name, dn)))
    nn.create_file("/f")
    block = nn.allocate_block("/f", hadoop_bed.client_vm)
    nn.commit_block(block)
    nn.delete_file("/f")
    assert not nn.exists("/f")
    assert ("delete", block.name, "dn1") in events
    with pytest.raises(HdfsError):
        nn.block_by_name(block.name)


def test_unknown_lookups_raise(hadoop_bed):
    nn = hadoop_bed.namenode
    with pytest.raises(HdfsError):
        nn.file("/missing")
    with pytest.raises(HdfsError):
        nn.datanode("dn99")
    with pytest.raises(HdfsError):
        nn.delete_file("/missing")


def test_register_datanode_twice_rejected(hadoop_bed):
    with pytest.raises(HdfsError):
        hadoop_bed.namenode.register_datanode(hadoop_bed.datanode1)
