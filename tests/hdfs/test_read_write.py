"""End-to-end HDFS tests: write pipelines, reads, integrity, replica choice."""

import pytest

from repro.hdfs.protocol import HdfsProtocolError
from repro.storage.content import PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def read_all(bed, path, request_bytes=64 * 1024):
    def proc():
        source = yield from bed.client.read_file(path, request_bytes)
        return source

    return bed.run(bed.sim.process(proc()))


def test_write_then_read_roundtrip(hadoop_bed):
    payload = b"hello HDFS " * 1000
    write(hadoop_bed, "/f", payload)
    got = read_all(hadoop_bed, "/f")
    assert got.read(0, got.size) == payload


def test_multi_block_file_split_and_rejoined(hadoop_bed):
    # block_size=256KB in the fixture; write ~700KB => 3 blocks.
    payload = PatternSource(700 * 1024, seed=11)
    write(hadoop_bed, "/big", payload)
    blocks = hadoop_bed.namenode.get_blocks("/big")
    assert [b.size for b in blocks] == [256 * 1024, 256 * 1024, 188 * 1024]
    assert all(b.committed for b in blocks)
    got = read_all(hadoop_bed, "/big")
    assert got.size == payload.size
    assert got.checksum() == payload.checksum()


def test_block_files_exist_on_datanode(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 1000)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    # Co-located placement => dn1 holds the replica as a plain file.
    assert block.locations == ["dn1"]
    assert hadoop_bed.datanode1.has_block(block.name)
    path = hadoop_bed.datanode1.block_path(block.name)
    assert hadoop_bed.datanode1_vm.guest_fs.read(path) == b"x" * 1000


def test_favored_datanode_places_remotely(hadoop_bed):
    write(hadoop_bed, "/remote", b"y" * 500, favored=["dn2"])
    block = hadoop_bed.namenode.get_blocks("/remote")[0]
    assert block.locations == ["dn2"]
    assert hadoop_bed.datanode2.has_block(block.name)
    got = read_all(hadoop_bed, "/remote")
    assert got.read(0, got.size) == b"y" * 500


def test_replicated_write_reaches_both_datanodes(hadoop_bed):
    write(hadoop_bed, "/r2", b"z" * 2000, replication=2)
    block = hadoop_bed.namenode.get_blocks("/r2")[0]
    assert sorted(block.locations) == ["dn1", "dn2"]
    for datanode in (hadoop_bed.datanode1, hadoop_bed.datanode2):
        path = datanode.block_path(block.name)
        assert datanode.vm.guest_fs.read(path) == b"z" * 2000


def test_sequential_read_does_not_cross_blocks(hadoop_bed):
    write(hadoop_bed, "/f", PatternSource(300 * 1024, seed=4))

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        # Ask for 100KB starting 200KB in: block boundary at 256KB caps it.
        stream.seek(200 * 1024)
        piece = yield from stream.read(100 * 1024)
        return piece.size

    assert hadoop_bed.run(hadoop_bed.sim.process(proc())) == 56 * 1024


def test_read_at_eof_returns_none(hadoop_bed):
    write(hadoop_bed, "/f", b"abc")

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        stream.seek(3)
        return (yield from stream.read(10))

    assert hadoop_bed.run(hadoop_bed.sim.process(proc())) is None


def test_pread_spans_blocks(hadoop_bed):
    payload = PatternSource(600 * 1024, seed=9)
    write(hadoop_bed, "/f", payload)

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        # Range straddling the first block boundary.
        piece = yield from stream.pread(250 * 1024, 20 * 1024)
        return piece

    piece = hadoop_bed.run(hadoop_bed.sim.process(proc()))
    assert piece.size == 20 * 1024
    assert piece.read(0, piece.size) == payload.read(250 * 1024, 20 * 1024)


def test_pread_does_not_move_position(hadoop_bed):
    write(hadoop_bed, "/f", b"0123456789")

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        yield from stream.pread(5, 3)
        piece = yield from stream.read(4)
        return piece.read(0, 4)

    assert hadoop_bed.run(hadoop_bed.sim.process(proc())) == b"0123"


def test_seek_and_skip(hadoop_bed):
    write(hadoop_bed, "/f", b"abcdefghij")

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        stream.seek(2)
        stream.skip(3)
        piece = yield from stream.read(2)
        return piece.read(0, 2)

    assert hadoop_bed.run(hadoop_bed.sim.process(proc())) == b"fg"


def test_closed_stream_rejects_reads(hadoop_bed):
    write(hadoop_bed, "/f", b"abc")

    def proc():
        stream = yield from hadoop_bed.client.open("/f")
        stream.close()
        yield from stream.read(1)

    hadoop_bed.sim.process(proc())
    with pytest.raises(HdfsProtocolError):
        hadoop_bed.sim.run()


def test_delete_removes_replica_files(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 100)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    assert hadoop_bed.datanode1.has_block(block.name)

    def proc():
        yield from hadoop_bed.client.delete("/f")

    hadoop_bed.run(hadoop_bed.sim.process(proc()))
    assert not hadoop_bed.datanode1.has_block(block.name)
    assert not hadoop_bed.client.exists("/f")


def test_remote_read_uses_the_wire(hadoop_bed):
    write(hadoop_bed, "/remote", PatternSource(256 * 1024, seed=2),
          favored=["dn2"])
    sent_before = hadoop_bed.lan.nic_of(hadoop_bed.hosts[1]).bytes_sent
    read_all(hadoop_bed, "/remote")
    sent_after = hadoop_bed.lan.nic_of(hadoop_bed.hosts[1]).bytes_sent
    assert sent_after - sent_before >= 256 * 1024


def test_colocated_read_stays_off_the_wire(hadoop_bed):
    write(hadoop_bed, "/local", PatternSource(256 * 1024, seed=3),
          favored=["dn1"])
    host1_nic = hadoop_bed.lan.nic_of(hadoop_bed.hosts[0])
    sent_before = host1_nic.bytes_sent
    read_all(hadoop_bed, "/local")
    assert host1_nic.bytes_sent - sent_before < 10_000  # metadata only


def test_file_length_matches(hadoop_bed):
    write(hadoop_bed, "/f", b"q" * 12345)
    assert hadoop_bed.client.file_length("/f") == 12345


def test_write_to_completed_file_rejected(hadoop_bed):
    write(hadoop_bed, "/f", b"abc")

    def proc():
        stream = yield from hadoop_bed.client.create("/f2")
        yield from stream.write(b"x")
        yield from stream.close()
        yield from stream.write(b"more")

    hadoop_bed.sim.process(proc())
    with pytest.raises(HdfsProtocolError):
        hadoop_bed.sim.run()
