"""Tests for graceful datanode decommissioning."""

import pytest

from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode
from repro.hdfs.fsck import fsck
from repro.hdfs.replication import ReplicationMonitor
from repro.storage.content import PatternSource
from repro.virt.vm import VirtualMachine
from tests.conftest import Testbed


@pytest.fixture
def three_node():
    """Client + 3 datanodes across 3 hosts."""
    bed = Testbed(n_hosts=3, vms_per_host=1)
    client_vm = VirtualMachine(bed.hosts[0], "client")
    namenode = Namenode(HdfsConfig(block_size=128 * 1024), vm=client_vm)
    datanodes = [Datanode(f"dn{i + 1}", bed.vms[i], namenode, bed.network)
                 for i in range(3)]
    client = DfsClient(client_vm, namenode, bed.network)
    return bed, namenode, client, datanodes


def write(bed, client, path, data, **kwargs):
    def proc():
        yield from client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def run_for(bed, seconds):
    def proc():
        yield bed.sim.timeout(seconds)

    bed.run(bed.sim.process(proc()))


def test_decommission_drains_and_finalizes(three_node):
    bed, namenode, client, datanodes = three_node
    payload = PatternSource(300 * 1024, seed=21)
    write(bed, client, "/f", payload, favored=["dn1"])
    blocks = namenode.get_blocks("/f")
    assert all(b.locations == ["dn1"] for b in blocks)

    monitor = ReplicationMonitor(namenode, bed.network,
                                 heartbeat_interval=0.4)
    monitor.start(bed.sim)
    monitor.decommission("dn1")
    assert not monitor.is_drained("dn1")
    run_for(bed, 6.0)
    monitor.stop()

    assert monitor.is_drained("dn1")
    monitor.finalize_decommission("dn1")
    for block in blocks:
        assert "dn1" not in block.locations
        assert len(block.locations) >= 1
    assert fsck(namenode, verify_content=True).healthy

    # Data still reads correctly from wherever it landed.
    def read():
        source = yield from client.read_file("/f", 64 * 1024)
        return source

    assert bed.run(bed.sim.process(read())).checksum() == payload.checksum()


def test_decommissioning_node_excluded_from_new_writes(three_node):
    bed, namenode, client, datanodes = three_node
    monitor = ReplicationMonitor(namenode, bed.network)
    monitor.decommission("dn1")
    write(bed, client, "/new", b"x" * 1000)
    block = namenode.get_blocks("/new")[0]
    assert "dn1" not in block.locations


def test_finalize_before_drained_rejected(three_node):
    bed, namenode, client, datanodes = three_node
    write(bed, client, "/f", b"x" * 1000, favored=["dn1"])
    monitor = ReplicationMonitor(namenode, bed.network)
    monitor.decommission("dn1")
    with pytest.raises(RuntimeError, match="sole replicas"):
        monitor.finalize_decommission("dn1")


def test_decommission_unknown_datanode_rejected(three_node):
    bed, namenode, client, datanodes = three_node
    monitor = ReplicationMonitor(namenode, bed.network)
    with pytest.raises(Exception):
        monitor.decommission("dn99")


def test_reads_keep_working_during_drain(three_node):
    bed, namenode, client, datanodes = three_node
    payload = PatternSource(100 * 1024, seed=22)
    write(bed, client, "/f", payload, favored=["dn1"])
    monitor = ReplicationMonitor(namenode, bed.network,
                                 heartbeat_interval=5.0)  # slow sweep
    monitor.decommission("dn1")

    # Before any re-replication happened, dn1 still serves the read.
    def read():
        source = yield from client.read_file("/f", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()
    assert datanodes[0].blocks_served > 0


def _drain_locations():
    """Build a fresh 3-node bed, drain dn1, return final block locations."""
    bed = Testbed(n_hosts=3, vms_per_host=1)
    client_vm = VirtualMachine(bed.hosts[0], "client")
    namenode = Namenode(HdfsConfig(block_size=128 * 1024), vm=client_vm)
    for i in range(3):
        Datanode(f"dn{i + 1}", bed.vms[i], namenode, bed.network)
    client = DfsClient(client_vm, namenode, bed.network)
    write(bed, client, "/f", PatternSource(300 * 1024, seed=23),
          favored=["dn1"])
    monitor = ReplicationMonitor(namenode, bed.network,
                                 heartbeat_interval=0.4)
    monitor.start(bed.sim)
    monitor.decommission("dn1")
    run_for(bed, 6.0)
    monitor.stop()
    monitor.finalize_decommission("dn1")
    return {b.name: list(b.locations) for b in namenode.get_blocks("/f")}


def test_drain_copy_targets_are_deterministic():
    """Copy targets follow registration order: every drained replica lands
    on dn2 (the first live non-holder), and a repeat run is identical."""
    first = _drain_locations()
    assert all(locations == ["dn2"] for locations in first.values())
    assert _drain_locations() == first


def test_decommission_completes_under_disk_latency_spike():
    """A drain racing a slow source disk still converges — the copies just
    take longer — and the controller's counters see the traffic."""
    from repro.cluster import VirtualHadoopCluster, rack_cluster
    from repro.faults import DiskLatencySpike, FaultPlan

    plan = FaultPlan().at(0.0, DiskLatencySpike("host2", factor=20.0,
                                                duration=2.0))
    cluster = VirtualHadoopCluster(block_size=256 << 10, replication=1,
                                   topology=rack_cluster(1, 3),
                                   faults=plan)
    payload = PatternSource(600 << 10, seed=24)

    def load():
        yield from cluster.write_dataset("/f", payload, favored=["dn2"])

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    cluster.faults.arm()

    def churn():
        yield from cluster.membership.decommission_datanode(
            "dn2", poll_interval=0.3)

    cluster.run(cluster.sim.process(churn()))
    monitor = cluster.membership.monitor
    cluster.membership.stop_monitor()
    cluster.settle()

    assert monitor.re_replications > 0
    assert monitor.re_replication_bytes >= payload.size
    for block in cluster.namenode.get_blocks("/f"):
        assert "dn2" not in block.locations and block.locations

    def read():
        source = yield from cluster.clients.get().read_file("/f", 64 << 10)
        return source

    assert cluster.run(
        cluster.sim.process(read())).checksum() == payload.checksum()
