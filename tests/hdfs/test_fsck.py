"""Tests for the fsck consistency checker."""

import pytest

from repro.hdfs.fsck import fsck
from repro.storage.content import LiteralSource, PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def test_healthy_cluster(hadoop_bed):
    write(hadoop_bed, "/a", PatternSource(600 * 1024, seed=1))
    write(hadoop_bed, "/b", b"small", replication=2)
    report = fsck(hadoop_bed.namenode, verify_content=True)
    assert report.healthy
    assert report.files_checked == 2
    assert report.blocks_checked == 4   # 3 blocks + 1 block
    assert report.replicas_checked == 5  # 3 + 2
    assert "HEALTHY" in report.render()


def test_missing_replica_detected(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 1000)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    hadoop_bed.datanode1_vm.guest_fs.unlink(
        hadoop_bed.datanode1.block_path(block.name))
    report = fsck(hadoop_bed.namenode)
    assert not report.healthy
    assert report.problems[0].kind == "missing-replica"
    assert "CORRUPT" in report.render()


def test_size_mismatch_detected(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 1000)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    path = hadoop_bed.datanode1.block_path(block.name)
    hadoop_bed.datanode1_vm.guest_fs.append(path, b"EXTRA")
    report = fsck(hadoop_bed.namenode)
    assert [p.kind for p in report.problems] == ["size-mismatch"]


def test_content_mismatch_detected(hadoop_bed):
    write(hadoop_bed, "/f", b"A" * 500, replication=2)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    corrupt_dn = hadoop_bed.datanode2
    path = corrupt_dn.block_path(block.name)
    inode = corrupt_dn.vm.guest_fs.lookup(path)
    inode.truncate()
    inode.append(LiteralSource(b"B" * 500))  # same size, different bytes
    clean = fsck(hadoop_bed.namenode)                 # size-only: healthy
    assert clean.healthy
    deep = fsck(hadoop_bed.namenode, verify_content=True)
    assert [p.kind for p in deep.problems] == ["content-mismatch"]


def test_no_locations_detected(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 100)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    block.locations.clear()
    report = fsck(hadoop_bed.namenode)
    assert [p.kind for p in report.problems] == ["no-locations"]


def test_uncommitted_tail_of_complete_file_flagged(hadoop_bed):
    write(hadoop_bed, "/f", b"x" * 100)
    block = hadoop_bed.namenode.get_blocks("/f")[0]
    block.committed = False  # corrupt the metadata
    report = fsck(hadoop_bed.namenode)
    assert [p.kind for p in report.problems] == ["not-committed"]


def test_fsck_after_failover_scenarios(hadoop_bed):
    """fsck agrees with the replication state after a datanode loss."""
    from repro.hdfs.replication import ReplicationMonitor

    bed = hadoop_bed
    write(bed, "/r2", PatternSource(100 * 1024, seed=3), replication=2)
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    bed.datanode1.stop()

    def wait():
        yield bed.sim.timeout(6.0)

    bed.run(bed.sim.process(wait()))
    monitor.stop()
    # dn1's replica was dropped from metadata, so fsck only checks dn2.
    report = fsck(bed.namenode, verify_content=True)
    assert report.healthy
    assert report.replicas_checked == 1
