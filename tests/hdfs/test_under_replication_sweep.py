"""Tests for the monitor's under-replication sweep (non-dead-node repairs)."""

import pytest

from repro.hdfs.blockscanner import BlockScanner
from repro.hdfs.fsck import fsck
from repro.hdfs.replication import ReplicationMonitor
from repro.storage.content import LiteralSource, PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def run_for(bed, seconds):
    def proc():
        yield bed.sim.timeout(seconds)

    bed.run(bed.sim.process(proc()))


def test_scanner_dropped_replica_gets_repaired(hadoop_bed):
    """Block scanner drops a corrupt replica; the sweep re-replicates it
    without any datanode dying."""
    bed = hadoop_bed
    payload = PatternSource(100 * 1024, seed=77)
    write(bed, "/f", payload, replication=2)
    block = bed.namenode.get_blocks("/f")[0]

    scanner = BlockScanner(bed.datanode1, scan_interval=0.4)
    scanner._on_event("commit", block, "dn1")
    inode = bed.datanode1_vm.guest_fs.lookup(
        bed.datanode1.block_path(block.name))
    inode.truncate()
    inode.append(LiteralSource(b"\x00" * block.size))
    bed.datanode1_vm.drop_guest_cache()

    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    scanner.start()
    monitor.start(bed.sim)
    run_for(bed, 4.0)
    scanner.stop()
    monitor.stop()

    assert monitor.re_replications >= 1
    assert len(block.locations) == 2
    assert fsck(bed.namenode).healthy
    # The repaired replica carries the *good* bytes (copied from dn2).
    repaired_dn = bed.datanode1 if "dn1" in block.locations else None
    assert repaired_dn is not None
    stored = repaired_dn.vm.guest_fs.read(
        repaired_dn.block_path(block.name))
    assert stored == payload.read(0, payload.size)


def test_sweep_does_not_duplicate_repairs(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", b"x" * 50_000, replication=2)
    block = bed.namenode.get_blocks("/f")[0]
    block.locations.remove("dn1")  # manual decommission

    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.3)
    monitor.start(bed.sim)
    run_for(bed, 5.0)
    monitor.stop()
    # Exactly one repair despite many monitor ticks.
    assert monitor.re_replications == 1
    assert sorted(block.locations) == ["dn1", "dn2"]


def test_sweep_leaves_satisfied_blocks_alone(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", b"x" * 10_000, replication=2)
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.3)
    monitor.start(bed.sim)
    run_for(bed, 3.0)
    monitor.stop()
    assert monitor.re_replications == 0
