"""Rack-aware placement: the HDFS default rule and distance-ranked reads."""

import pytest

from repro.cluster import VirtualHadoopCluster, rack_cluster
from repro.storage.content import PatternSource


def make_cluster(**kwargs):
    kwargs.setdefault("topology", rack_cluster(2, 2))
    return VirtualHadoopCluster(block_size=1 << 20, **kwargs)


def test_three_replicas_span_exactly_two_racks():
    cluster = make_cluster()
    policy = cluster.namenode.policy
    targets = policy.choose_targets(cluster.client_vm, replication=3)
    racks = [cluster.host_of_datanode(dn).rack for dn in targets]
    assert len(targets) == 3
    assert len(set(racks)) == 2
    # Replica 1 is the co-located datanode (the writer's host).
    assert cluster.host_of_datanode(targets[0]) is cluster.client_vm.host
    # Replica 2 is on the other rack; replica 3 shares its rack but not
    # its node.
    assert racks[1] != racks[0]
    assert racks[2] == racks[1]
    assert targets[2] != targets[1]


def test_two_replicas_span_two_racks():
    cluster = make_cluster()
    targets = cluster.namenode.policy.choose_targets(cluster.client_vm,
                                                     replication=2)
    racks = {cluster.host_of_datanode(dn).rack for dn in targets}
    assert len(racks) == 2


def test_single_rack_placement_unchanged():
    # The default (paper) topology has one rack: co-located replica first,
    # round-robin fill — the pre-rack behaviour.
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    targets = cluster.namenode.policy.choose_targets(cluster.client_vm,
                                                     replication=2)
    assert targets == ["dn1", "dn2"]


def test_spread_skips_rack_rule():
    cluster = make_cluster()
    policy = cluster.namenode.policy
    first = policy.choose_targets(cluster.client_vm, replication=1,
                                  spread=True)
    second = policy.choose_targets(cluster.client_vm, replication=1,
                                   spread=True)
    assert first != second  # round-robin, not pinned to the local node


def test_read_replicas_ranked_by_network_distance():
    cluster = make_cluster(topology=rack_cluster(2, 2, clients=3))
    policy = cluster.namenode.policy
    # client3 lives on host3 (rack2); dn3 is co-located, dn4 same rack,
    # dn1/dn2 cross-rack.
    client3 = cluster.client_vms[2]
    assert client3.host is cluster.hosts[2]
    ranked = policy.rank_read_replicas(client3, ["dn1", "dn2", "dn3", "dn4"])
    assert ranked[0] == "dn3"
    assert ranked[1] == "dn4"
    assert set(ranked[2:]) == {"dn1", "dn2"}
    # Ties keep the namenode's order (stable sort).
    assert ranked[2:] == ["dn1", "dn2"]


def test_rank_read_replicas_empty_locations_rejected():
    cluster = make_cluster()
    with pytest.raises(RuntimeError, match="no locations"):
        cluster.namenode.policy.rank_read_replicas(cluster.client_vm, [])


def test_placement_decisions_observable_in_trace():
    cluster = make_cluster()
    payload = PatternSource(256 * 1024, seed=5)

    def load():
        yield from cluster.write_dataset("/trace/data", payload,
                                         replication=3)

    cluster.run(cluster.sim.process(load()))
    assert cluster.fault_counters.get("placement.cross-rack") > 0
    events = cluster.tracer.events(category="fault", name="placement.block")
    assert events
    fields = dict(events[0].fields)
    assert fields["racks"] == 2
    assert "@rack" in fields["layout"]
