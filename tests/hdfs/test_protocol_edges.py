"""Protocol edge cases: malformed requests, odd sizes, connection reuse."""

import pytest

from repro.hdfs.protocol import (
    Ack,
    ErrorResponse,
    OpReadBlock,
    OpWriteBlock,
    WritePacket,
)
from repro.storage.content import LiteralSource, PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def test_unknown_request_object_gets_error(hadoop_bed):
    bed = hadoop_bed

    def proc():
        connection = yield from bed.network.connect(
            bed.client_vm, bed.datanode1_vm, bed.config.datanode_port)
        yield from connection.send(bed.client_vm, "gibberish")
        response = yield from connection.recv(bed.client_vm)
        return response

    response = bed.run(bed.sim.process(proc()))
    assert isinstance(response, ErrorResponse)
    assert "bad request" in response.message


def test_read_of_unknown_block_gets_error(hadoop_bed):
    bed = hadoop_bed

    def proc():
        connection = yield from bed.network.connect(
            bed.client_vm, bed.datanode1_vm, bed.config.datanode_port)
        yield from connection.send(bed.client_vm,
                                   OpReadBlock("blk_404", 0, 100))
        response = yield from connection.recv(bed.client_vm)
        return response

    response = bed.run(bed.sim.process(proc()))
    assert isinstance(response, ErrorResponse)


def test_write_pipeline_rejects_non_packet(hadoop_bed):
    bed = hadoop_bed

    def proc():
        connection = yield from bed.network.connect(
            bed.client_vm, bed.datanode1_vm, bed.config.datanode_port)
        yield from connection.send(bed.client_vm,
                                   OpWriteBlock("blk_500", []))
        yield from connection.send(bed.client_vm, "not-a-packet")
        response = yield from connection.recv(bed.client_vm)
        return response

    response = bed.run(bed.sim.process(proc()))
    assert isinstance(response, ErrorResponse)


def test_manual_write_pipeline_roundtrip(hadoop_bed):
    """Drive the raw datanode protocol directly (no DFSClient)."""
    bed = hadoop_bed
    payload = LiteralSource(b"raw-protocol-bytes")

    def proc():
        connection = yield from bed.network.connect(
            bed.client_vm, bed.datanode1_vm, bed.config.datanode_port)
        yield from connection.send(bed.client_vm,
                                   OpWriteBlock("blk_777", []))
        yield from connection.send(
            bed.client_vm, WritePacket(payload, last=True),
            size=payload.size)
        ack = yield from connection.recv(bed.client_vm)
        return ack

    ack = bed.run(bed.sim.process(proc()))
    assert isinstance(ack, Ack) and ack.ok
    assert bed.datanode1_vm.guest_fs.read(
        bed.datanode1.block_path("blk_777")) == b"raw-protocol-bytes"


def test_single_connection_serves_many_requests(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", PatternSource(256 * 1024, seed=1))
    block = bed.namenode.get_blocks("/f")[0]

    def proc():
        connection = yield from bed.network.connect(
            bed.client_vm, bed.datanode1_vm, bed.config.datanode_port)
        sizes = []
        for offset in (0, 1000, 200_000):
            yield from connection.send(
                bed.client_vm, OpReadBlock(block.name, offset, 500))
            piece = yield from connection.recv(bed.client_vm)
            sizes.append(piece.size)
        return sizes

    assert bed.run(bed.sim.process(proc())) == [500, 500, 500]


def test_one_byte_file(hadoop_bed):
    write(hadoop_bed, "/one", b"!")

    def proc():
        source = yield from hadoop_bed.client.read_file("/one")
        return source.read(0, source.size)

    assert hadoop_bed.run(hadoop_bed.sim.process(proc())) == b"!"


def test_exact_block_multiple_file(hadoop_bed):
    size = 2 * hadoop_bed.config.block_size
    payload = PatternSource(size, seed=5)
    write(hadoop_bed, "/exact", payload)
    blocks = hadoop_bed.namenode.get_blocks("/exact")
    assert len(blocks) == 2
    assert all(b.size == hadoop_bed.config.block_size for b in blocks)

    def proc():
        source = yield from hadoop_bed.client.read_file("/exact")
        return source

    got = hadoop_bed.run(hadoop_bed.sim.process(proc()))
    assert got.checksum() == payload.checksum()


def test_packetization_respects_packet_bytes():
    from tests.conftest import HadoopBed
    from repro.hdfs.config import HdfsConfig

    # Tiny packets: a 64KB request becomes many packets on the wire; the
    # data must still reassemble perfectly.
    bed = HadoopBed(block_size=256 * 1024)
    bed.config = HdfsConfig(block_size=256 * 1024, packet_bytes=4096)
    bed.datanode1.config = bed.config
    bed.datanode2.config = bed.config
    payload = PatternSource(64 * 1024, seed=6)
    write(bed, "/f", payload)

    def proc():
        source = yield from bed.client.read_file("/f", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(proc()))
    assert got.checksum() == payload.checksum()
