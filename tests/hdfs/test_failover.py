"""Failure injection: dead datanodes, lost replicas, client failover."""

import pytest

from repro.hdfs.protocol import HdfsProtocolError
from repro.storage.content import PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def read_all(bed, client, path):
    def proc():
        source = yield from client.read_file(path, 64 * 1024)
        return source

    return bed.run(bed.sim.process(proc()))


def test_read_fails_over_to_remote_replica(hadoop_bed):
    bed = hadoop_bed
    payload = PatternSource(300 * 1024, seed=1)
    write(bed, "/r2", payload, replication=2)
    # The preferred (co-located) datanode dies.
    bed.datanode1.stop()
    got = read_all(bed, bed.client, "/r2")
    assert got.checksum() == payload.checksum()
    # The remote replica served the data.
    assert bed.datanode2.blocks_served > 0


def test_read_fails_when_all_replicas_down(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/r2", b"x" * 1000, replication=2)
    bed.datanode1.stop()
    bed.datanode2.stop()

    def proc():
        yield from bed.client.read_file("/r2")

    bed.sim.process(proc())
    with pytest.raises(HdfsProtocolError, match="all replicas"):
        bed.sim.run()


def test_datanode_restart_recovers(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", b"y" * 500)
    bed.datanode1.stop()
    bed.datanode1.start()
    got = read_all(bed, bed.client, "/f")
    assert got.read(0, got.size) == b"y" * 500


def test_missing_block_file_fails_over(hadoop_bed):
    bed = hadoop_bed
    payload = b"z" * 2000
    write(bed, "/r2", payload, replication=2)
    block = bed.namenode.get_blocks("/r2")[0]
    # Corrupt the co-located replica: remove the block file behind HDFS.
    bed.datanode1_vm.guest_fs.unlink(bed.datanode1.block_path(block.name))
    got = read_all(bed, bed.client, "/r2")
    assert got.read(0, got.size) == payload


def test_single_replica_missing_block_raises(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", b"q" * 100)
    block = bed.namenode.get_blocks("/f")[0]
    bed.datanode1_vm.guest_fs.unlink(bed.datanode1.block_path(block.name))

    def proc():
        yield from bed.client.read_file("/f")

    bed.sim.process(proc())
    with pytest.raises(HdfsProtocolError):
        bed.sim.run()


def test_write_to_stopped_datanode_pipeline_fails(hadoop_bed):
    bed = hadoop_bed
    bed.datanode1.stop()

    def proc():
        yield from bed.client.write_file("/f", b"data", favored=["dn1"])

    bed.sim.process(proc())
    with pytest.raises(HdfsProtocolError):
        bed.sim.run()


def test_vread_falls_back_through_failover(vread_bed):
    """vRead open fails (stale mount) AND the preferred replica is down:
    the fallback chain still delivers the data from the remote replica."""
    bed = vread_bed
    payload = b"deep-fallback" * 100
    # Plant metadata + replicas without commit notifications (stale mounts).
    bed.namenode.create_file("/sneaky", replication=2)
    block = bed.namenode.allocate_block("/sneaky", bed.client_vm)
    for datanode in (bed.datanode1, bed.datanode2):
        if datanode.datanode_id in block.locations:
            datanode.vm.guest_fs.create(
                datanode.block_path(block.name), payload)
    block.size = len(payload)
    block.committed = True
    bed.namenode.file("/sneaky").complete = True
    bed.datanode1.stop()

    got = read_all(bed, bed.vread_client, "/sneaky")
    assert got.read(0, got.size) == payload
    library = bed.manager.library_of(bed.client_vm)
    assert library.fallback_denials > 0
