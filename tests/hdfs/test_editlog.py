"""Tests for the namenode edit log, checkpointing, and replay."""

import pytest

from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode
from repro.hdfs.editlog import EditLog, JournaledNamenode, replay_into
from repro.hdfs.namenode import HdfsError
from repro.storage.content import PatternSource
from tests.conftest import Testbed


def make_journaled_bed(block_size=256 * 1024):
    bed = Testbed(n_hosts=2, vms_per_host=2)
    client_vm = bed.vms[0]
    config = HdfsConfig(block_size=block_size)
    namenode = JournaledNamenode(config, vm=client_vm)
    dn1 = Datanode("dn1", bed.vms[1], namenode, bed.network)
    dn2 = Datanode("dn2", bed.vms[2], namenode, bed.network)
    client = DfsClient(client_vm, namenode, bed.network)
    return bed, namenode, client, (dn1, dn2)


def write(bed, client, path, data, **kwargs):
    def proc():
        yield from client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def test_editlog_records_lifecycle():
    bed, namenode, client, _ = make_journaled_bed()
    write(bed, client, "/f", b"x" * 1000)
    ops = [entry.op for entry in namenode.edit_log.entries]
    assert ops == ["create", "add_block", "commit", "complete"]
    txids = [entry.txid for entry in namenode.edit_log.entries]
    assert txids == sorted(txids)  # monotonically increasing


def test_editlog_delete():
    bed, namenode, client, _ = make_journaled_bed()
    write(bed, client, "/f", b"x")

    def proc():
        yield from client.delete("/f")

    bed.run(bed.sim.process(proc()))
    assert namenode.edit_log.entries[-1].op == "delete"


def test_replay_from_edits_only():
    bed, namenode, client, _ = make_journaled_bed()
    payload = PatternSource(600 * 1024, seed=13)  # 3 blocks
    write(bed, client, "/big", payload)
    write(bed, client, "/small", b"tiny")

    fresh = Namenode(namenode.config, vm=namenode.vm)
    replay_into(fresh, namenode)
    assert fresh.list_files() == ["/big", "/small"]
    assert fresh.file_length("/big") == payload.size
    original = namenode.get_blocks("/big")
    restored = fresh.get_blocks("/big")
    assert [b.name for b in restored] == [b.name for b in original]
    assert [b.locations for b in restored] == [b.locations for b in original]
    assert all(b.committed for b in restored)
    assert fresh.file("/big").complete


def test_replay_from_checkpoint_plus_edits():
    bed, namenode, client, _ = make_journaled_bed()
    write(bed, client, "/before", b"a" * 500)
    checkpoint_txid = namenode.checkpoint()
    assert checkpoint_txid == namenode.edit_log.last_txid
    write(bed, client, "/after", b"b" * 700)

    def proc():
        yield from client.delete("/before")

    bed.run(bed.sim.process(proc()))

    fresh = Namenode(namenode.config, vm=namenode.vm)
    replay_into(fresh, namenode)
    assert fresh.list_files() == ["/after"]
    assert fresh.file_length("/after") == 700


def test_restored_namenode_serves_reads():
    """The full restart story: replay metadata, then read real data."""
    bed, namenode, client, datanodes = make_journaled_bed()
    payload = PatternSource(300 * 1024, seed=14)
    write(bed, client, "/f", payload)

    fresh = Namenode(namenode.config, vm=namenode.vm)
    replay_into(fresh, namenode)
    for datanode in datanodes:
        fresh.register_datanode(datanode)
    new_client = DfsClient(bed.vms[0], fresh, bed.network)

    def read():
        source = yield from new_client.read_file("/f", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()


def test_replay_target_must_be_empty():
    bed, namenode, client, _ = make_journaled_bed()
    write(bed, client, "/f", b"x")
    target = Namenode(namenode.config)
    target.create_file("/existing")
    with pytest.raises(HdfsError):
        replay_into(target, namenode)


def test_block_ids_continue_after_replay():
    bed, namenode, client, datanodes = make_journaled_bed()
    write(bed, client, "/f", b"x" * 100)
    old_ids = {b.block_id for b in namenode.get_blocks("/f")}

    fresh = Namenode(namenode.config, vm=namenode.vm)
    replay_into(fresh, namenode)
    for datanode in datanodes:
        fresh.register_datanode(datanode)
    block = fresh.create_file("/g") and fresh.allocate_block(
        "/g", bed.vms[0])
    assert block.block_id not in old_ids


def test_editlog_entries_after():
    log = EditLog()
    log.append("create", "/a")
    second = log.append("create", "/b")
    log.append("create", "/c")
    tail = log.entries_after(second.txid - 1)
    assert [e.path for e in tail] == ["/b", "/c"]
