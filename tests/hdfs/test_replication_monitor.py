"""Tests for heartbeats, dead-node detection, and re-replication."""

import pytest

from repro.hdfs.replication import ReplicationMonitor
from repro.storage.content import PatternSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def run_for(bed, seconds):
    def proc():
        yield bed.sim.timeout(seconds)

    bed.run(bed.sim.process(proc()))


def test_heartbeats_keep_nodes_alive(hadoop_bed):
    bed = hadoop_bed
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    run_for(bed, 5.0)
    monitor.stop()
    assert not monitor.is_dead("dn1")
    assert not monitor.is_dead("dn2")


def test_stopped_datanode_declared_dead(hadoop_bed):
    bed = hadoop_bed
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5,
                                 dead_after_missed=2)
    monitor.start(bed.sim)
    bed.datanode1.stop()
    run_for(bed, 5.0)
    monitor.stop()
    assert monitor.is_dead("dn1")
    assert not monitor.is_dead("dn2")


def test_dead_node_removed_from_block_locations(hadoop_bed):
    bed = hadoop_bed
    write(bed, "/f", b"x" * 1000, favored=["dn1"])
    block = bed.namenode.get_blocks("/f")[0]
    assert block.locations == ["dn1"]
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    bed.datanode1.stop()
    run_for(bed, 5.0)
    monitor.stop()
    assert "dn1" not in block.locations


def test_under_replicated_block_is_re_replicated(hadoop_bed):
    bed = hadoop_bed
    payload = PatternSource(300 * 1024, seed=31)
    write(bed, "/r2", payload, replication=2)
    block = bed.namenode.get_blocks("/r2")[0]
    assert sorted(block.locations) == ["dn1", "dn2"]

    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    bed.datanode1.stop()
    run_for(bed, 8.0)
    monitor.stop()
    # dn1 is gone; with only dn2 alive there is nowhere new to copy to, so
    # locations shrink but the data stays readable from dn2.
    assert block.locations == ["dn2"]

    def read():
        source = yield from bed.client.read_file("/r2")
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()


def test_re_replication_to_third_datanode():
    """With a spare datanode available, losing a replica triggers an actual
    copy and the block becomes 2-way replicated again."""
    from tests.conftest import Testbed
    from repro.hdfs import Datanode, DfsClient, HdfsConfig, Namenode

    bed = Testbed(n_hosts=3, vms_per_host=1)
    # Host1 gets a client VM too.
    from repro.virt.vm import VirtualMachine
    client_vm = VirtualMachine(bed.hosts[0], "client")
    config = HdfsConfig(block_size=256 * 1024, replication=2)
    namenode = Namenode(config, vm=client_vm)
    datanodes = [Datanode(f"dn{i + 1}", bed.vms[i], namenode, bed.network)
                 for i in range(3)]
    client = DfsClient(client_vm, namenode, bed.network)
    payload = PatternSource(200 * 1024, seed=9)

    def load():
        yield from client.write_file("/f", payload, replication=2)

    bed.run(bed.sim.process(load()))
    block = namenode.get_blocks("/f")[0]
    original = list(block.locations)
    assert len(original) == 2

    monitor = ReplicationMonitor(namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    victim = next(dn for dn in datanodes
                  if dn.datanode_id == original[0])
    victim.stop()

    def wait():
        yield bed.sim.timeout(8.0)

    bed.run(bed.sim.process(wait()))
    monitor.stop()
    assert monitor.re_replications == 1
    assert len(block.locations) == 2
    assert original[0] not in block.locations
    # The new replica's file really exists and carries the right bytes.
    new_dn_id = next(dn_id for dn_id in block.locations
                     if dn_id != original[1])
    new_dn = next(dn for dn in datanodes if dn.datanode_id == new_dn_id)
    stored = new_dn.vm.guest_fs.read(new_dn.block_path(block.name))
    assert stored == payload.read(0, payload.size)


def test_monitor_double_start_rejected(hadoop_bed):
    monitor = ReplicationMonitor(hadoop_bed.namenode, hadoop_bed.network)
    monitor.start(hadoop_bed.sim)
    with pytest.raises(RuntimeError):
        monitor.start(hadoop_bed.sim)
    monitor.stop()


def test_recovered_node_leaves_dead_set(hadoop_bed):
    bed = hadoop_bed
    monitor = ReplicationMonitor(bed.namenode, bed.network,
                                 heartbeat_interval=0.5)
    monitor.start(bed.sim)
    bed.datanode1.stop()
    run_for(bed, 4.0)
    assert monitor.is_dead("dn1")
    bed.datanode1.start()
    run_for(bed, 3.0)
    monitor.stop()
    assert not monitor.is_dead("dn1")
