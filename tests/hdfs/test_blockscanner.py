"""Tests for the datanode block scanner."""

import pytest

from repro.hdfs.blockscanner import BlockScanner
from repro.storage.content import LiteralSource


def write(bed, path, data, **kwargs):
    def proc():
        yield from bed.client.write_file(path, data, **kwargs)

    bed.run(bed.sim.process(proc()))


def run_for(bed, seconds):
    def proc():
        yield bed.sim.timeout(seconds)

    bed.run(bed.sim.process(proc()))


def test_scanner_tracks_committed_blocks(hadoop_bed):
    scanner = BlockScanner(hadoop_bed.datanode1)
    write(hadoop_bed, "/f", b"x" * 1000)
    assert len(scanner._expected) == 1


def test_clean_blocks_pass_scans(hadoop_bed):
    scanner = BlockScanner(hadoop_bed.datanode1, scan_interval=0.5)
    write(hadoop_bed, "/f", b"x" * 1000)
    scanner.start()
    run_for(hadoop_bed, 2.0)
    scanner.stop()
    assert scanner.scans >= 2
    assert scanner.corruptions_found == []


def test_corrupt_replica_detected_and_dropped(hadoop_bed):
    bed = hadoop_bed
    scanner = BlockScanner(bed.datanode1, scan_interval=0.5)
    write(bed, "/f", b"A" * 500, replication=2)
    block = bed.namenode.get_blocks("/f")[0]
    # Flip the co-located replica's bytes (same size).
    inode = bed.datanode1_vm.guest_fs.lookup(
        bed.datanode1.block_path(block.name))
    inode.truncate()
    inode.append(LiteralSource(b"B" * 500))
    bed.datanode1_vm.drop_guest_cache()

    scanner.start()
    run_for(bed, 2.0)
    scanner.stop()
    assert block.name in scanner.corruptions_found
    assert block.locations == ["dn2"]

    # Reads now come from the healthy remote replica.
    def read():
        source = yield from bed.client.read_file("/f")
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(read())) == b"A" * 500


def test_missing_block_file_reported(hadoop_bed):
    bed = hadoop_bed
    scanner = BlockScanner(bed.datanode1, scan_interval=0.5)
    write(bed, "/f", b"x" * 300)
    block = bed.namenode.get_blocks("/f")[0]
    bed.datanode1_vm.guest_fs.unlink(bed.datanode1.block_path(block.name))
    scanner.start()
    run_for(bed, 1.5)
    scanner.stop()
    assert block.name in scanner.corruptions_found
    assert block.locations == []


def test_deleted_blocks_forgotten(hadoop_bed):
    bed = hadoop_bed
    scanner = BlockScanner(bed.datanode1)
    write(bed, "/f", b"x" * 100)
    assert len(scanner._expected) == 1

    def proc():
        yield from bed.client.delete("/f")

    bed.run(bed.sim.process(proc()))
    assert len(scanner._expected) == 0


def test_double_start_rejected(hadoop_bed):
    scanner = BlockScanner(hadoop_bed.datanode1)
    scanner.start()
    with pytest.raises(RuntimeError):
        scanner.start()
    scanner.stop()


def test_scanner_burns_cpu_on_verification(hadoop_bed):
    bed = hadoop_bed
    scanner = BlockScanner(bed.datanode1, scan_interval=0.5,
                           verify_cycles_per_byte=1.0)
    write(bed, "/f", b"x" * 100_000)
    mark = bed.hosts[0].accounting.snapshot()
    scanner.start()
    run_for(bed, 1.2)
    scanner.stop()
    window = bed.hosts[0].accounting.since(mark)
    dn_cpu = window.by_thread().get(bed.datanode1_vm.vcpu.name, 0.0)
    assert dn_cpu > 0
