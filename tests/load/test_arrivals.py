"""Tests for the seeded open-loop arrival processes."""

import math
from random import Random

import pytest

from repro.load.arrivals import (BurstyArrivals, DiurnalArrivals,
                                 PoissonArrivals, make_arrivals)

PROCESSES = (PoissonArrivals(rate=200.0),
             BurstyArrivals(rate=200.0),
             DiurnalArrivals(rate=200.0, period_seconds=5.0))


@pytest.mark.parametrize("process", PROCESSES,
                         ids=[p.kind for p in PROCESSES])
def test_times_strictly_increasing_and_bounded(process):
    times = list(process.times(Random(12), 10.0))
    assert times, "expected some arrivals at 200/s over 10s"
    assert all(0.0 <= t < 10.0 for t in times)
    assert all(a < b for a, b in zip(times, times[1:]))


@pytest.mark.parametrize("process", PROCESSES,
                         ids=[p.kind for p in PROCESSES])
def test_same_seed_same_times(process):
    assert (list(process.times(Random(3), 5.0))
            == list(process.times(Random(3), 5.0)))
    assert (list(process.times(Random(3), 5.0))
            != list(process.times(Random(4), 5.0)))


@pytest.mark.parametrize("process", PROCESSES,
                         ids=[p.kind for p in PROCESSES])
def test_empirical_rate_matches_mean(process):
    # One long run per shape: the law of large numbers is kind at n~20k.
    duration = 100.0
    count = sum(1 for _ in process.times(Random(7), duration))
    expected = process.mean_rate() * duration
    assert count == pytest.approx(expected, rel=0.05)


def test_bursty_is_burstier_than_poisson():
    """The MMPP's gap variance must exceed Poisson's at equal mean rate."""
    def squared_cv(times):
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var / mean ** 2

    poisson = list(PoissonArrivals(rate=400.0).times(Random(5), 50.0))
    bursty = list(BurstyArrivals(rate=400.0, burstiness=1.9)
                  .times(Random(5), 50.0))
    assert squared_cv(bursty) > squared_cv(poisson) * 1.1


def test_diurnal_concentrates_near_peak():
    """More arrivals in the peak half-period than the trough half-period."""
    process = DiurnalArrivals(rate=300.0, period_seconds=10.0, amplitude=0.9)
    times = list(process.times(Random(9), 10.0))
    peak = sum(1 for t in times if t < 2.5 or t >= 7.5)
    trough = sum(1 for t in times if 2.5 <= t < 7.5)
    assert peak > trough * 1.5


def test_make_arrivals_registry():
    assert isinstance(make_arrivals("poisson", 10.0), PoissonArrivals)
    bursty = make_arrivals("bursty", 10.0, burstiness=1.5)
    assert isinstance(bursty, BurstyArrivals)
    assert bursty.burstiness == 1.5
    with pytest.raises(ValueError, match="unknown arrival kind"):
        make_arrivals("sawtooth", 10.0)


def test_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(rate=5.0, burstiness=2.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate=5.0, amplitude=1.5)
