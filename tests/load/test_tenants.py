"""Tests for tenant specs and Zipf key skew."""

from collections import Counter
from random import Random

import pytest

from repro.load.arrivals import BurstyArrivals, PoissonArrivals
from repro.load.tenants import TenantSpec, ZipfKeys, default_tenants


# ---------------------------------------------------------------------- zipf
def test_zipf_skews_toward_low_ranks():
    keys = ZipfKeys(n_keys=16, s=1.2)
    rng = Random(2)
    counts = Counter(keys.pick(rng) for _ in range(20_000))
    assert counts[0] > counts[1] > counts[4] > counts[15]
    # Rank-0 popularity should dominate clearly under s=1.2.
    assert counts[0] > 3 * counts[4]


def test_zipf_uniform_at_s_zero():
    keys = ZipfKeys(n_keys=4, s=0.0)
    rng = Random(3)
    counts = Counter(keys.pick(rng) for _ in range(40_000))
    for key in range(4):
        assert counts[key] == pytest.approx(10_000, rel=0.1)


def test_zipf_covers_all_keys_and_validates():
    keys = ZipfKeys(n_keys=3, s=1.0)
    rng = Random(4)
    seen = {keys.pick(rng) for _ in range(5_000)}
    assert seen == {0, 1, 2}
    with pytest.raises(ValueError):
        ZipfKeys(n_keys=0)
    with pytest.raises(ValueError):
        ZipfKeys(n_keys=4, s=-1.0)


# -------------------------------------------------------------------- tenants
def test_tenant_spec_factories():
    spec = TenantSpec(name="t", arrival_kind="bursty", rate=50.0,
                      arrival_params={"burstiness": 1.4})
    arrivals = spec.arrivals()
    assert isinstance(arrivals, BurstyArrivals)
    assert arrivals.rate == 50.0
    assert arrivals.burstiness == 1.4
    assert spec.keys().n_keys == spec.n_keys


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(name="")
    with pytest.raises(ValueError):
        TenantSpec(name="t", deadline_seconds=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="t", request_bytes=0)


def test_default_tenants_population():
    tenants = default_tenants(3, rate=25.0, deadline_seconds=0.01)
    assert [t.name for t in tenants] == ["tenant1", "tenant2", "tenant3"]
    assert all(isinstance(t.arrivals(), PoissonArrivals) for t in tenants)
    assert all(t.rate == 25.0 for t in tenants)
    with pytest.raises(ValueError):
        default_tenants(0, rate=25.0)
