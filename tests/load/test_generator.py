"""Tests for the open-loop LoadGenerator (synthetic and cluster modes)."""

import pytest

from repro.cluster import VirtualHadoopCluster, paper_fig10
from repro.load import (LoadGenerator, SyntheticService, TenantSpec,
                        default_tenants)

QUICK = dict(rate=40.0, deadline_seconds=0.02, request_bytes=128 << 10,
             n_keys=3)


def test_generator_validates_population():
    with pytest.raises(ValueError, match="at least one tenant"):
        LoadGenerator([])
    twin = TenantSpec(name="dup")
    with pytest.raises(ValueError, match="unique"):
        LoadGenerator([twin, twin])
    with pytest.raises(ValueError, match="positive"):
        LoadGenerator(default_tenants(1, 10.0)).run_synthetic(0.0)


# ------------------------------------------------------------------ synthetic
def test_synthetic_is_deterministic_and_open_loop():
    def report(seed):
        return LoadGenerator(default_tenants(2, **QUICK),
                             seed=seed).run_synthetic(10.0)

    first, again, other = report(1), report(1), report(2)
    assert first.digest() == again.digest()
    assert first.digest() != other.digest()
    # Open loop: arrivals are counted even while the queue is backed up,
    # so arrivals ~ rate * duration regardless of service times.
    row = first.tenant("tenant1")
    assert row.arrivals == pytest.approx(400, rel=0.2)
    assert row.completions == row.arrivals  # synthetic serves everything


def test_synthetic_latency_grows_with_load():
    """Open-loop M/G/1: pushing the rate toward saturation fattens p99."""
    def p99(rate):
        tenants = default_tenants(1, rate=rate, deadline_seconds=0.02)
        report = LoadGenerator(tenants, seed=3).run_synthetic(
            20.0, service=SyntheticService(base_seconds=4e-3,
                                           cached_seconds=4e-3,
                                           jitter_seconds=1e-3))
        return report.tenant("tenant1").p99_ms

    # ~5ms mean service: 100/s is rho~0.5, 190/s is rho~0.95.
    assert p99(190.0) > 2.0 * p99(100.0)


def test_synthetic_tenant_streams_are_independent():
    """Adding a tenant must not perturb another tenant's traffic."""
    solo = LoadGenerator([TenantSpec(name="a", **QUICK)],
                         seed=5).run_synthetic(5.0)
    duo = LoadGenerator([TenantSpec(name="a", **QUICK),
                         TenantSpec(name="b", **QUICK)],
                        seed=5).run_synthetic(5.0)
    assert solo.tenant("a").latency_digest == duo.tenant("a").latency_digest


# -------------------------------------------------------------------- cluster
def _cluster(vread=True, clients=2, faults=None):
    return VirtualHadoopCluster(block_size=1 << 20, vread=vread,
                                topology=paper_fig10(clients=clients),
                                faults=faults, seed=0)


def test_cluster_mode_requires_enough_client_vms():
    generator = LoadGenerator(default_tenants(3, **QUICK), seed=1)
    with pytest.raises(ValueError, match="client VMs"):
        generator.run_cluster(_cluster(clients=2), duration=0.5)


def test_cluster_mode_records_every_arrival():
    generator = LoadGenerator(default_tenants(2, **QUICK), seed=1)
    report = generator.run_cluster(_cluster(), duration=1.0)
    for name in ("tenant1", "tenant2"):
        row = report.tenant(name)
        assert row.completions == row.arrivals > 0
        assert row.p99_ms >= row.p50_ms > 0.0


def test_cluster_mode_deterministic_across_fresh_clusters():
    def digest():
        generator = LoadGenerator(default_tenants(2, **QUICK), seed=9)
        return generator.run_cluster(_cluster(), duration=1.0).digest()

    assert digest() == digest()


def test_faults_under_load_degrade_slo():
    # Cache drop + disk latency spike mid-run: the re-warming reads pay
    # the slow-disk price, so the faulted run's tail must be fatter.
    from repro.experiments.load_sweep import chaos_plan
    healthy = LoadGenerator(default_tenants(1, **QUICK), seed=2).run_cluster(
        _cluster(vread=False), duration=1.0)
    faulted = LoadGenerator(default_tenants(1, **QUICK), seed=2).run_cluster(
        _cluster(vread=False, faults=chaos_plan(1.0)), duration=1.0,
        arm_faults=True)
    assert faulted.worst_p99_ms() > 2.0 * healthy.worst_p99_ms()
