"""Tests for the streaming SLO sinks and report."""

import pytest

from repro.load.slo import SloReport, TenantSlo
from repro.metrics.sinks import EmptyMetricError


def make_slo(deadline=0.01, window=0.5):
    return TenantSlo("t1", deadline_seconds=deadline, window_seconds=window)


def test_record_counts_misses_against_deadline():
    slo = make_slo(deadline=0.01)
    slo.note_arrival()
    slo.record(arrival=0.0, completion=0.005)    # hit
    slo.note_arrival()
    slo.record(arrival=0.1, completion=0.2)      # miss (100ms)
    summary = slo.summarize(duration=1.0)
    assert summary.completions == 2
    assert summary.miss_count == 1
    assert summary.arrivals == 2
    assert summary.goodput_rps == pytest.approx(1.0)


def test_violation_time_fraction_counts_windows_with_misses():
    slo = make_slo(deadline=0.01, window=0.5)
    # Two misses in the same window, one in another: 2 of 4 windows bad.
    for arrival, completion in ((0.0, 0.1), (0.2, 0.3), (1.6, 1.8)):
        slo.note_arrival()
        slo.record(arrival, completion)
    # And plenty of hits spread around.
    for start in (0.6, 1.1, 1.9):
        slo.note_arrival()
        slo.record(start, start + 0.001)
    summary = slo.summarize(duration=2.0)
    assert summary.violation_time_fraction == pytest.approx(2 / 4)


def test_quantiles_are_sketch_backed():
    slo = make_slo(deadline=1.0)
    for index in range(1, 101):
        slo.note_arrival()
        slo.record(0.0, index * 1e-3)   # latencies 1ms..100ms
    summary = slo.summarize(duration=1.0)
    bound = slo.latency.relative_error_bound
    assert summary.p50_ms == pytest.approx(50.0, rel=bound)
    assert summary.p99_ms == pytest.approx(99.0, rel=bound)
    assert summary.p99_9_ms == pytest.approx(100.0, rel=bound)
    assert summary.max_ms == pytest.approx(100.0)
    assert summary.mean_ms == pytest.approx(50.5)


def test_empty_slo_raises_contract_error():
    with pytest.raises(EmptyMetricError, match="no samples recorded"):
        make_slo().summarize(duration=1.0)
    with pytest.raises(EmptyMetricError):
        SloReport.from_sinks("empty", {}, duration=1.0)


def test_report_accessors_and_digest_stability():
    def build():
        slos = {}
        for name, latency in (("a", 0.002), ("b", 0.050)):
            slo = TenantSlo(name, deadline_seconds=0.01)
            for index in range(10):
                slo.note_arrival()
                slo.record(index * 0.1, index * 0.1 + latency)
            slos[name] = slo
        return SloReport.from_sinks("run", slos, duration=1.0)

    report = build()
    assert set(report.tenants) == {"a", "b"}
    assert report.tenant("b").miss_count == 10
    assert report.worst_p99_ms() == pytest.approx(50.0, rel=0.05)
    assert report.total_goodput_rps() == pytest.approx(10.0)  # b all misses
    assert report.violation_time_fraction() == pytest.approx(0.5)
    assert report.digest() == build().digest()
    with pytest.raises(KeyError, match="no tenant"):
        report.tenant("zz")


def test_report_render_mentions_every_tenant():
    slo = make_slo()
    slo.note_arrival()
    slo.record(0.0, 0.001)
    report = SloReport.from_sinks("smoke", {"t1": slo}, duration=1.0,
                                  notes="hello")
    text = report.render()
    assert "t1" in text
    assert "p99" in text
    assert "hello" in text
