"""Tests for the deterministic client-pool autoscaler."""

import pytest

from repro.cluster import VirtualHadoopCluster, paper_fig10
from repro.load import (Autoscaler, AutoscalerPolicy, LoadGenerator,
                        TenantSpec, default_tenants)

QUICK = dict(rate=40.0, deadline_seconds=0.02, request_bytes=128 << 10,
             n_keys=3)


# ----------------------------------------------------------------- the policy
def test_policy_validation():
    with pytest.raises(ValueError, match="min_extra"):
        AutoscalerPolicy(min_extra=3, max_extra=1)
    with pytest.raises(ValueError, match="interval"):
        AutoscalerPolicy(interval_seconds=0.0)
    with pytest.raises(ValueError, match="below scale_up"):
        AutoscalerPolicy(scale_up_outstanding=4, scale_down_outstanding=4)


def test_decide_thresholds_and_bounds():
    scaler = Autoscaler(AutoscalerPolicy(max_extra=2,
                                         scale_up_outstanding=8,
                                         scale_down_outstanding=2,
                                         cooldown_seconds=0.5))
    assert scaler.decide(0.0, 10, extra_pool=0) == 1
    assert scaler.decide(0.0, 10, extra_pool=2) == 0  # at max_extra
    assert scaler.decide(0.0, 5, extra_pool=1) == 0   # between thresholds
    assert scaler.decide(0.0, 1, extra_pool=1) == -1
    assert scaler.decide(0.0, 1, extra_pool=0) == 0   # at min_extra


def test_cooldown_damps_flapping():
    scaler = Autoscaler(AutoscalerPolicy(cooldown_seconds=1.0))
    assert scaler.decide(0.0, 20, extra_pool=0) == 1
    scaler.note(0.0, "add", "autoscale1", 20)
    assert scaler.decide(0.5, 20, extra_pool=1) == 0  # inside cooldown
    assert scaler.decide(1.5, 20, extra_pool=1) == 1
    assert scaler.added == 1 and scaler.events[0].action == "add"


# ------------------------------------------------------------- under real load
def _overloaded_run(seed=4):
    """One saturating open-loop run with an eager autoscaler attached."""
    cluster = VirtualHadoopCluster(block_size=1 << 20, vread=False,
                                   topology=paper_fig10(clients=1), seed=0)
    tenants = [TenantSpec(name="hot", rate=1000.0, deadline_seconds=0.02,
                          request_bytes=1 << 20, n_keys=3)]
    scaler = Autoscaler(AutoscalerPolicy(max_extra=2,
                                         interval_seconds=0.05,
                                         scale_up_outstanding=3,
                                         scale_down_outstanding=1,
                                         cooldown_seconds=0.1))
    report = LoadGenerator(tenants, seed=seed).run_cluster(
        cluster, duration=1.0, autoscaler=scaler)
    return cluster, scaler, report


def test_saturation_grows_the_client_pool():
    cluster, scaler, report = _overloaded_run()
    assert scaler.added > 0
    assert cluster.membership.version >= scaler.added
    added_events = [entry for entry in cluster.membership.log
                    if entry[1] == "client-added"]
    assert len(added_events) == scaler.added
    assert report.tenant("hot").completions == report.tenant("hot").arrivals
    # The extras carry autoscaler names, spread round-robin over hosts.
    assert scaler.events[0].vm == "autoscale1"


def test_autoscaled_run_is_deterministic():
    def digest():
        _, scaler, report = _overloaded_run(seed=4)
        return report.digest(), scaler.added, scaler.removed, [
            (e.at, e.action, e.vm) for e in scaler.events]

    assert digest() == digest()


def test_static_run_is_untouched_by_autoscale_plumbing():
    """run_cluster without an autoscaler must match the pre-elastic digest
    (same seeds, same dispatch): the elastic path is strictly additive."""
    def digest(with_pool):
        cluster = VirtualHadoopCluster(block_size=1 << 20, vread=False,
                                       topology=paper_fig10(clients=2),
                                       seed=0)
        generator = LoadGenerator(default_tenants(2, **QUICK), seed=7)
        kwargs = {}
        if with_pool:
            # An autoscaler that can never act: thresholds out of reach.
            kwargs["autoscaler"] = Autoscaler(AutoscalerPolicy(
                max_extra=0, scale_up_outstanding=10 ** 9,
                scale_down_outstanding=10 ** 9 - 1))
        report = generator.run_cluster(cluster, duration=1.0, **kwargs)
        return report.digest(), cluster.membership.version

    static, inert = digest(False), digest(True)
    assert static[0] == inert[0]
    assert static[1] == inert[1] == 0
