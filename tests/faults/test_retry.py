"""Tests for the deadline/retry/backoff primitives."""

import pytest

from repro.faults import (
    DeadlineExceeded,
    RetryPolicy,
    VReadClientPolicy,
    call_with_deadline,
)
from repro.sim import Interrupt, Simulator
from repro.sim.rng import RandomStreams


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def test_deadline_returns_value_when_fast_enough():
    sim = Simulator()

    def work():
        yield sim.timeout(0.1)
        return "done"

    def guarded():
        result = yield from call_with_deadline(sim, work(), 1.0)
        return result

    assert run(sim, guarded()) == "done"
    assert sim.now == pytest.approx(0.1)


def test_deadline_expiry_raises_and_interrupts():
    sim = Simulator()
    cleaned = []

    def slow():
        try:
            yield sim.timeout(10.0)
        except Interrupt as interrupt:
            cleaned.append(interrupt.cause)
            raise

    def guarded():
        with pytest.raises(DeadlineExceeded, match="0.25"):
            yield from call_with_deadline(sim, slow(), 0.25)
        return True

    assert run(sim, guarded()) is True
    assert sim.now == pytest.approx(0.25)
    sim.run()  # deliver the interrupt to the abandoned sub-process
    assert sim.now == pytest.approx(0.25)  # and no clock stretch doing so
    assert len(cleaned) == 1
    assert isinstance(cleaned[0], DeadlineExceeded)


def test_deadline_none_is_unbounded():
    sim = Simulator()

    def slow():
        yield sim.timeout(100.0)
        return 42

    def guarded():
        result = yield from call_with_deadline(sim, slow(), None)
        return result

    assert run(sim, guarded()) == 42
    assert sim.now == pytest.approx(100.0)


def test_won_race_cancels_the_timer():
    """A completed operation must not leave its deadline on the heap —
    draining the sim would otherwise stretch the clock to the deadline."""
    sim = Simulator()

    def work():
        yield sim.timeout(0.01)

    def guarded():
        yield from call_with_deadline(sim, work(), 30.0)

    run(sim, guarded())
    sim.run()  # drain: the cancelled 30s timer must not advance the clock
    assert sim.now == pytest.approx(0.01)


def test_nested_deadlines_inner_wins():
    sim = Simulator()

    def slow():
        yield sim.timeout(10.0)

    def inner():
        yield from call_with_deadline(sim, slow(), 0.1)

    def outer():
        with pytest.raises(DeadlineExceeded):
            yield from call_with_deadline(sim, inner(), 5.0)

    run(sim, outer())
    sim.run()
    assert sim.now == pytest.approx(0.1)


def test_operation_errors_propagate_not_wrapped():
    sim = Simulator()

    class Boom(Exception):
        pass

    def explode():
        yield sim.timeout(0.01)
        raise Boom("bang")

    def guarded():
        with pytest.raises(Boom, match="bang"):
            yield from call_with_deadline(sim, explode(), 1.0)
        return "handled"

    assert run(sim, guarded()) == "handled"
    sim.run()
    assert sim.now == pytest.approx(0.01)


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_backoff=0.1, backoff_multiplier=2.0,
                         max_backoff=0.5, jitter=0.0)
    assert policy.backoff(0) == pytest.approx(0.1)
    assert policy.backoff(1) == pytest.approx(0.2)
    assert policy.backoff(2) == pytest.approx(0.4)
    assert policy.backoff(3) == pytest.approx(0.5)  # capped
    assert policy.backoff(10) == pytest.approx(0.5)


def test_retry_policy_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(base_backoff=0.1, jitter=0.5)
    rng_a = RandomStreams(7).stream("retry")
    rng_b = RandomStreams(7).stream("retry")
    draws_a = [policy.backoff(0, rng_a) for _ in range(10)]
    draws_b = [policy.backoff(0, rng_b) for _ in range(10)]
    assert draws_a == draws_b  # same seed, same jitter
    assert all(0.1 <= d <= 0.1 * 1.5 for d in draws_a)
    assert len(set(draws_a)) > 1  # jitter actually varies


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff=-1)
    with pytest.raises(ValueError):
        VReadClientPolicy(reprobe_interval=0)


def test_caller_interrupted_mid_race_does_not_crash_the_drain():
    """Regression: a process waiting inside ``call_with_deadline`` is itself
    interrupted (e.g. a daemon crash during a guarded remote read).  The
    guarded sub-process must be interrupted too, and its failure — which
    fails the now-unwatched AnyOf race — must not surface at drain time."""
    sim = Simulator()
    observed = []

    def slow():
        yield sim.timeout(10.0)

    def caller():
        try:
            yield from call_with_deadline(sim, slow(), 5.0)
        except Interrupt as interrupt:
            observed.append(interrupt.cause)

    victim = sim.process(caller())

    def crasher():
        yield sim.timeout(0.1)
        victim.interrupt("daemon crashed")

    sim.process(crasher())
    sim.run()  # must drain cleanly: no orphaned failed events
    assert observed == ["daemon crashed"]
    assert sim.now == pytest.approx(0.1)
