"""Fault targets resolve from the cluster topology, not hard-coded names."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.faults.plan import (
    DiskOutage,
    ImageFault,
    MigrateVm,
    _find_host,
    _find_vm,
)


def make_cluster(**kwargs):
    kwargs.setdefault("block_size", 1 << 20)
    return VirtualHadoopCluster(**kwargs)


def test_find_host_accepts_datanode_ids():
    cluster = make_cluster()
    assert _find_host(cluster, "dn2") is cluster.datanodes[1].vm.host
    assert _find_host(cluster, cluster.hosts[1].name) is cluster.hosts[1]
    assert _find_host(cluster, None) is cluster.hosts[0]


def test_find_host_unknown_name_lists_options():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="no host named 'host99'.*host1"):
        _find_host(cluster, "host99")
    with pytest.raises(ValueError, match="datanode ids also resolve.*dn1"):
        _find_host(cluster, "host99")


def test_find_vm_accepts_datanode_ids():
    cluster = make_cluster()
    assert _find_vm(cluster, "dn1") is cluster.datanode_vms[0]
    with pytest.raises(ValueError, match="no VM named 'ghost'"):
        _find_vm(cluster, "ghost")


def test_disk_outage_targets_host_of_datanode():
    cluster = make_cluster()
    fault = DiskOutage("dn2", duration=0.01)
    seen = []

    def proc():
        yield from fault.inject(cluster, cluster.fault_counters)

    def checker():
        yield cluster.sim.timeout(0.005)  # mid-outage
        seen.append(cluster.datanodes[1].vm.host.ssd.failing)

    cluster.sim.process(proc())
    cluster.sim.process(checker())
    cluster.settle()
    assert seen == [True]
    assert not cluster.datanodes[1].vm.host.ssd.failing


def test_image_fault_defaults_to_first_datanode():
    cluster = make_cluster()
    fault = ImageFault(duration=0.01)
    assert "first-datanode" in fault.describe()
    seen = []

    def proc():
        yield from fault.inject(cluster, cluster.fault_counters)

    def checker():
        yield cluster.sim.timeout(0.005)
        seen.append(cluster.datanode_vms[0].image.faulted)

    cluster.sim.process(proc())
    cluster.sim.process(checker())
    cluster.settle()
    assert seen == [True]


def test_migrate_vm_defaults_move_first_datanode_to_next_host():
    cluster = make_cluster(vread=True)
    fault = MigrateVm()
    assert "first-datanode" in fault.describe()
    assert "next-host" in fault.describe()
    assert cluster.datanode_vms[0].host is cluster.hosts[0]

    def proc():
        yield from fault.inject(cluster, cluster.fault_counters)

    cluster.run(cluster.sim.process(proc()))
    assert cluster.datanode_vms[0].host is cluster.hosts[1]
    assert cluster.fault_counters.get("fault.vm-migration-done") == 1


def test_migrate_vm_rejects_no_op_target():
    cluster = make_cluster()
    fault = MigrateVm(vm_name="datanode1", target_host="host1")

    def proc():
        yield from fault.inject(cluster, cluster.fault_counters)

    with pytest.raises(ValueError, match="current host"):
        cluster.run(cluster.sim.process(proc()))
