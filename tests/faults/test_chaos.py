"""The seeded chaos acceptance scenario.

One plan combines a datanode crash, a vRead daemon crash, an RDMA link
flap and a disk-latency spike; a multi-block vRead read must still finish
with the right bytes, record at least one fallback-to-vanilla and one
replica failover, and be byte-identical across two runs with the same
seed.
"""

from repro.cluster import VirtualHadoopCluster
from repro.faults import (
    DaemonCrash,
    DatanodeCrash,
    DiskLatencySpike,
    FaultPlan,
    RdmaFlap,
    random_plan,
)
from repro.storage.content import PatternSource

BLOCK = 256 * 1024
PAYLOAD = 2 << 20  # 8 blocks


def chaos_plan():
    return (FaultPlan()
            .at(0.0, DaemonCrash(duration=1.5))
            .at(0.0, DatanodeCrash("dn1", duration=1.5))
            .at(0.0, RdmaFlap(duration=0.5))
            .at(0.0, DiskLatencySpike("host2", factor=4.0, duration=1.0)))


def run_scenario(seed):
    """One full chaos run; returns everything observable about it."""
    cluster = VirtualHadoopCluster(block_size=BLOCK, replication=2,
                                   vread=True, seed=seed,
                                   faults=chaos_plan())
    payload = PatternSource(PAYLOAD, seed=3)

    def load():
        yield from cluster.write_dataset("/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    cluster.faults.arm()
    client = cluster.clients.get()

    def read():
        source = yield from client.read_file("/data", 64 * 1024)
        return source

    got = cluster.run(cluster.sim.process(read()))
    finished_at = cluster.sim.now
    cluster.settle()
    return {
        "bytes": got.read(0, got.size),
        "checksum": got.checksum(),
        "expected": payload.checksum(),
        "finished_at": finished_at,
        "counters": cluster.fault_counters.as_dict(),
    }


def test_chaos_read_survives_with_correct_bytes():
    result = run_scenario(seed=7)
    assert result["checksum"] == result["expected"]
    counters = result["counters"]
    assert counters["fault.daemon-crash"] == 1
    assert counters["fault.datanode-crash"] == 1
    assert counters["fault.rdma-flap"] == 1
    assert counters["fault.disk-latency-spike"] == 1
    assert counters.get("recovery.fallback-vanilla", 0) >= 1
    assert counters.get("recovery.replica-failover", 0) >= 1


def test_chaos_run_is_byte_identical_across_same_seed_runs():
    first = run_scenario(seed=7)
    second = run_scenario(seed=7)
    assert first["bytes"] == second["bytes"]
    assert first["finished_at"] == second["finished_at"]
    assert first["counters"] == second["counters"]


def test_random_chaos_plan_read_stays_correct():
    """A generated plan (no datanode crashes on replication=1) never
    corrupts a read — whatever it injects, bytes must match."""
    plan = random_plan(seed=123, faults=5, horizon=0.5,
                       include_datanode_crashes=False)
    cluster = VirtualHadoopCluster(block_size=BLOCK, replication=2,
                                   vread=True, seed=123, faults=plan)
    payload = PatternSource(PAYLOAD, seed=9)

    def load():
        yield from cluster.write_dataset("/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    cluster.faults.arm()
    client = cluster.clients.get()

    def read():
        source = yield from client.read_file("/data", 64 * 1024)
        return source

    got = cluster.run(cluster.sim.process(read()))
    assert got.checksum() == payload.checksum()
    cluster.settle()  # let the rest of the schedule fire and revert
    assert cluster.faults.injected == len(plan.timed)
