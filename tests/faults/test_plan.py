"""Tests for the FaultPlan DSL and the FaultInjector."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.faults import (
    DatanodeCrash,
    DiskLatencySpike,
    FaultInjector,
    FaultPlan,
    HostCacheDrop,
    RdmaFlap,
    random_plan,
)
from repro.storage.content import PatternSource


def test_plan_dsl_chains_and_counts():
    plan = (FaultPlan()
            .at(0.5, RdmaFlap(duration=0.1))
            .at(0.1, DatanodeCrash("dn1"))
            .on("go", HostCacheDrop("host2")))
    assert len(plan) == 3
    text = plan.describe()
    # Timed entries render sorted by time, triggers after.
    assert text.index("datanode-crash") < text.index("rdma-flap")
    assert "on 'go'" in text


def test_plan_rejects_bad_entries():
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan().at(-1.0, RdmaFlap())
    with pytest.raises(TypeError, match="expected a Fault"):
        FaultPlan().at(0.0, "rdma-flap")
    with pytest.raises(TypeError, match="expected a Fault"):
        FaultPlan().on("go", object())


def test_fault_target_resolution_errors():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    cluster.faults.plan.at(0.0, DiskLatencySpike("host99"))
    cluster.faults.arm()
    with pytest.raises(ValueError, match="no host named 'host99'.*host1"):
        cluster.settle()


def test_injector_times_are_relative_to_arming():
    plan = FaultPlan().at(0.2, DiskLatencySpike("host1", factor=5.0,
                                                duration=0.3))
    cluster = VirtualHadoopCluster(block_size=1 << 20, faults=plan)
    payload = PatternSource(64 * 1024, seed=1)

    def load():
        yield from cluster.write_dataset("/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    started = cluster.sim.now
    assert started > 0
    cluster.faults.arm()
    ssd = cluster.hosts[0].ssd

    def watch():
        assert ssd.latency_factor == 1.0  # not yet
        yield cluster.sim.timeout(0.25)
        assert ssd.latency_factor == 5.0  # spiking
        yield cluster.sim.timeout(0.5)
        assert ssd.latency_factor == 1.0  # reverted

    cluster.run(cluster.sim.process(watch()))
    assert cluster.fault_counters.get("fault.disk-latency-spike") == 1


def test_injector_arm_twice_is_an_error():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    cluster.faults.arm()
    with pytest.raises(RuntimeError, match="already armed"):
        cluster.faults.arm()


def test_injector_fire_runs_triggered_faults():
    plan = FaultPlan().on("drop", HostCacheDrop("host1"))
    cluster = VirtualHadoopCluster(block_size=1 << 20, faults=plan)
    payload = PatternSource(128 * 1024, seed=2)

    def load():
        yield from cluster.write_dataset("/data", payload)

    cluster.run(cluster.sim.process(load()))
    assert cluster.hosts[0].page_cache.resident_pages > 0
    assert cluster.faults.fire("nonexistent") == 0
    assert cluster.faults.fire("drop") == 1
    cluster.settle()
    assert cluster.hosts[0].page_cache.resident_pages == 0
    assert cluster.fault_counters.get("fault.host-cache-drop") == 1


def test_injector_counts_injections():
    plan = (FaultPlan()
            .at(0.0, RdmaFlap(duration=0.1))
            .at(0.05, RdmaFlap(duration=0.1)))
    cluster = VirtualHadoopCluster(block_size=1 << 20, faults=plan)
    cluster.faults.arm()
    cluster.settle()
    assert cluster.faults.injected == 2
    assert cluster.fault_counters.get("fault.rdma-flap") == 2
    assert cluster.fault_counters.total("fault.") >= 2
    # Counts flow into the cluster tracer under the 'fault' category.
    assert len(cluster.tracer.events(category="fault",
                                     name="fault.rdma-flap")) == 2


def test_random_plan_is_seed_deterministic():
    plan_a = random_plan(seed=42, faults=6)
    plan_b = random_plan(seed=42, faults=6)
    plan_c = random_plan(seed=43, faults=6)
    assert plan_a.describe() == plan_b.describe()
    assert plan_a.describe() != plan_c.describe()
    assert len(plan_a) == 6


def test_crash_target_resolves_against_live_membership():
    """A decommissioned datanode id is a hard error naming the live set,
    not a silent no-op against stale build-time state."""
    from repro.cluster import rack_cluster

    cluster = VirtualHadoopCluster(block_size=256 << 10, replication=2,
                                   topology=rack_cluster(1, 3))

    def churn():
        yield from cluster.membership.decommission_datanode(
            "dn2", poll_interval=0.2)

    cluster.run(cluster.sim.process(churn()))
    cluster.membership.stop_monitor()

    cluster.faults.plan.at(0.0, DatanodeCrash("dn2"))
    cluster.faults.arm()
    with pytest.raises(ValueError, match=r"no live datanode 'dn2' \('dn2' "
                                         r"was decommissioned\).*dn1"):
        cluster.settle()


def test_decommission_fault_drains_through_membership():
    from repro.cluster import rack_cluster
    from repro.faults import DecommissionDatanode

    plan = FaultPlan().at(0.0, DecommissionDatanode("dn3",
                                                    poll_interval=0.2))
    cluster = VirtualHadoopCluster(block_size=256 << 10, replication=2,
                                   topology=rack_cluster(1, 3), faults=plan)
    payload = PatternSource(600 << 10, seed=31)

    def load():
        yield from cluster.write_dataset("/f", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    cluster.faults.arm()

    def run_for():
        # Bounded run: the drain's monitor heartbeats forever, so a
        # plain settle() would never return until it is stopped.
        yield cluster.sim.timeout(1.0)

    cluster.run(cluster.sim.process(run_for()))
    cluster.membership.stop_monitor()
    cluster.settle()

    assert cluster.membership.decommissioned == ["dn3"]
    assert cluster.membership.live_datanode_ids() == ["dn1", "dn2"]
    assert cluster.fault_counters.get("fault.decommission-done") == 1

    def read():
        source = yield from cluster.clients.get().read_file("/f", 64 << 10)
        return source

    assert cluster.run(
        cluster.sim.process(read())).checksum() == payload.checksum()
