"""The two headline resilience scenarios from the fault-injection issue:

* a datanode VM crash mid-read fails over to the surviving replica;
* a vRead daemon crash mid-read degrades to the vanilla path and recovers
  after the re-probe interval.

Both are checksum-verified end to end.
"""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.faults import (
    DaemonCrash,
    DatanodeCrash,
    FaultPlan,
    RetryPolicy,
    VReadClientPolicy,
)
from repro.storage.content import PatternSource

BLOCK = 256 * 1024
PAYLOAD = 1 << 20  # 4 blocks


def load(cluster, path, payload):
    def proc():
        yield from cluster.write_dataset(path, payload)

    cluster.run(cluster.sim.process(proc()))
    cluster.settle()


def read_all(cluster, client, path):
    def proc():
        source = yield from client.read_file(path, 64 * 1024)
        return source

    return cluster.run(cluster.sim.process(proc()))


def test_datanode_crash_mid_read_fails_over_to_surviving_replica():
    plan = FaultPlan().at(0.002, DatanodeCrash("dn1"))
    cluster = VirtualHadoopCluster(block_size=BLOCK, replication=2,
                                   faults=plan, seed=11)
    payload = PatternSource(PAYLOAD, seed=5)
    load(cluster, "/data", payload)

    client = cluster.clients.get()
    # Tight attempt budget so the half-dead connection is abandoned fast.
    client.retry_policy = RetryPolicy(attempt_timeout=0.1, base_backoff=0.01)
    cluster.faults.arm()

    got = read_all(cluster, client, "/data")
    assert got.checksum() == payload.checksum()
    counters = cluster.fault_counters
    assert counters.get("fault.datanode-crash") == 1
    assert counters.get("recovery.replica-failover") >= 1
    # The surviving replica actually served data.
    assert cluster.datanodes[1].blocks_served > 0
    assert client.is_blacklisted("dn1")


def test_daemon_crash_mid_read_degrades_to_vanilla_and_recovers():
    # The whole vRead read takes ~1.7ms; crash the daemon halfway through.
    plan = FaultPlan().at(0.0005, DaemonCrash(duration=0.3))
    cluster = VirtualHadoopCluster(block_size=BLOCK, replication=2,
                                   vread=True, faults=plan, seed=11)
    cluster.vread_manager.client_policy = VReadClientPolicy(
        open_timeout=0.05, read_timeout=0.05, reprobe_interval=0.2)
    payload = PatternSource(PAYLOAD, seed=6)
    load(cluster, "/data", payload)

    client = cluster.clients.get()
    library = cluster.vread_manager.library_of(cluster.client_vm)
    cluster.faults.arm()

    # Read #1: the daemon dies under it.  The library degrades and the
    # stream finishes the file over the vanilla datanode path.
    got = read_all(cluster, client, "/data")
    assert got.checksum() == payload.checksum()
    counters = cluster.fault_counters
    assert counters.get("fault.daemon-crash") == 1
    assert counters.get("recovery.vread-degraded") == 1
    assert counters.get("recovery.fallback-vanilla") >= 1
    assert library.degraded

    # Let the daemon restart and the re-probe window elapse.
    def idle():
        yield cluster.sim.timeout(1.0)

    cluster.run(cluster.sim.process(idle()))
    assert counters.get("fault.daemon-restart") == 1

    # Read #2: the first call re-probes the daemon, recovers, and vRead
    # serves the rest of the file again.
    vread_reads_before = library.reads
    got = read_all(cluster, client, "/data")
    assert got.checksum() == payload.checksum()
    assert counters.get("recovery.daemon-reprobe") >= 1
    assert counters.get("recovery.daemon-recovered") == 1
    assert not library.degraded
    assert library.reads > vread_reads_before
