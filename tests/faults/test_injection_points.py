"""Per-layer fault injection points: rings, RDMA, disks, caches, images,
migration — each fault lands in its layer and the read paths absorb it."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.faults import (
    DiskOutage,
    FaultPlan,
    GuestCacheDrop,
    ImageFault,
    MigrateVm,
    RdmaFlap,
    RetryPolicy,
    RingStall,
)
from repro.storage.content import PatternSource

BLOCK = 256 * 1024


def load(cluster, path, payload, **kwargs):
    def proc():
        yield from cluster.write_dataset(path, payload, **kwargs)

    cluster.run(cluster.sim.process(proc()))
    cluster.settle()


def read_all(cluster, client, path):
    def proc():
        source = yield from client.read_file(path, 64 * 1024)
        return source

    return cluster.run(cluster.sim.process(proc()))


def test_ring_stall_delays_but_does_not_corrupt():
    payload = PatternSource(1 << 20, seed=1)

    def timed_read(plan):
        cluster = VirtualHadoopCluster(block_size=BLOCK, vread=True,
                                       faults=plan, seed=3)
        load(cluster, "/data", payload)
        cluster.faults.arm()
        start = cluster.sim.now
        got = read_all(cluster, cluster.clients.get(), "/data")
        return got, cluster.sim.now - start

    baseline, quick = timed_read(None)
    stalled, slow = timed_read(FaultPlan().at(0.0, RingStall(duration=0.05)))
    assert baseline.checksum() == payload.checksum()
    assert stalled.checksum() == payload.checksum()
    # The stall held the rings for 50ms; the read had to wait it out.
    assert slow >= 0.05 > quick


def test_rdma_flap_falls_back_to_tcp():
    # All blocks on the remote datanode so vRead must cross hosts.
    plan = FaultPlan().at(0.0, RdmaFlap(duration=0.5))
    cluster = VirtualHadoopCluster(block_size=BLOCK, vread=True,
                                   faults=plan, seed=3)
    payload = PatternSource(1 << 20, seed=2)
    load(cluster, "/data", payload, favored=["dn2"])
    cluster.faults.arm()
    got = read_all(cluster, cluster.clients.get(), "/data")
    assert got.checksum() == payload.checksum()
    counters = cluster.fault_counters
    assert counters.get("recovery.rdma-tcp-fallback") >= 1
    assert cluster.rdma.failures >= 1


def test_disk_outage_fails_over_to_healthy_replica():
    plan = FaultPlan().at(0.0, DiskOutage("host1", duration=0.3))
    cluster = VirtualHadoopCluster(block_size=BLOCK, replication=2,
                                   faults=plan, seed=3)
    payload = PatternSource(1 << 20, seed=4)
    load(cluster, "/data", payload)
    cluster.drop_all_caches()  # cold read: force real disk I/O
    client = cluster.clients.get()
    client.retry_policy = RetryPolicy(attempt_timeout=0.1, base_backoff=0.01)
    cluster.faults.arm()
    got = read_all(cluster, client, "/data")
    assert got.checksum() == payload.checksum()
    assert cluster.hosts[0].ssd.io_errors >= 1
    assert cluster.fault_counters.get("recovery.replica-failover") >= 1


def test_guest_cache_drop_empties_the_cache():
    plan = FaultPlan().on("drop", GuestCacheDrop("datanode1"))
    cluster = VirtualHadoopCluster(block_size=BLOCK, faults=plan, seed=3)
    payload = PatternSource(512 * 1024, seed=5)
    load(cluster, "/data", payload, favored=["dn1"])
    vm = cluster.datanode_vms[0]
    assert vm.guest_cache.resident_pages > 0
    cluster.faults.fire("drop")
    cluster.settle()
    assert vm.guest_cache.resident_pages == 0


def test_image_fault_degrades_vread_but_read_survives():
    plan = FaultPlan().at(0.0, ImageFault("datanode1", duration=0.5))
    cluster = VirtualHadoopCluster(block_size=BLOCK, vread=True,
                                   faults=plan, seed=3)
    payload = PatternSource(1 << 20, seed=6)
    load(cluster, "/data", payload, favored=["dn1"])
    cluster.faults.arm()
    got = read_all(cluster, cluster.clients.get(), "/data")
    assert got.checksum() == payload.checksum()
    assert cluster.fault_counters.get("recovery.fallback-vanilla") >= 1


def test_vm_migration_rebinds_and_vread_still_works():
    plan = FaultPlan().at(0.0, MigrateVm("datanode1", "host2"))
    cluster = VirtualHadoopCluster(block_size=BLOCK, vread=True,
                                   faults=plan, seed=3)
    payload = PatternSource(1 << 20, seed=7)
    load(cluster, "/data", payload, favored=["dn1"])
    cluster.faults.arm()
    cluster.settle()  # complete the migration
    assert cluster.datanode_vms[0].host is cluster.hosts[1]
    assert cluster.fault_counters.get("fault.vm-migration-done") == 1
    got = read_all(cluster, cluster.clients.get(), "/data")
    assert got.checksum() == payload.checksum()
