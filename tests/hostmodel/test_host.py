"""Tests for PhysicalHost, frequency presets, and the cost model."""

import pytest

from repro.hostmodel import GHZ_1_6, GHZ_2_0, GHZ_3_2, PhysicalHost, ghz
from repro.hostmodel.costs import CostModel, DEFAULT_COSTS
from repro.hostmodel.frequency import PAPER_FREQUENCIES, frequency_label
from repro.sim import Simulator
from repro.storage.image import DiskImage


def test_frequency_presets():
    assert GHZ_1_6 == pytest.approx(1.6e9)
    assert GHZ_2_0 == pytest.approx(2.0e9)
    assert GHZ_3_2 == pytest.approx(3.2e9)
    assert PAPER_FREQUENCIES == (GHZ_1_6, GHZ_2_0, GHZ_3_2)


def test_ghz_validation():
    with pytest.raises(ValueError):
        ghz(0)


def test_frequency_label():
    assert frequency_label(GHZ_2_0) == "2.0GHz"


def test_cost_model_segments():
    costs = CostModel()
    assert costs.segments(0) == 0
    assert costs.segments(1) == 1
    assert costs.segments(costs.tso_segment_bytes) == 1
    assert costs.segments(costs.tso_segment_bytes + 1) == 2


def test_cost_model_with_overrides_is_a_new_object():
    costs = CostModel()
    tweaked = costs.with_overrides(memcpy_cycles_per_byte=9.9)
    assert tweaked.memcpy_cycles_per_byte == 9.9
    assert costs.memcpy_cycles_per_byte == DEFAULT_COSTS.memcpy_cycles_per_byte
    assert tweaked is not costs


def test_host_construction_defaults():
    sim = Simulator()
    host = PhysicalHost(sim, "host1", cores=4, frequency_hz=GHZ_2_0)
    assert host.cores == 4
    assert host.frequency_hz == GHZ_2_0
    assert host.vms == []
    assert host.nic is None


def test_host_set_frequency():
    sim = Simulator()
    host = PhysicalHost(sim, "host1", frequency_hz=GHZ_3_2)
    host.set_frequency(GHZ_1_6)
    assert host.frequency_hz == GHZ_1_6


def test_host_thread_names_are_prefixed():
    sim = Simulator()
    host = PhysicalHost(sim, "host1")
    thread = host.thread("vread-daemon")
    assert thread.name == "host1.vread-daemon"


def test_mount_image_idempotent():
    sim = Simulator()
    host = PhysicalHost(sim, "host1")
    image = DiskImage("datanode1.img")
    first = host.mount_image(image)
    second = host.mount_image(image)
    assert first is second
    assert first.mount_point == "/mnt/datanode1.img"


def test_unmount_image():
    sim = Simulator()
    host = PhysicalHost(sim, "host1")
    host.mount_image(DiskImage("dn.img"))
    host.unmount_image("dn.img")
    assert host.mounts == {}
    with pytest.raises(KeyError):
        host.unmount_image("dn.img")


def test_drop_caches_empties_host_cache():
    sim = Simulator()
    host = PhysicalHost(sim, "host1")
    host.page_cache.insert("obj", 0, 8192)
    assert host.page_cache.resident_pages > 0
    host.drop_caches()
    assert host.page_cache.resident_pages == 0
