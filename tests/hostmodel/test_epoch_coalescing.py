"""Equivalence tests for contended-round epoch coalescing.

An *epoch* coalesces a fully-closed contended round — every core running a
coalesced burst, every waiter parked at its rotation re-acquire — into one
horizon timer, replaying the round-robin arithmetic op-for-op against the
reference loop.  These tests force epochs to actually form (sustained CPU
oversubscription) and pin exact equality of accounting snapshots, probe
observations, completion times, and final clock against both the plain
fast path and the ``REPRO_LEGACY_SLICES`` reference — including across
capped tapes, chained epochs, frequency changes, and interrupts.
"""

import pytest

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import (CpuScheduler, _Epoch, epoch_coalescing,
                                 epoch_stats, legacy_slices)
from repro.metrics.accounting import CpuAccounting
from repro.sim import Interrupt, Simulator

# Real switch costs so 'others' charges discriminate schedules; no wake
# stacking so the contended rotation is deterministic across modes.
COSTS = CostModel().with_overrides(wakeup_stacking_delay_seconds=0.0)


def run_batch(fast, epochs, n=8, cycles=48e6, cores=4, probe_at=None,
              freq_dance=None, interrupt_at=None):
    """n staggered CPU hogs on ``cores`` cores; returns full observables."""
    with legacy_slices(not fast), epoch_coalescing(epochs):
        sim = Simulator()
        acct = CpuAccounting()
        sched = CpuScheduler(sim, cores, 3.2e9, acct, COSTS)
        finish, probes, caught = [], [], []
        victims = []

        def worker(i):
            thread = sched.thread(f"t{i}")
            yield sim.timeout(i * 1e-5)
            try:
                yield from thread.run(cycles + i * 1000, "work")
            except Interrupt:
                caught.append((f"t{i}", sim.now))
                return
            finish.append((f"t{i}", sim.now))

        for i in range(n):
            victims.append(sim.process(worker(i)))
        if probe_at is not None:
            def prober():
                yield sim.timeout(probe_at)
                probes.append(sorted(acct.snapshot().items()))
            sim.process(prober())
        if freq_dance is not None:
            def dancer():
                at, freq = freq_dance
                yield sim.timeout(at)
                sched.set_frequency(freq)
            sim.process(dancer())
        if interrupt_at is not None:
            def sniper():
                at, idx = interrupt_at
                yield sim.timeout(at)
                victims[idx].interrupt("epoch test")
            sim.process(sniper())
        sim.run()
        return (sim.now, sorted(finish), sorted(caught), probes,
                sorted(acct.snapshot().items()))


def test_epochs_form_under_sustained_contention():
    before = epoch_stats()
    run_batch(fast=True, epochs=True)
    after = epoch_stats()
    assert after["epochs_formed"] > before["epochs_formed"]
    assert after["epoch_records"] > before["epoch_records"]


def test_epoch_schedule_equals_fast_and_legacy():
    epoch = run_batch(fast=True, epochs=True)
    fast = run_batch(fast=True, epochs=False)
    legacy = run_batch(fast=False, epochs=False)
    assert epoch == fast
    assert epoch == legacy


def test_mid_epoch_probe_observes_reference_charges():
    # The probe lands while an epoch is in flight: the settle hook must
    # fold the tape exactly as the reference's per-slice commits would.
    for probe_at in (0.0045, 0.006, 0.0101):
        epoch = run_batch(fast=True, epochs=True, probe_at=probe_at)
        fast = run_batch(fast=True, epochs=False, probe_at=probe_at)
        assert epoch == fast


def test_capped_tape_and_chained_epochs_stay_exact(monkeypatch):
    # A tiny record cap forces the tape to close early and a fresh epoch
    # to form at each fire — the chained-reconstruction path.
    monkeypatch.setattr(_Epoch, "RECORDS_CAP", 32)
    epoch = run_batch(fast=True, epochs=True, probe_at=0.006)
    fast = run_batch(fast=True, epochs=False, probe_at=0.006)
    assert epoch == fast


def test_frequency_change_dissolves_epoch_exactly():
    before = epoch_stats()
    epoch = run_batch(fast=True, epochs=True, freq_dance=(0.0043, 2.4e9))
    fast = run_batch(fast=True, epochs=False, freq_dance=(0.0043, 2.4e9))
    legacy = run_batch(fast=False, epochs=False, freq_dance=(0.0043, 2.4e9))
    assert epoch == fast
    assert epoch == legacy
    assert epoch_stats()["epochs_demoted"] > before["epochs_demoted"]


def test_interrupt_mid_epoch_restores_exact_cursor():
    for at, idx in ((0.0047, 2), (0.0071, 6)):
        epoch = run_batch(fast=True, epochs=True, interrupt_at=(at, idx))
        fast = run_batch(fast=True, epochs=False, interrupt_at=(at, idx))
        assert epoch == fast


def test_periodic_hogs_with_probes_stay_exact():
    # lookbusy-style duty cycles: run/sleep loops that repeatedly form and
    # drain the contended round, observed by a mid-flight prober.
    def run(fast, epochs):
        with legacy_slices(not fast), epoch_coalescing(epochs):
            sim = Simulator()
            acct = CpuAccounting()
            sched = CpuScheduler(sim, 2, 3.2e9, acct, COSTS)
            probes = []

            def hog(i):
                thread = sched.thread(f"hog{i}")
                for _ in range(12):
                    yield from thread.run(27.2e6 + i * 640, "spin")
                    yield sim.timeout(0.0015)

            for i in range(4):
                sim.process(hog(i))

            def prober():
                while sim.now < 0.05:
                    yield sim.timeout(0.0031)
                    probes.append(sorted(acct.snapshot().items()))

            sim.process(prober())
            sim.run()
            return sim.now, probes, sorted(acct.snapshot().items())

    epoch = run(True, True)
    fast = run(True, False)
    legacy = run(False, False)
    assert epoch == fast
    assert epoch == legacy


def test_epoch_toggle_disables_formation():
    with epoch_coalescing(False):
        before = epoch_stats()["epochs_formed"]
        run_batch(fast=True, epochs=True)  # inner context wins: enabled
        assert epoch_stats()["epochs_formed"] > before
        before = epoch_stats()["epochs_formed"]
        run_batch(fast=True, epochs=False)
        assert epoch_stats()["epochs_formed"] == before


def test_epoch_stats_keys_are_stable():
    stats = epoch_stats()
    assert set(stats) == {"epochs_formed", "epochs_completed",
                          "epochs_demoted", "epochs_rejected",
                          "epoch_records"}
    assert all(isinstance(value, int) for value in stats.values())
