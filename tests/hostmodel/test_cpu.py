"""Tests for the fair-share CPU scheduler — the substrate for the paper's
I/O-thread synchronization findings."""

import pytest

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler
from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.sim import SimulationError, Simulator

ZERO_SWITCH = CostModel().with_overrides(context_switch_cycles=0.0,
                                         wakeup_stacking_delay_seconds=0.0)


def make_sched(cores=1, freq=1e9, costs=ZERO_SWITCH):
    sim = Simulator()
    acct = CpuAccounting()
    sched = CpuScheduler(sim, cores, freq, acct, costs)
    return sim, sched, acct


def test_single_burst_duration_matches_cycles_over_frequency():
    sim, sched, acct = make_sched(freq=2e9)
    thread = sched.thread("t")
    done = []

    def proc():
        yield from thread.run(2e6, "work")  # 2M cycles @ 2GHz = 1ms
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(0.001)]
    assert acct.by_category()["work"] == pytest.approx(0.001)


def test_zero_cycles_is_noop():
    sim, sched, _ = make_sched()

    def proc():
        yield from sched.thread("t").run(0, "work")
        return sim.now

    process = sim.process(proc())
    sim.run()
    assert process.value == 0.0


def test_negative_cycles_rejected():
    sim, sched, _ = make_sched()

    def proc():
        yield from sched.thread("t").run(-1, "work")

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_threads_share_one_core_fairly():
    # Two equal bursts on one core must both finish at ~2x the solo time.
    sim, sched, _ = make_sched(cores=1, freq=1e9)
    finish = {}

    def proc(tag):
        yield from sched.thread(tag).run(5e6, "work")  # 5ms solo
        finish[tag] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish["a"] == pytest.approx(0.010, rel=0.15)
    assert finish["b"] == pytest.approx(0.010, rel=0.01)


def test_two_threads_on_two_cores_run_in_parallel():
    sim, sched, _ = make_sched(cores=2, freq=1e9)
    finish = {}

    def proc(tag):
        yield from sched.thread(tag).run(5e6, "work")
        finish[tag] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish["a"] == pytest.approx(0.005)
    assert finish["b"] == pytest.approx(0.005)


def test_short_burst_waits_behind_busy_cores():
    # One core, a long burst running, a short burst arriving later: the short
    # burst's completion reflects queueing delay (the paper's sync delay).
    sim, sched, _ = make_sched(cores=1, freq=1e9)
    finish = {}

    def long_runner():
        yield from sched.thread("long").run(10e6, "work")  # 10ms
        finish["long"] = sim.now

    def short_runner():
        yield sim.timeout(0.0005)
        yield from sched.thread("short").run(1e5, "work")  # 0.1ms solo
        finish["short"] = sim.now

    sim.process(long_runner())
    sim.process(short_runner())
    sim.run()
    # Without contention the short burst would end at 0.6ms; with the long
    # burst hogging the core it must wait for a slice boundary.
    assert finish["short"] > 0.0009


def test_context_switch_cost_charged_to_others():
    costs = CostModel().with_overrides(context_switch_cycles=1e6)  # 1ms @1GHz
    sim, sched, acct = make_sched(freq=1e9, costs=costs)

    def proc():
        yield from sched.thread("t").run(1e6, "work")

    sim.process(proc())
    sim.run()
    assert acct.by_category()[OTHERS] == pytest.approx(0.001)
    assert sim.now == pytest.approx(0.002)  # switch + work


def test_same_thread_bursts_serialize():
    # Two processes driving the same thread entity must not overlap.
    sim, sched, _ = make_sched(cores=4, freq=1e9)
    thread = sched.thread("vcpu")
    finish = []

    def proc():
        yield from thread.run(1e6, "work")  # 1ms
        finish.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert finish == [pytest.approx(0.001), pytest.approx(0.002)]


def test_different_threads_do_not_serialize():
    sim, sched, _ = make_sched(cores=4, freq=1e9)
    finish = []

    def proc(tag):
        yield from sched.thread(tag).run(1e6, "work")
        finish.append(sim.now)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish == [pytest.approx(0.001), pytest.approx(0.001)]


def test_set_frequency_scales_subsequent_bursts():
    sim, sched, _ = make_sched(freq=2e9)
    finish = []

    def proc():
        yield from sched.thread("a").run(2e6, "work")  # 1ms @ 2GHz
        finish.append(sim.now)
        sched.set_frequency(1e9)
        yield from sched.thread("b").run(2e6, "work")  # 2ms @ 1GHz
        finish.append(sim.now)

    sim.process(proc())
    sim.run()
    assert finish == [pytest.approx(0.001), pytest.approx(0.003)]


def test_scheduler_validation():
    sim = Simulator()
    acct = CpuAccounting()
    with pytest.raises(SimulationError):
        CpuScheduler(sim, 0, 1e9, acct)
    with pytest.raises(SimulationError):
        CpuScheduler(sim, 1, 0, acct)
    sched = CpuScheduler(sim, 1, 1e9, acct)
    with pytest.raises(SimulationError):
        sched.set_frequency(-1)


def test_accounting_total_equals_busy_time_no_contention():
    sim, sched, acct = make_sched(cores=2, freq=1e9)

    def proc(tag, cycles):
        yield from sched.thread(tag).run(cycles, "work")

    sim.process(proc("a", 3e6))
    sim.process(proc("b", 1e6))
    sim.run()
    assert acct.total() == pytest.approx(0.004)


def test_waiting_and_busy_counters():
    sim, sched, _ = make_sched(cores=1, freq=1e9)
    seen = []

    def worker(tag):
        yield from sched.thread(tag).run(5e6, "work")

    def observer():
        yield sim.timeout(0.002)
        seen.append((sched.busy_cores, sched.runnable_waiting))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.process(observer())
    sim.run()
    assert seen == [(1, 1)]
