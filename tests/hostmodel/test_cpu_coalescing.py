"""Unit tests for the coalesced-burst scheduler fast path.

The exhaustive cross-checking against the per-slice reference lives in
``tests/properties/test_slice_equivalence.py``; these tests pin the
individual mechanisms — whole-burst timers, contender demotion, the
accounting settle hook, frequency-change re-folding, mutex/core ceremony
elision, and the sanitize-mode routing back to the reference loop.
"""

import pytest

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler, legacy_slices
from repro.metrics.accounting import CpuAccounting, OTHERS
from repro.sim import Interrupt, Simulator

ZERO_SWITCH = CostModel().with_overrides(context_switch_cycles=0.0,
                                         wakeup_stacking_delay_seconds=0.0)
SHORT_SLICES = ZERO_SWITCH.with_overrides(time_slice_seconds=1e-4)


def make_sched(cores=1, freq=1e9, costs=SHORT_SLICES, sanitize=False):
    sim = Simulator(sanitize=sanitize)
    acct = CpuAccounting()
    sched = CpuScheduler(sim, cores, freq, acct, costs)
    return sim, sched, acct


def test_uncontended_burst_runs_as_one_timer():
    # Pin the toggle: this test counts fast-path events and must hold even
    # when the environment forces REPRO_LEGACY_SLICES=1 globally.
    with legacy_slices(False):
        sim, sched, acct = make_sched(freq=1e9)
        thread = sched.thread("t")
        # 1M cycles @ 1GHz with 100us slices = 10 slices; coalesced, the
        # whole burst is at most a handful of kernel events instead of ~10.
        def proc():
            yield from thread.run(1_000_000, "work")

        sim.run_until_complete(sim.process(proc()))
        assert sim.now == pytest.approx(1e-3)
        assert acct.by_category()["work"] == pytest.approx(1e-3)
        assert sim.events_processed < 8


def test_legacy_toggle_runs_every_slice():
    with legacy_slices():
        sim, sched, acct = make_sched(freq=1e9)
        thread = sched.thread("t")

        def proc():
            yield from thread.run(1_000_000, "work")

        sim.run_until_complete(sim.process(proc()))
        assert sim.now == pytest.approx(1e-3)
        assert sim.events_processed >= 10  # one wake per 100us slice


def test_sanitize_mode_routes_to_reference_loop():
    sim, sched, acct = make_sched(freq=1e9, sanitize=True)
    thread = sched.thread("t")

    def proc():
        yield from thread.run(1_000_000, "work")

    sim.run_until_complete(sim.process(proc()))
    assert sim.now == pytest.approx(1e-3)
    assert sim.events_processed >= 10  # slice-granular under the sanitizer
    assert sched._inflight == []


def test_mid_burst_accounting_read_settles_elapsed_boundaries():
    sim, sched, acct = make_sched(freq=1e9)
    thread = sched.thread("t")
    readings = []

    def worker():
        yield from thread.run(1_000_000, "work")  # 1ms

    def probe():
        yield sim.timeout(0.00035)
        readings.append(acct.total())

    sim.process(worker())
    sim.process(probe())
    sim.run()
    # At t=0.35ms three 100us slice boundaries have elapsed: the lazy burst
    # must settle exactly those, not zero and not the whole 1ms.
    assert readings == [pytest.approx(3e-4)]
    assert acct.total() == pytest.approx(1e-3)


def test_contender_arrival_demotes_to_round_robin():
    sim, sched, acct = make_sched(cores=1, freq=1e9)
    order = []

    def worker(name, delay, cycles):
        thread = sched.thread(name)
        yield sim.timeout(delay)
        yield from thread.run(cycles, "work")
        order.append((name, sim.now))

    sim.process(worker("early", 0.0, 1_000_000))
    sim.process(worker("late", 0.00025, 300_000))
    sim.run()
    # The late arrival lands mid-burst; round-robin then interleaves the
    # two, so the short burst finishes well before the long one.
    assert [name for name, _ in sorted(order, key=lambda pair: pair[1])] \
        == ["late", "early"]
    assert acct.by_thread()["early"] == pytest.approx(1e-3)
    assert acct.by_thread()["late"] == pytest.approx(3e-4)


def test_set_frequency_mid_burst_refolds():
    sim, sched, acct = make_sched(freq=1e9)
    thread = sched.thread("t")
    done = []

    def worker():
        yield from thread.run(1_000_000, "work")
        done.append(sim.now)

    def governor():
        yield sim.timeout(0.0005)
        sched.set_frequency(2e9)

    sim.process(worker())
    sim.process(governor())
    sim.run()
    # 0.5ms at 1GHz burns 500k cycles; the rest runs at 2GHz: 0.25ms more.
    assert done == [pytest.approx(0.00075)]
    assert acct.total() == pytest.approx(0.00075)


def test_interrupt_mid_burst_charges_elapsed_time_only():
    sim, sched, acct = make_sched(freq=1e9)
    thread = sched.thread("t")
    caught = []

    def worker():
        try:
            yield from thread.run(1_000_000, "work")
        except Interrupt:
            caught.append(sim.now)

    victim = sim.process(worker())

    def sniper():
        yield sim.timeout(0.00042)
        victim.interrupt("test")

    sim.process(sniper())
    sim.run()
    assert caught == [pytest.approx(0.00042)]
    # Only boundaries that elapsed before the interrupt are charged — the
    # reference loop would have charged exactly the four whole slices.
    assert acct.total() == pytest.approx(4e-4)
    assert sched._inflight == []


def test_context_switch_cost_still_charged_to_others():
    costs = CostModel().with_overrides(context_switch_cycles=1e6,
                                       wakeup_stacking_delay_seconds=0.0)
    sim, sched, acct = make_sched(freq=1e9, costs=costs)
    thread = sched.thread("t")

    def proc():
        yield from thread.run(500_000, "work")

    sim.run_until_complete(sim.process(proc()))
    assert acct.by_category()[OTHERS] == pytest.approx(1e-3)
    assert acct.by_category()["work"] == pytest.approx(5e-4)


def test_mutex_released_after_elided_ceremony():
    sim, sched, _ = make_sched()
    thread = sched.thread("t")

    def proc(tag):
        yield from thread.run(1000, "work")

    # Two sequential bursts on the same thread: the second can only acquire
    # the per-thread mutex if the elided first acquisition was released.
    def both():
        yield from thread.run(1000, "work")
        yield from thread.run(1000, "work")

    sim.run_until_complete(sim.process(both()))
    assert not thread._mutex._resource._users
    assert sched._free_cores == sched.cores


def test_fast_and_legacy_agree_on_contended_schedule():
    def run(use_legacy):
        with legacy_slices(use_legacy):
            sim, sched, acct = make_sched(cores=2, freq=1e9)
            finish = []

            def worker(name, delay, cycles):
                thread = sched.thread(name)
                yield sim.timeout(delay)
                yield from thread.run(cycles, "work")
                finish.append((name, sim.now))

            for i in range(4):
                sim.process(worker(f"t{i}", i * 1e-4, 350_000 + i * 7))
            sim.run()
            return sim.now, sorted(finish), sorted(acct.snapshot().items())

    assert run(False) == run(True)
