"""Interrupting processes mid-burst must not leak cores or mutexes."""

import pytest

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler
from repro.metrics.accounting import CpuAccounting
from repro.sim import Interrupt, Simulator

CLEAN = CostModel().with_overrides(context_switch_cycles=0.0,
                                   wakeup_stacking_delay_seconds=0.0)


def test_interrupted_burst_releases_the_core():
    sim = Simulator()
    sched = CpuScheduler(sim, 1, 1e9, CpuAccounting(), CLEAN)
    victim_thread = sched.thread("victim")
    finish = {}

    def victim():
        try:
            yield from victim_thread.run(100e6, "work")  # 100ms
        except Interrupt:
            finish["victim"] = sim.now

    victim_proc = sim.process(victim())

    def attacker():
        yield sim.timeout(0.002)
        victim_proc.interrupt("preempted")

    def successor():
        yield sim.timeout(0.003)
        yield from sched.thread("next").run(1e6, "work")  # 1ms
        finish["next"] = sim.now

    sim.process(attacker())
    sim.process(successor())
    sim.run()
    assert finish["victim"] == pytest.approx(0.002)
    # The successor got the core: no leak.
    assert finish["next"] == pytest.approx(0.004, abs=1e-4)


def test_interrupted_burst_releases_the_thread_mutex():
    sim = Simulator()
    sched = CpuScheduler(sim, 2, 1e9, CpuAccounting(), CLEAN)
    shared_thread = sched.thread("shared")
    finish = {}

    def first():
        try:
            yield from shared_thread.run(100e6, "work")
        except Interrupt:
            pass

    first_proc = sim.process(first())

    def attacker():
        yield sim.timeout(0.001)
        first_proc.interrupt()

    def second():
        yield sim.timeout(0.002)
        yield from shared_thread.run(1e6, "work")
        finish["second"] = sim.now

    sim.process(attacker())
    sim.process(second())
    sim.run()
    # Without mutex cleanup the second burst would deadlock forever.
    assert finish["second"] == pytest.approx(0.003, abs=1e-4)


def test_interrupt_while_queued_for_a_core():
    sim = Simulator()
    sched = CpuScheduler(sim, 1, 1e9, CpuAccounting(), CLEAN)
    outcome = {}

    def hog():
        yield from sched.thread("hog").run(50e6, "work")  # 50ms
        outcome["hog"] = sim.now

    sim.process(hog())

    def waiter():
        try:
            yield from sched.thread("waiter").run(1e6, "work")
            outcome["waiter"] = "ran"
        except Interrupt:
            outcome["waiter"] = "interrupted"

    waiter_proc = sim.process(waiter())

    def attacker():
        # Mid first slice: the waiter is still queued behind the hog.
        yield sim.timeout(0.0005)
        waiter_proc.interrupt()

    sim.process(attacker())

    def successor():
        # Long after the hog: proves the abandoned grant did not leak the
        # core or wedge the run queue.
        yield sim.timeout(0.060)
        yield from sched.thread("late").run(1e6, "work")
        outcome["late"] = sim.now

    sim.process(successor())
    sim.run()
    assert outcome["waiter"] == "interrupted"
    # The hog runs alone once the waiter withdraws: finishes at ~50ms.
    assert outcome["hog"] == pytest.approx(0.050, rel=0.05)
    assert outcome["late"] == pytest.approx(0.061, abs=1e-3)
