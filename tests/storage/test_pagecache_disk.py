"""Tests for the LRU page cache and the SSD device model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostmodel.costs import CostModel
from repro.sim import Simulator
from repro.storage.device import make_device
from repro.storage.pagecache import PAGE_SIZE, PageCache


# ------------------------------------------------------------------ pagecache
def test_page_span():
    assert list(PageCache.page_span(0, 1)) == [0]
    assert list(PageCache.page_span(0, PAGE_SIZE)) == [0]
    assert list(PageCache.page_span(0, PAGE_SIZE + 1)) == [0, 1]
    assert list(PageCache.page_span(PAGE_SIZE - 1, 2)) == [0, 1]
    assert list(PageCache.page_span(100, 0)) == []


def test_missing_then_resident():
    cache = PageCache()
    assert cache.missing_bytes("f", 0, 8192) == 8192
    cache.insert("f", 0, 8192)
    assert cache.missing_bytes("f", 0, 8192) == 0
    assert cache.contains("f", 0, 8192)


def test_partial_residency():
    cache = PageCache()
    cache.insert("f", 0, PAGE_SIZE)  # page 0 only
    assert cache.missing_bytes("f", 0, 2 * PAGE_SIZE) == PAGE_SIZE
    assert not cache.contains("f", 0, 2 * PAGE_SIZE)


def test_keys_are_independent():
    cache = PageCache()
    cache.insert("a", 0, PAGE_SIZE)
    assert cache.missing_bytes("b", 0, PAGE_SIZE) == PAGE_SIZE


def test_lru_eviction_order():
    cache = PageCache(capacity_bytes=2 * PAGE_SIZE)
    cache.insert("f", 0, PAGE_SIZE)            # page 0
    cache.insert("f", PAGE_SIZE, PAGE_SIZE)    # page 1
    # Touch page 0 so page 1 becomes LRU.
    assert cache.missing_bytes("f", 0, PAGE_SIZE) == 0
    cache.insert("f", 2 * PAGE_SIZE, PAGE_SIZE)  # page 2 evicts page 1
    assert cache.contains("f", 0, PAGE_SIZE)
    assert not cache.contains("f", PAGE_SIZE, PAGE_SIZE)
    assert cache.contains("f", 2 * PAGE_SIZE, PAGE_SIZE)
    assert cache.evictions == 1


def test_invalidate_single_object():
    cache = PageCache()
    cache.insert("a", 0, 3 * PAGE_SIZE)
    cache.insert("b", 0, PAGE_SIZE)
    dropped = cache.invalidate("a")
    assert dropped == 3
    assert cache.contains("b", 0, PAGE_SIZE)
    assert not cache.contains("a", 0, PAGE_SIZE)


def test_drop_clears_everything():
    cache = PageCache()
    cache.insert("a", 0, PAGE_SIZE)
    cache.drop()
    assert cache.resident_pages == 0


def test_hit_miss_counters():
    cache = PageCache()
    cache.missing_bytes("f", 0, PAGE_SIZE)   # miss
    cache.insert("f", 0, PAGE_SIZE)
    cache.missing_bytes("f", 0, PAGE_SIZE)   # hit
    assert cache.misses == 1 and cache.hits == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        PageCache(capacity_bytes=0)


@given(ops=st.lists(st.tuples(st.integers(0, 63), st.integers(1, 4)),
                    min_size=1, max_size=60))
@settings(max_examples=50)
def test_cache_never_exceeds_capacity(ops):
    cache = PageCache(capacity_bytes=8 * PAGE_SIZE)
    for page, npages in ops:
        cache.insert("f", page * PAGE_SIZE, npages * PAGE_SIZE)
        assert cache.resident_pages <= 8


@given(ops=st.lists(st.tuples(st.sampled_from(["a", "b"]),
                              st.integers(0, 31)), min_size=1, max_size=60))
@settings(max_examples=50)
def test_inserted_pages_are_resident_until_evicted(ops):
    cache = PageCache()  # unbounded: nothing is ever evicted
    inserted = set()
    for key, page in ops:
        cache.insert(key, page * PAGE_SIZE, PAGE_SIZE)
        inserted.add((key, page))
    for key, page in inserted:
        assert cache.contains(key, page * PAGE_SIZE, PAGE_SIZE)


# ------------------------------------------------------------------------ SSD
def test_ssd_read_time_is_latency_plus_transfer():
    sim = Simulator()
    costs = CostModel()
    ssd = make_device(sim, "ssd", costs=costs)
    nbytes = 1 << 20

    def proc():
        yield from ssd.read(nbytes)
        return sim.now

    process = sim.process(proc())
    sim.run()
    expected = costs.ssd_request_latency + nbytes / costs.ssd_bandwidth_bytes_per_sec
    assert process.value == pytest.approx(expected)
    assert ssd.bytes_read == nbytes


def test_ssd_requests_serialize():
    sim = Simulator()
    costs = CostModel()
    ssd = make_device(sim, "ssd", costs=costs)
    finish = []

    def proc():
        yield from ssd.read(1 << 20)
        finish.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    single = costs.ssd_request_latency + (1 << 20) / costs.ssd_bandwidth_bytes_per_sec
    assert finish[0] == pytest.approx(single)
    assert finish[1] == pytest.approx(2 * single)


def test_ssd_write_accounting():
    sim = Simulator()
    ssd = make_device(sim, "ssd")

    def proc():
        yield from ssd.write(4096)

    sim.process(proc())
    sim.run()
    assert ssd.bytes_written == 4096
    assert ssd.requests == 1


def test_ssd_negative_size_rejected():
    sim = Simulator()
    ssd = make_device(sim, "ssd")

    def proc():
        yield from ssd.read(-1)

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()
