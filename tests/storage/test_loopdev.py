"""Tests for loop-mount staleness/refresh — the semantics vRead_update fixes."""

import pytest

from repro.storage.filesystem import FsError
from repro.storage.image import DiskImage
from repro.storage.loopdev import LoopMount


@pytest.fixture
def image():
    img = DiskImage("dn1.img")
    img.guest_fs.mkdir("/hdfs/data", parents=True)
    img.guest_fs.create("/hdfs/data/blk_1", b"block-one")
    return img


def test_mount_sees_existing_files(image):
    mount = LoopMount(image, "/mnt/dn1")
    assert mount.exists("/hdfs/data/blk_1")
    assert mount.read("/hdfs/data/blk_1", 0, 100) == b"block-one"
    assert mount.size("/hdfs/data/blk_1") == 9


def test_new_guest_file_invisible_until_refresh(image):
    mount = LoopMount(image, "/mnt/dn1")
    image.guest_fs.create("/hdfs/data/blk_2", b"block-two")
    assert mount.stale
    assert not mount.exists("/hdfs/data/blk_2")
    with pytest.raises(FsError):
        mount.read("/hdfs/data/blk_2", 0, 10)
    mount.refresh()
    assert not mount.stale
    assert mount.read("/hdfs/data/blk_2", 0, 10) == b"block-two"


def test_appends_to_existing_block_are_visible_without_refresh(image):
    # Content changes are shared structure; only *namespace* changes need a
    # refresh (HDFS blocks are write-once, appends happen before commit).
    mount = LoopMount(image, "/mnt/dn1")
    image.guest_fs.append("/hdfs/data/blk_1", b"-more")
    assert mount.read("/hdfs/data/blk_1", 0, 100) == b"block-one-more"


def test_deleted_guest_file_still_visible_until_refresh(image):
    mount = LoopMount(image, "/mnt/dn1")
    image.guest_fs.unlink("/hdfs/data/blk_1")
    # The stale dentry still resolves (matches stale-cache semantics).
    assert mount.exists("/hdfs/data/blk_1")
    mount.refresh()
    assert not mount.exists("/hdfs/data/blk_1")


def test_rename_requires_refresh(image):
    mount = LoopMount(image, "/mnt/dn1")
    image.guest_fs.rename("/hdfs/data/blk_1", "/hdfs/data/blk_1.final")
    assert not mount.exists("/hdfs/data/blk_1.final")
    mount.refresh()
    assert mount.exists("/hdfs/data/blk_1.final")
    assert not mount.exists("/hdfs/data/blk_1")


def test_refresh_count_tracks_invocations(image):
    mount = LoopMount(image, "/mnt/dn1")
    assert mount.refresh_count == 1  # initial mount scan
    mount.refresh()
    mount.refresh()
    assert mount.refresh_count == 3


def test_read_directory_through_mount_fails(image):
    mount = LoopMount(image, "/mnt/dn1")
    with pytest.raises(FsError):
        mount.read("/hdfs/data", 0, 1)


def test_mount_is_not_stale_right_after_mounting(image):
    mount = LoopMount(image, "/mnt/dn1")
    assert not mount.stale
