"""Tests for byte-content sources, including property-based range checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.content import (
    ConcatSource,
    LiteralSource,
    PatternSource,
    SliceSource,
    ZeroSource,
)


def test_literal_source_roundtrip():
    src = LiteralSource(b"hello world")
    assert src.size == 11
    assert src.read(0, 5) == b"hello"
    assert src.read(6, 5) == b"world"
    assert src.read(6, 100) == b"world"  # clamped
    assert src.read(11, 4) == b""


def test_negative_offsets_rejected():
    src = LiteralSource(b"abc")
    with pytest.raises(ValueError):
        src.read(-1, 2)
    with pytest.raises(ValueError):
        src.read(0, -2)


def test_pattern_source_deterministic():
    a = PatternSource(1 << 20, seed=7)
    b = PatternSource(1 << 20, seed=7)
    assert a.read(12345, 999) == b.read(12345, 999)


def test_pattern_source_seeds_differ():
    a = PatternSource(1024, seed=1)
    b = PatternSource(1024, seed=2)
    assert a.read(0, 64) != b.read(0, 64)


def test_pattern_source_subrange_matches_full_read():
    src = PatternSource(4096, seed=3)
    full = src.read(0, 4096)
    assert src.read(100, 50) == full[100:150]
    assert src.read(0, 1) == full[:1]
    assert src.read(4095, 10) == full[4095:]


def test_zero_source():
    src = ZeroSource(100)
    assert src.read(10, 20) == b"\x00" * 20
    assert src.read(90, 100) == b"\x00" * 10


def test_concat_source_spans_parts():
    src = ConcatSource([LiteralSource(b"abc"), LiteralSource(b"defgh")])
    assert src.size == 8
    assert src.read(0, 8) == b"abcdefgh"
    assert src.read(2, 3) == b"cde"
    assert src.read(5, 10) == b"fgh"


def test_concat_source_skips_empty_parts():
    src = ConcatSource([LiteralSource(b""), LiteralSource(b"xy")])
    assert src.size == 2
    assert src.read(0, 2) == b"xy"


def test_slice_source_window():
    base = LiteralSource(b"0123456789")
    sliced = SliceSource(base, 2, 5)  # "23456"
    assert sliced.size == 5
    assert sliced.read(0, 5) == b"23456"
    assert sliced.read(3, 10) == b"56"


def test_slice_source_bounds_validation():
    base = LiteralSource(b"0123")
    with pytest.raises(ValueError):
        SliceSource(base, 2, 5)
    with pytest.raises(ValueError):
        SliceSource(base, -1, 2)


def test_checksum_streams_lazily():
    literal = LiteralSource(b"a" * 100_000)
    pattern = PatternSource(100_000, seed=1)
    assert literal.checksum() == LiteralSource(b"a" * 100_000).checksum()
    assert pattern.checksum(chunk=1024) == pattern.checksum(chunk=65536)


@given(data=st.binary(min_size=0, max_size=512),
       offset=st.integers(min_value=0, max_value=600),
       length=st.integers(min_value=0, max_value=600))
def test_literal_read_matches_python_slicing(data, offset, length):
    src = LiteralSource(data)
    assert src.read(offset, length) == data[offset:offset + length]


@given(size=st.integers(min_value=1, max_value=2048),
       seed=st.integers(min_value=0, max_value=10),
       offset=st.integers(min_value=0, max_value=2048),
       length=st.integers(min_value=0, max_value=512))
@settings(max_examples=50)
def test_pattern_read_consistent_with_full_materialization(size, seed, offset, length):
    src = PatternSource(size, seed=seed)
    full = src.read(0, size)
    assert len(full) == size
    assert src.read(offset, length) == full[offset:offset + length]


@given(parts=st.lists(st.binary(min_size=0, max_size=64), max_size=6),
       offset=st.integers(min_value=0, max_value=400),
       length=st.integers(min_value=0, max_value=400))
def test_concat_read_matches_joined_bytes(parts, offset, length):
    joined = b"".join(parts)
    src = ConcatSource([LiteralSource(p) for p in parts])
    assert src.size == len(joined)
    assert src.read(offset, length) == joined[offset:offset + length]
