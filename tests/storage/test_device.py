"""Tests for the pluggable storage-device API (profiles, tiers, seeks)."""

import pytest

from repro.hostmodel.costs import CostModel
from repro.sim import Simulator
from repro.storage.device import (
    DEVICE_PROFILES,
    HDD_PROFILE,
    NVME_PROFILE,
    SSD_PROFILE,
    DeviceProfile,
    DiskError,
    StorageDevice,
    make_device,
    resolve_profile,
)


def run_device(device, requests):
    """Drive ``device.read`` calls serially; returns the final sim time."""
    sim = device.sim

    def proc():
        for nbytes, offset in requests:
            yield from device.read(nbytes, offset=offset)
        return sim.now

    process = sim.process(proc())
    sim.run()
    return process.value


# --------------------------------------------------------------- profiles
def test_profile_validation():
    with pytest.raises(ValueError):
        DeviceProfile(tier="")
    with pytest.raises(ValueError):
        DeviceProfile(tier="x", seek_latency=-1.0)
    with pytest.raises(ValueError):
        DeviceProfile(tier="x", request_latency=-1e-6)
    with pytest.raises(ValueError):
        DeviceProfile(tier="x", bandwidth_bytes_per_sec=0.0)
    with pytest.raises(ValueError):
        DeviceProfile(tier="x", queue_depth=0)


def test_resolve_profile_vocabulary():
    assert resolve_profile(None) is SSD_PROFILE
    assert resolve_profile("hdd") is HDD_PROFILE
    assert resolve_profile(NVME_PROFILE) is NVME_PROFILE
    with pytest.raises(TypeError):
        resolve_profile(42)


def test_resolve_profile_did_you_mean():
    with pytest.raises(KeyError) as err:
        resolve_profile("nvmee")
    assert "did you mean 'nvme'" in str(err.value)
    assert all(name in str(err.value) for name in DEVICE_PROFILES)


def test_builtin_tier_ranks_order_slow_to_fast():
    assert HDD_PROFILE.rank < SSD_PROFILE.rank < NVME_PROFILE.rank


# ------------------------------------------------------------ service time
def test_ssd_matches_cost_model_byte_identically():
    # The default profile must reproduce the pre-profile SsdDevice timing
    # exactly (0.0 seek + cost-model constants), or the golden timelines
    # and fig09/fig11 pins would drift.
    sim = Simulator()
    costs = CostModel()
    device = make_device(sim, "ssd", costs=costs)
    nbytes = 1 << 20
    elapsed = run_device(device, [(nbytes, None)])
    assert elapsed == (costs.ssd_request_latency
                       + nbytes / costs.ssd_bandwidth_bytes_per_sec)
    assert device.seeks == 0


def test_ssd_profile_inherits_cost_model_overrides():
    # Sensitivity sweeps perturb the CostModel; the None-valued profile
    # fields must pick the perturbed constants up.
    base = CostModel()
    costs = base.with_overrides(
        ssd_bandwidth_bytes_per_sec=base.ssd_bandwidth_bytes_per_sec * 2)
    device = make_device(Simulator(), "ssd", costs=costs)
    assert device.bandwidth_bytes_per_sec == costs.ssd_bandwidth_bytes_per_sec


def test_hdd_charges_seek_on_non_sequential_offset():
    sim = Simulator()
    device = make_device(sim, "hdd")
    per_byte = 1.0 / device.bandwidth_bytes_per_sec
    base = device.request_latency
    # First positioned request seeks (head position unknown), the
    # sequential continuation does not, the backward jump seeks again.
    elapsed = run_device(device, [(4096, 0), (4096, 4096), (4096, 0)])
    assert device.seeks == 2
    assert elapsed == pytest.approx(
        2 * HDD_PROFILE.seek_latency + 3 * (base + 4096 * per_byte))


def test_offset_free_requests_never_seek():
    # The legacy call shape (no offset) is a sequential continuation —
    # this is what keeps existing SSD call sites byte-identical.
    device = make_device(Simulator(), "hdd")
    run_device(device, [(4096, None), (4096, None)])
    assert device.seeks == 0


def test_offset_free_request_advances_head():
    device = make_device(Simulator(), "hdd")
    # Positioned read establishes the head; the offset-free read advances
    # it; a positioned read at the advanced head is sequential.
    run_device(device, [(100, 0), (50, None), (25, 150)])
    assert device.seeks == 1  # only the initial positioning


def test_nvme_queue_depth_services_in_parallel():
    sim = Simulator()
    device = make_device(sim, "nvme")
    assert NVME_PROFILE.queue_depth > 1
    finish = []

    def proc():
        yield from device.read(1 << 20)
        finish.append(sim.now)

    for _ in range(NVME_PROFILE.queue_depth):
        sim.process(proc())
    sim.run()
    single = (device.request_latency
              + (1 << 20) / device.bandwidth_bytes_per_sec)
    # All queue_depth requests fit in service slots at once.
    assert finish == pytest.approx([single] * NVME_PROFILE.queue_depth)


def test_single_queue_device_serializes():
    sim = Simulator()
    device = make_device(sim, "ssd")
    finish = []

    def proc():
        yield from device.read(1 << 20)
        finish.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    single = (device.request_latency
              + (1 << 20) / device.bandwidth_bytes_per_sec)
    assert finish == pytest.approx([single, 2 * single])


# ------------------------------------------------------------- fault knobs
def test_latency_factor_scales_service_time():
    sim = Simulator()
    device = make_device(sim, "nvme")
    baseline = (device.request_latency
                + 4096 / device.bandwidth_bytes_per_sec)
    device.set_latency_factor(10.0)
    elapsed = run_device(device, [(4096, None)])
    assert elapsed == pytest.approx(10.0 * baseline)
    with pytest.raises(ValueError):
        device.set_latency_factor(0.0)


def test_failing_device_raises_disk_error():
    sim = Simulator()
    device = make_device(sim, "hdd")
    device.set_failing(True)

    def proc():
        yield from device.read(4096)

    sim.process(proc())
    with pytest.raises(DiskError):
        sim.run()
    assert device.io_errors == 1
    device.set_failing(False)
    run_device(device, [(4096, 0)])
    assert device.bytes_read == 4096


# ----------------------------------------------------------- compatibility
def test_ssd_device_alias_is_deprecated():
    from repro.storage.disk import SsdDevice

    with pytest.warns(DeprecationWarning, match="make_device"):
        device = SsdDevice(Simulator())
    assert isinstance(device, StorageDevice)
    assert device.profile is SSD_PROFILE
    assert device.name == "ssd"


def test_make_device_default_is_ssd():
    device = make_device(Simulator())
    assert device.profile is SSD_PROFILE
    assert device.name == "ssd"
