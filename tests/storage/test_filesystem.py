"""Tests for the in-memory filesystem: namespace ops, handles, generations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.content import PatternSource
from repro.storage.filesystem import FileSystem, FsError


@pytest.fixture
def fs():
    return FileSystem()


def test_mkdir_and_listdir(fs):
    fs.mkdir("/data")
    fs.mkdir("/data/blocks")
    assert fs.listdir("/") == ["data"]
    assert fs.listdir("/data") == ["blocks"]


def test_mkdir_parents(fs):
    fs.mkdir("/a/b/c", parents=True)
    assert fs.exists("/a/b/c")
    # Idempotent with parents=True.
    fs.mkdir("/a/b/c", parents=True)


def test_mkdir_existing_without_parents_fails(fs):
    fs.mkdir("/a")
    with pytest.raises(FsError):
        fs.mkdir("/a")


def test_create_and_read(fs):
    fs.mkdir("/d")
    fs.create("/d/f", b"contents")
    assert fs.read("/d/f") == b"contents"
    assert fs.size("/d/f") == 8


def test_create_duplicate_fails(fs):
    fs.create("/f", b"x")
    with pytest.raises(FsError):
        fs.create("/f", b"y")


def test_read_with_offset_and_length(fs):
    fs.create("/f", b"0123456789")
    assert fs.read("/f", offset=3, length=4) == b"3456"
    assert fs.read("/f", offset=8) == b"89"


def test_append_extends_and_creates(fs):
    fs.append("/log", b"one")
    fs.append("/log", b"two")
    assert fs.read("/log") == b"onetwo"


def test_append_lazy_source(fs):
    pattern = PatternSource(1 << 16, seed=5)
    fs.create("/big")
    fs.append("/big", pattern)
    assert fs.size("/big") == 1 << 16
    assert fs.read("/big", 100, 32) == pattern.read(100, 32)


def test_unlink(fs):
    fs.create("/f", b"x")
    fs.unlink("/f")
    assert not fs.exists("/f")
    with pytest.raises(FsError):
        fs.unlink("/f")


def test_unlink_nonempty_dir_fails(fs):
    fs.mkdir("/d")
    fs.create("/d/f", b"x")
    with pytest.raises(FsError):
        fs.unlink("/d")
    fs.unlink("/d/f")
    fs.unlink("/d")
    assert not fs.exists("/d")


def test_rename(fs):
    fs.create("/old", b"payload")
    fs.mkdir("/dir")
    fs.rename("/old", "/dir/new")
    assert not fs.exists("/old")
    assert fs.read("/dir/new") == b"payload"


def test_rename_onto_existing_fails(fs):
    fs.create("/a", b"1")
    fs.create("/b", b"2")
    with pytest.raises(FsError):
        fs.rename("/a", "/b")


def test_lookup_errors(fs):
    with pytest.raises(FsError):
        fs.lookup("/missing")
    with pytest.raises(FsError):
        fs.lookup("relative/path")
    fs.create("/f", b"")
    with pytest.raises(FsError):
        fs.lookup("/f/child")


def test_stat(fs):
    fs.create("/f", b"abc")
    number, kind, size = fs.stat("/f")
    assert kind == "file" and size == 3 and number > 0


def test_generation_bumps_on_namespace_changes(fs):
    g0 = fs.generation
    fs.create("/f", b"x")
    g1 = fs.generation
    assert g1 > g0
    fs.rename("/f", "/g")
    assert fs.generation > g1
    before_append = fs.generation
    fs.append("/g", b"more")  # content change, not namespace change
    assert fs.generation == before_append


def test_walk_lists_everything(fs):
    fs.mkdir("/a")
    fs.create("/a/f", b"1")
    fs.create("/top", b"2")
    paths = {path for path, _ in fs.walk()}
    assert paths == {"/", "/a", "/a/f", "/top"}


def test_file_handle_read_seek_close(fs):
    fs.create("/f", b"0123456789")
    with fs.open("/f") as handle:
        assert handle.read(4) == b"0123"
        assert handle.read(2) == b"45"
        handle.seek(8)
        assert handle.read(10) == b"89"
    with pytest.raises(FsError):
        handle.read(1)
    with pytest.raises(FsError):
        handle.seek(0)


def test_open_directory_fails(fs):
    fs.mkdir("/d")
    with pytest.raises(FsError):
        fs.open("/d")


def test_truncate(fs):
    inode = fs.create("/f", b"data")
    inode.truncate()
    assert fs.size("/f") == 0
    assert fs.read("/f") == b""


@given(writes=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=8))
def test_appends_concatenate_in_order(writes):
    fs = FileSystem()
    fs.create("/f")
    for chunk in writes:
        fs.append("/f", chunk)
    assert fs.read("/f") == b"".join(writes)


@given(names=st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1,
    max_size=10, unique=True))
def test_created_files_always_listed(names):
    fs = FileSystem()
    for name in names:
        fs.create(f"/{name}", b"")
    assert fs.listdir("/") == sorted(names)
