"""Interprocedural taint and flow-blocking passes over seeded fixtures."""

import textwrap

from repro.analysis.runner import analyze_paths


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return pkg


def _findings(tmp_path, files, rule=None):
    pkg = _write_pkg(tmp_path, files)
    result = analyze_paths([str(pkg)])
    found = result.violations
    if rule is not None:
        found = [v for v in found if v.rule == rule]
    return found


# --------------------------------------------------------------- acceptance
def test_multi_hop_chain_across_two_modules(tmp_path):
    """The seeded fixture: process -> helper -> helper -> time.time,
    spanning two modules, reported with file:line at every hop."""
    findings = _findings(tmp_path, {
        "procs.py": """\
            from pkg.helpers import jitter

            def reader(sim):
                delay = jitter()
                yield sim.timeout(delay)
            """,
        "helpers.py": """\
            import time

            def jitter():
                return scaled()

            def scaled():
                return time.time() % 1.0
            """,
    }, rule="taint-wallclock")
    assert len(findings) == 1
    finding = findings[0]
    symbols = [symbol for symbol, _, _ in finding.chain]
    assert symbols == ["pkg.procs.reader", "pkg.helpers.jitter",
                       "pkg.helpers.scaled", "time.time"]
    # Every hop carries its call-site file:line.
    paths = [path for _, path, _ in finding.chain]
    assert paths[0].endswith("procs.py")
    assert all(p.endswith("helpers.py") for p in paths[1:])
    lines = [line for _, _, line in finding.chain]
    assert lines == [4, 4, 7, 7]
    # The rendered finding shows the chain, one hop per line.
    rendered = finding.render()
    assert "pkg.helpers.jitter" in rendered
    assert "helpers.py:7" in rendered
    assert ("pkg.procs.reader -> pkg.helpers.jitter -> pkg.helpers.scaled"
            " -> time.time") in finding.message


# ------------------------------------------------------------ taint sources
def test_entropy_source_via_os_urandom(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import os

            def token():
                return os.urandom(8)

            def proc(sim):
                t = token()
                yield sim.timeout(1)
            """,
    }, rule="taint-entropy")
    assert len(findings) == 1
    assert "os.urandom" in findings[0].message


def test_env_read_outside_repro_toggles_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import os

            def mode():
                return os.environ.get("HADOOP_MODE")

            def proc(sim):
                m = mode()
                yield sim.timeout(1)
            """,
    }, rule="taint-env")
    assert len(findings) == 1


def test_repro_toggle_env_read_allowed(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import os

            def mode():
                return os.environ.get("REPRO_SANITIZE")

            def proc(sim):
                m = mode()
                yield sim.timeout(1)
            """,
    }, rule="taint-env")
    assert findings == []


def test_unordered_set_iteration_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            def visit(items):
                for item in set(items):
                    pass

            def proc(sim):
                visit([1, 2])
                yield sim.timeout(1)
            """,
    }, rule="taint-unordered")
    assert len(findings) == 1


def test_global_random_taint(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import random

            def draw():
                return random.random()

            def proc(sim):
                d = draw()
                yield sim.timeout(1)
            """,
    }, rule="taint-random")
    assert len(findings) == 1


def test_seeded_random_not_a_source(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import random

            def stream(seed):
                return random.Random(seed)

            def proc(sim):
                s = stream(7)
                yield sim.timeout(1)
            """,
    }, rule="taint-random")
    assert findings == []


def test_unreachable_impurity_not_reported(tmp_path):
    # A helper nobody sim-reachable calls produces no taint finding
    # (the per-module no-wallclock rule still covers the direct call).
    findings = _findings(tmp_path, {
        "m.py": """\
            import time

            def orphan():
                return time.time()

            def proc(sim):
                yield sim.timeout(1)
            """,
    }, rule="taint-wallclock")
    assert findings == []


# ----------------------------------------------------------- flow-blocking
def test_flow_blocking_through_helper(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import time

            def settle():
                time.sleep(0.1)

            def poller(sim):
                settle()
                yield sim.timeout(1)
            """,
    }, rule="flow-blocking")
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_sim_timeout_is_not_blocking(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            def proc(sim):
                yield sim.timeout(5)
            """,
    }, rule="flow-blocking")
    assert findings == []


def test_subprocess_reachable_from_generator_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import subprocess

            def shell(cmd):
                return subprocess.run(cmd)

            def proc(sim):
                shell(["ls"])
                yield sim.timeout(1)
            """,
    }, rule="flow-blocking")
    assert len(findings) == 1


# -------------------------------------------------------------- suppression
def test_pragma_at_source_hop_suppresses_chain(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import time

            def helper():
                return time.time()  # simlint: disable=taint-wallclock

            def proc(sim):
                h = helper()
                yield sim.timeout(1)
            """,
    }, rule="taint-wallclock")
    assert findings == []


def test_sibling_no_wallclock_pragma_also_suppresses_taint(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import time

            def helper():
                return time.time()  # simlint: disable=no-wallclock

            def proc(sim):
                h = helper()
                yield sim.timeout(1)
            """,
    }, rule="taint-wallclock")
    assert findings == []


def test_pragma_at_entry_call_site_suppresses_chain(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            import time

            def helper():
                return time.time()

            def proc(sim):
                h = helper()  # simlint: disable=taint-wallclock
                yield sim.timeout(1)
            """,
    }, rule="taint-wallclock")
    assert findings == []


def test_file_wide_disable_suppresses_chain(tmp_path):
    findings = _findings(tmp_path, {
        "m.py": """\
            # simlint: disable-file=taint-wallclock
            import time

            def helper():
                return time.time()

            def proc(sim):
                h = helper()
                yield sim.timeout(1)
            """,
    }, rule="taint-wallclock")
    assert findings == []
