"""no-direct-heapq: priority queues outside sim/ bypass the kernel."""

import textwrap

from repro.analysis.rules.heap_use import NoDirectHeapqRule
from repro.analysis.runner import lint_source


def lint(snippet, path="src/repro/hostmodel/widget.py", rule=None):
    return lint_source(textwrap.dedent(snippet),
                       [rule or NoDirectHeapqRule()], path=path)


def test_plain_import_flagged():
    violations = lint("""
        import heapq

        def order(items):
            heapq.heapify(items)
        """)
    # The import is the chokepoint: one finding per import, not per call,
    # so one pragma can annotate one audited use.
    assert [v.rule for v in violations] == ["no-direct-heapq"]
    assert violations[0].line == 2
    assert "import of heapq" in violations[0].message


def test_from_import_flagged_with_names():
    violations = lint("""
        from heapq import heappush, heappop
        """)
    assert len(violations) == 1
    assert "heappush, heappop" in violations[0].message
    assert "Simulator" in violations[0].message


def test_aliased_import_flagged():
    violations = lint("""
        import heapq as hq

        def push(heap, item):
            hq.heappush(heap, item)
        """)
    assert len(violations) == 1
    assert violations[0].line == 2


def test_sim_package_exempt():
    snippet = """
        import heapq

        def drain(heap):
            return heapq.heappop(heap)
        """
    assert lint(snippet, path="src/repro/sim/kernel.py") == []
    assert lint(snippet, path="sim/kernel.py") == []
    # The same file outside sim/ is flagged.
    assert lint(snippet, path="src/repro/net/widget.py")


def test_pragma_escape():
    violations = lint("""
        from heapq import heappush  # simlint: disable=no-direct-heapq
        """)
    assert violations == []


def test_unrelated_imports_pass():
    violations = lint("""
        import bisect
        from collections import deque

        def f(q):
            return q.popleft()
        """)
    assert violations == []
