"""yield-discipline: processes yield events, never bare values."""

import textwrap

from repro.analysis.rules.yields import YieldDisciplineRule
from repro.analysis.runner import lint_source


def lint(snippet):
    return lint_source(textwrap.dedent(snippet), [YieldDisciplineRule()])


def test_bare_yield_flagged():
    violations = lint("""
        def proc(sim):
            yield
        """)
    assert len(violations) == 1
    assert "bare 'yield'" in violations[0].message


def test_literal_yields_flagged():
    violations = lint("""
        def proc(sim):
            yield 5
            yield "done"
            yield None
        """)
    assert [v.line for v in violations] == [3, 4, 5]
    assert all(v.rule == "yield-discipline" for v in violations)


def test_container_and_comparison_yields_flagged():
    violations = lint("""
        def proc(sim, a, b):
            yield (a, b)
            yield [a]
            yield a == b
            yield a and b
        """)
    assert len(violations) == 4


def test_event_yields_pass():
    violations = lint("""
        def proc(sim, resource):
            yield sim.timeout(1.0)
            with resource.request() as req:
                yield req
            event = sim.event()
            yield event | sim.timeout(5)
            yield from other(sim)
        """)
    assert violations == []


def test_nested_function_attributed_to_inner():
    violations = lint("""
        def outer(sim):
            def inner():
                yield 1
            yield sim.timeout(1)
        """)
    assert len(violations) == 1
    assert "'inner'" in violations[0].message


def test_non_generator_functions_ignored():
    violations = lint("""
        def plain():
            return [1, 2, 3]
        """)
    assert violations == []
