"""Content-hash incremental caching: zero re-parses on unchanged trees."""

import textwrap

from repro.analysis.cache import AnalysisCache
from repro.analysis.runner import analyze_paths


def _write_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(textwrap.dedent("""\
        from pkg.b import helper

        def proc(sim):
            h = helper()
            yield sim.timeout(h)
        """))
    (pkg / "b.py").write_text("def helper():\n    return 1\n")
    return pkg


def test_second_run_does_zero_reparses(tmp_path):
    """Acceptance: an unchanged tree is analyzed entirely from the cache."""
    pkg = _write_tree(tmp_path)
    cache_file = str(tmp_path / "cache.json")

    cache = AnalysisCache(cache_file, "cfg")
    first = analyze_paths([str(pkg)], cache=cache)
    cache.save()
    assert first.stats.parsed == 3
    assert first.stats.cache_hits == 0

    cache = AnalysisCache(cache_file, "cfg")
    second = analyze_paths([str(pkg)], cache=cache)
    assert second.stats.parsed == 0
    assert second.stats.cache_hits == 3
    # The cached run produces identical findings and graph shape.
    assert second.violations == first.violations
    assert second.stats.functions == first.stats.functions
    assert second.stats.call_edges == first.stats.call_edges


def test_touched_file_is_reparsed_alone(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_file = str(tmp_path / "cache.json")
    cache = AnalysisCache(cache_file, "cfg")
    analyze_paths([str(pkg)], cache=cache)
    cache.save()

    (pkg / "b.py").write_text("def helper():\n    return 2\n")
    cache = AnalysisCache(cache_file, "cfg")
    result = analyze_paths([str(pkg)], cache=cache)
    assert result.stats.parsed == 1
    assert result.stats.cache_hits == 2


def test_config_change_invalidates_cache(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_file = str(tmp_path / "cache.json")
    cache = AnalysisCache(cache_file, "cfg-a")
    analyze_paths([str(pkg)], cache=cache)
    cache.save()

    cache = AnalysisCache(cache_file, "cfg-b")
    result = analyze_paths([str(pkg)], cache=cache)
    assert result.stats.parsed == 3


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json")
    cache = AnalysisCache(str(cache_file), "cfg")
    result = analyze_paths([str(pkg)], cache=cache)
    assert result.stats.parsed == 3
    cache.save()  # and saving over the corrupt file works
    cache = AnalysisCache(str(cache_file), "cfg")
    assert analyze_paths([str(pkg)], cache=cache).stats.parsed == 0


def test_removed_file_pruned_from_cache(tmp_path):
    pkg = _write_tree(tmp_path)
    cache_file = str(tmp_path / "cache.json")
    cache = AnalysisCache(cache_file, "cfg")
    analyze_paths([str(pkg)], cache=cache)
    cache.save()
    assert len(cache) == 3

    (pkg / "b.py").unlink()
    cache = AnalysisCache(cache_file, "cfg")
    analyze_paths([str(pkg)], cache=cache)
    assert len(cache) == 2


def test_whole_program_findings_survive_caching(tmp_path):
    """Taint chains must be identical when every module loads from cache."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "m.py").write_text(textwrap.dedent("""\
        import time

        def helper():
            return time.time()

        def proc(sim):
            h = helper()
            yield sim.timeout(1)
        """))
    cache_file = str(tmp_path / "cache.json")
    cache = AnalysisCache(cache_file, "cfg")
    first = analyze_paths([str(pkg)], cache=cache)
    cache.save()
    cache = AnalysisCache(cache_file, "cfg")
    second = analyze_paths([str(pkg)], cache=cache)
    assert second.stats.parsed == 0
    taint = [v for v in second.violations if v.rule == "taint-wallclock"]
    assert len(taint) == 1
    assert second.violations == first.violations
