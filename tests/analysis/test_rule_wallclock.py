"""no-wallclock: bans host-clock reads however the module was imported."""

import textwrap

from repro.analysis.rules.wallclock import NoWallclockRule
from repro.analysis.runner import lint_source


def lint(snippet, rule=None):
    return lint_source(textwrap.dedent(snippet), [rule or NoWallclockRule()])


def test_time_time_flagged():
    violations = lint("""
        import time

        def measure():
            return time.time()
        """)
    assert len(violations) == 1
    assert violations[0].rule == "no-wallclock"
    assert violations[0].line == 5
    assert "time.time" in violations[0].message


def test_time_sleep_and_perf_counter_flagged():
    violations = lint("""
        import time

        def nap():
            time.sleep(1)
            return time.perf_counter()
        """)
    assert [v.line for v in violations] == [5, 6]


def test_from_import_and_alias_resolved():
    violations = lint("""
        import time as t
        from time import monotonic

        def f():
            return t.time() + monotonic()
        """)
    assert len(violations) == 2


def test_datetime_now_flagged():
    violations = lint("""
        from datetime import datetime

        def stamp():
            return datetime.now()
        """)
    assert len(violations) == 1
    assert "datetime.datetime.now" in violations[0].message


def test_sim_time_passes():
    violations = lint("""
        def proc(sim):
            start = sim.now
            yield sim.timeout(1.5)
            return sim.now - start
        """)
    assert violations == []


def test_local_name_called_time_not_flagged():
    # A locally-defined `time` shadows nothing we track: it was never
    # imported, so the rule must not resolve it to the stdlib module.
    violations = lint("""
        def f():
            time = make_clock()
            return time.time()
        """)
    assert violations == []


def test_allowlist_exempts_matching_paths():
    snippet = "import time\nx = time.time()\n"
    rule = NoWallclockRule(allow=("*/benchmarks/*",))
    assert lint_source(snippet, [rule], path="proj/benchmarks/run.py") == []
    assert len(lint_source(snippet, [rule], path="proj/src/run.py")) == 1
