"""The project-wide import/call graph: extraction, linking, entries."""

import ast
import os
import textwrap

from repro.analysis.callgraph import (CallGraph, ModuleSummary,
                                      extract_module, module_name_for)


def _summary(source, path="mod.py", modname=None):
    tree = ast.parse(textwrap.dedent(source))
    return extract_module(path, textwrap.dedent(source), tree,
                          modname=modname)


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return pkg


def _graph_for(tmp_path, files):
    pkg = _write_pkg(tmp_path, files)
    modules = []
    for name in sorted(files) + ["__init__.py"]:
        path = str(pkg / name)
        with open(path) as handle:
            source = handle.read()
        modules.append(extract_module(path, source, ast.parse(source)))
    return CallGraph(modules)


# ------------------------------------------------------------- module names
def test_module_name_walks_packages(tmp_path):
    pkg = tmp_path / "top" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "top" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(str(pkg / "mod.py")) == "top.sub.mod"
    assert module_name_for(str(pkg / "__init__.py")) == "top.sub"


def test_module_name_outside_packages(tmp_path):
    path = tmp_path / "script.py"
    path.write_text("")
    assert module_name_for(str(path)) == "script"


# -------------------------------------------------------------- extraction
def test_extract_records_functions_methods_and_generators():
    summary = _summary("""\
        class Worker:
            def run(self):
                yield self.step()
            def step(self):
                return 1
        def helper():
            return 2
        """, modname="m")
    assert set(summary.functions) == {"m.Worker.run", "m.Worker.step",
                                      "m.helper"}
    assert summary.functions["m.Worker.run"].is_generator
    assert not summary.functions["m.helper"].is_generator
    assert summary.classes["m.Worker"].methods == {
        "run": "m.Worker.run", "step": "m.Worker.step"}


def test_nested_def_yield_does_not_make_parent_generator():
    summary = _summary("""\
        def outer():
            def inner():
                yield 1
            return inner
        """, modname="m")
    assert not summary.functions["m.outer"].is_generator


def test_relative_import_resolves_against_package():
    summary = _summary("from .helpers import jitter\n",
                       modname="pkg.procs")
    assert summary.exports["jitter"] == "pkg.helpers.jitter"


def test_self_calls_and_spawns_recorded():
    summary = _summary("""\
        class Daemon:
            def start(self, sim):
                sim.process(self._serve())
            def _serve(self):
                yield None
        """, modname="m")
    start = summary.functions["m.Daemon.start"]
    assert ("self._serve", 3) in start.calls
    assert start.spawns == [("self._serve", 3)]


# ----------------------------------------------------------------- linking
def test_cross_module_edges_and_reexport_following(tmp_path):
    graph = _graph_for(tmp_path, {
        "a.py": """\
            from pkg.b import helper
            def caller():
                return helper()
            """,
        "b.py": """\
            def helper():
                return inner()
            def inner():
                return 1
            """,
    })
    edges = {(e.caller, e.callee) for c in graph.edges.values() for e in c}
    assert ("pkg.a.caller", "pkg.b.helper") in edges
    assert ("pkg.b.helper", "pkg.b.inner") in edges


def test_reexport_through_package_init(tmp_path):
    pkg = _write_pkg(tmp_path, {
        "impl.py": "def deep():\n    return 1\n",
    })
    (pkg / "__init__.py").write_text("from pkg.impl import deep\n")
    (pkg / "user.py").write_text(
        "import pkg\ndef caller():\n    return pkg.deep()\n")
    modules = []
    for name in ("__init__.py", "impl.py", "user.py"):
        path = str(pkg / name)
        source = open(path).read()
        modules.append(extract_module(path, source, ast.parse(source)))
    graph = CallGraph(modules)
    edges = {(e.caller, e.callee) for c in graph.edges.values() for e in c}
    assert ("pkg.user.caller", "pkg.impl.deep") in edges


def test_method_resolution_through_base_class(tmp_path):
    graph = _graph_for(tmp_path, {
        "base.py": """\
            class Base:
                def helper(self):
                    return 1
            """,
        "child.py": """\
            from pkg.base import Base
            class Child(Base):
                def run(self):
                    return self.helper()
            """,
    })
    edges = {(e.caller, e.callee) for c in graph.edges.values() for e in c}
    assert ("pkg.child.Child.run", "pkg.base.Base.helper") in edges


def test_entry_points_are_generators_and_spawned_targets(tmp_path):
    graph = _graph_for(tmp_path, {
        "m.py": """\
            def proc(sim):
                yield sim.timeout(1)
            def plain(sim):
                return 1
            def boot(sim):
                sim.process(plain(sim))
            """,
    })
    entries = graph.entry_points()
    assert "pkg.m.proc" in entries      # generator
    assert "pkg.m.plain" in entries     # spawned
    assert "pkg.m.boot" not in entries


def test_import_graph_restricted_to_analyzed_modules(tmp_path):
    graph = _graph_for(tmp_path, {
        "a.py": "import os\nfrom pkg import b\n",
        "b.py": "",
    })
    assert "pkg.b" in graph.import_graph["pkg.a"]
    assert "os" not in graph.import_graph["pkg.a"]


def test_unresolvable_attribute_calls_are_dropped(tmp_path):
    graph = _graph_for(tmp_path, {
        "m.py": """\
            def run(obj):
                return obj.execute()
            """,
    })
    assert graph.edges.get("pkg.m.run") is None
