"""Pragma suppression, the rule registry, and the CLI's exit codes."""

import textwrap

import pytest

from repro.analysis.cli import main
from repro.analysis.core import create_rules, registered_rules
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.runner import lint_paths, lint_source
import repro.analysis.rules  # noqa: F401 - registers the built-in rules
from repro.analysis.rules import default_rules

ONE_OF_EACH = textwrap.dedent("""\
    import random
    import time

    def wall():
        return time.time()

    def draw():
        return random.random()

    def bad_yield(sim):
        yield 42

    def leak(sim, res):
        grant = yield res.request()
        yield sim.timeout(1)
    """)


# ------------------------------------------------------------------ pragmas
def test_line_pragma_suppresses_named_rule():
    source = "import time\nx = time.time()  # simlint: disable=no-wallclock\n"
    assert lint_source(source, default_rules()) == []


def test_line_pragma_only_covers_its_line():
    source = ("import time\n"
              "x = time.time()  # simlint: disable=no-wallclock\n"
              "y = time.time()\n")
    violations = lint_source(source, default_rules())
    assert [v.line for v in violations] == [3]


def test_pragma_with_wrong_rule_does_not_suppress():
    source = "import time\nx = time.time()  # simlint: disable=resource-leak\n"
    assert len(lint_source(source, default_rules())) == 1


def test_disable_all_pragma():
    source = "import time\nx = time.time()  # simlint: disable=all\n"
    assert lint_source(source, default_rules()) == []


def test_file_wide_pragma():
    source = ("# simlint: disable-file=no-wallclock\n"
              "import time\n"
              "x = time.time()\n"
              "y = time.time()\n")
    assert lint_source(source, default_rules()) == []


def test_pragma_index_parses_comma_lists():
    index = PragmaIndex("x = 1  # simlint: disable=a, b\n")
    assert index.is_disabled(1, "a")
    assert index.is_disabled(1, "b")
    assert not index.is_disabled(1, "c")
    assert not index.is_disabled(2, "a")


# ----------------------------------------------------------------- registry
def test_all_four_rules_registered():
    assert set(registered_rules()) >= {"no-wallclock", "no-global-random",
                                       "yield-discipline", "resource-leak"}


def test_create_rules_select_and_disable():
    assert [r.name for r in create_rules(select=["no-wallclock"])] == \
        ["no-wallclock"]
    names = [r.name for r in create_rules(disable=["no-wallclock"])]
    assert "no-wallclock" not in names and names
    with pytest.raises(KeyError):
        create_rules(select=["no-such-rule"])


# ---------------------------------------------------------------- fixtures
def test_one_violation_of_each_rule_found():
    violations = lint_source(ONE_OF_EACH, default_rules())
    assert sorted({v.rule for v in violations}) == [
        "no-global-random", "no-wallclock", "resource-leak",
        "yield-discipline"]


def test_syntax_error_reported_as_violation():
    violations = lint_source("def broken(:\n", default_rules())
    assert len(violations) == 1
    assert violations[0].rule == "syntax-error"


# --------------------------------------------------------------------- CLI
def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text(
        "def proc(sim):\n    yield sim.timeout(1)\n")
    assert main([str(tmp_path)]) == 0


def test_cli_exit_one_with_file_line_and_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(ONE_OF_EACH)
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    for rule in ("no-wallclock", "no-global-random", "yield-discipline",
                 "resource-leak"):
        assert rule in out
    assert f"{bad}:5:" in out  # file:line:col prefix


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["definitely/not/a/path.py"]) == 2


def test_cli_exit_two_on_unknown_rule(tmp_path, capsys):
    (tmp_path / "a.py").write_text("x = 1\n")
    assert main([str(tmp_path), "--select", "bogus"]) == 2


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(ONE_OF_EACH)
    assert main([str(bad), "--select", "no-wallclock"]) == 1
    out = capsys.readouterr().out
    assert "no-wallclock" in out
    assert "resource-leak" not in out


def test_cli_disable_can_silence_everything(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n")
    assert main([str(bad), "--disable", "no-wallclock"]) == 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "no-wallclock" in out and "resource-leak" in out


def test_cli_wallclock_allow_glob(tmp_path):
    bench = tmp_path / "bench"
    bench.mkdir()
    (bench / "timer.py").write_text("import time\nx = time.time()\n")
    assert main([str(bench), "--wallclock-allow", "*bench*"]) == 0
    assert main([str(bench)]) == 1


def test_lint_paths_discovers_nested_files(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("import time\nx = time.time()\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    violations = lint_paths([str(tmp_path)], default_rules())
    assert len(violations) == 1
