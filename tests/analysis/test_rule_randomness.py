"""no-global-random: module-global draws and unseeded generators."""

import textwrap

from repro.analysis.rules.randomness import NoGlobalRandomRule
from repro.analysis.runner import lint_source


def lint(snippet):
    return lint_source(textwrap.dedent(snippet), [NoGlobalRandomRule()])


def test_module_level_draw_flagged():
    violations = lint("""
        import random

        def pick(items):
            return items[random.randint(0, len(items) - 1)]
        """)
    assert len(violations) == 1
    assert violations[0].rule == "no-global-random"
    assert "random.randint" in violations[0].message


def test_from_import_draw_flagged():
    violations = lint("""
        from random import random as rnd

        def f():
            return rnd()
        """)
    assert len(violations) == 1


def test_unseeded_random_flagged_seeded_allowed():
    violations = lint("""
        import random

        bad = random.Random()
        good = random.Random(42)
        also_good = random.Random(x=1)
        """)
    assert len(violations) == 1
    assert violations[0].line == 4
    assert "unseeded" in violations[0].message


def test_system_random_flagged():
    violations = lint("""
        import random

        gen = random.SystemRandom()
        """)
    assert len(violations) == 1
    assert "SystemRandom" in violations[0].message


def test_instance_methods_pass():
    violations = lint("""
        import random

        def f(rng: random.Random):
            return rng.random() + rng.randint(1, 6)
        """)
    assert violations == []


def test_random_streams_idiom_passes():
    violations = lint("""
        from repro.sim.rng import RandomStreams

        def f():
            streams = RandomStreams(seed=7)
            return streams.stream("sched").random()
        """)
    assert violations == []
