"""Pragma edge cases: multi-rule lines, file disables, continuations,
unknown-rule warnings."""

import ast
import textwrap

from repro.analysis.core import create_rules
from repro.analysis.pragmas import PragmaIndex, unknown_pragma_mentions
from repro.analysis.runner import known_rule_names, lint_source


def _index(source):
    source = textwrap.dedent(source)
    return PragmaIndex(source, tree=ast.parse(source))


def _lint(source):
    return lint_source(textwrap.dedent(source), create_rules(), path="m.py")


# ---------------------------------------------------------- multi-rule lines
def test_multi_rule_disable_on_one_line():
    index = _index("""\
        import time
        t = time.time()  # simlint: disable=no-wallclock,no-global-random
        """)
    assert index.is_disabled(2, "no-wallclock")
    assert index.is_disabled(2, "no-global-random")
    assert not index.is_disabled(2, "no-bare-sleep")
    assert not index.is_disabled(1, "no-wallclock")


def test_multi_rule_disable_tolerates_spaces():
    index = _index("x = 1  # simlint: disable=rule-a, rule-b ,rule-c\n")
    for rule in ("rule-a", "rule-b", "rule-c"):
        assert index.is_disabled(1, rule)


# ---------------------------------------------------------- file-level disable
def test_file_level_disable_covers_every_line():
    index = _index("""\
        # simlint: disable-file=no-wallclock
        import time

        def f():
            return time.time()
        """)
    assert index.file_disables("no-wallclock")
    for line in (1, 2, 5):
        assert index.is_disabled(line, "no-wallclock")
    assert not index.is_disabled(5, "no-bare-sleep")


def test_file_level_disable_silences_lint_findings():
    violations = _lint("""\
        # simlint: disable-file=no-wallclock
        import time

        def f():
            return time.time()
        """)
    assert [v for v in violations if v.rule == "no-wallclock"] == []


# ------------------------------------------------------------- continuations
def test_pragma_on_continuation_line_covers_whole_statement():
    source = """\
        import time
        t = (time.time()
             + 1)  # simlint: disable=no-wallclock
        """
    index = _index(source)
    # The call is on line 2; the pragma sits on line 3 of the same
    # statement and must still suppress it.
    assert index.is_disabled(2, "no-wallclock")
    assert index.is_disabled(3, "no-wallclock")
    violations = _lint(source)
    assert [v for v in violations if v.rule == "no-wallclock"] == []


def test_continuation_expansion_stops_at_statement_boundary():
    index = _index("""\
        import time
        t = (time.time()
             + 1)  # simlint: disable=no-wallclock
        u = time.time()
        """)
    assert index.is_disabled(2, "no-wallclock")
    assert not index.is_disabled(4, "no-wallclock")


def test_pragma_inside_compound_block_does_not_silence_block():
    # A pragma on a simple statement inside an `if` suppresses only that
    # statement, never the enclosing block.
    index = _index("""\
        import time
        if True:
            a = time.time()  # simlint: disable=no-wallclock
            b = time.time()
        """)
    assert index.is_disabled(3, "no-wallclock")
    assert not index.is_disabled(4, "no-wallclock")


def test_pragma_without_tree_falls_back_to_single_line():
    source = textwrap.dedent("""\
        t = (1
             + 2)  # simlint: disable=rule-x
        """)
    index = PragmaIndex(source)  # no AST: continuation expansion off
    assert index.is_disabled(2, "rule-x")
    assert not index.is_disabled(1, "rule-x")


# ------------------------------------------------------------- unknown rules
def test_unknown_rule_pragma_reported():
    index = _index("x = 1  # simlint: disable=no-such-rule\n")
    unknown = unknown_pragma_mentions(index, {"no-wallclock"})
    assert unknown == [(1, "no-such-rule")]


def test_unknown_pragma_surfaces_as_warning_finding():
    violations = _lint("x = 1  # simlint: disable=definitely-not-a-rule\n")
    warnings = [v for v in violations if v.rule == "unknown-pragma"]
    assert len(warnings) == 1
    assert warnings[0].line == 1
    assert "definitely-not-a-rule" in warnings[0].message


def test_known_rules_do_not_warn():
    known = known_rule_names()
    assert "no-wallclock" in known
    assert "taint-wallclock" in known  # whole-program family included
    violations = _lint("x = 1  # simlint: disable=no-wallclock\n")
    assert [v for v in violations if v.rule == "unknown-pragma"] == []


def test_unknown_pragma_in_file_disable_reported():
    index = _index("# simlint: disable-file=bogus-rule\n")
    unknown = unknown_pragma_mentions(index, {"no-wallclock"})
    assert (1, "bogus-rule") in unknown


def test_pragma_round_trips_through_summary_serialization():
    index = _index("""\
        import time
        t = (time.time()
             + 1)  # simlint: disable=no-wallclock
        """)
    clone = PragmaIndex.from_dict(index.to_dict())
    assert clone.is_disabled(2, "no-wallclock")
    assert clone.file_disables("no-wallclock") == index.file_disables(
        "no-wallclock")
    assert clone.mentions == index.mentions
