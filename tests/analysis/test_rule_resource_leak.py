"""resource-leak: grants must be released on all paths or used via with."""

import textwrap

from repro.analysis.rules.resource_leak import ResourceLeakRule
from repro.analysis.runner import lint_source


def lint(snippet):
    return lint_source(textwrap.dedent(snippet), [ResourceLeakRule()])


def test_never_released_flagged():
    violations = lint("""
        def proc(sim, res):
            grant = yield res.request()
            yield sim.timeout(1)
        """)
    assert len(violations) == 1
    assert violations[0].rule == "resource-leak"
    assert "never released" in violations[0].message


def test_release_outside_finally_flagged():
    violations = lint("""
        def proc(sim, res):
            grant = yield res.request()
            yield sim.timeout(1)
            res.release(grant)
        """)
    assert len(violations) == 1
    assert "not on all paths" in violations[0].message


def test_release_in_finally_passes():
    violations = lint("""
        def proc(sim, res):
            grant = yield res.request()
            try:
                yield sim.timeout(1)
            finally:
                res.release(grant)
        """)
    assert violations == []


def test_with_statement_passes():
    violations = lint("""
        def proc(sim, res, lock):
            with res.request() as grant:
                yield grant
                yield sim.timeout(1)
            with lock.acquire() as token:
                yield token
        """)
    assert violations == []


def test_discarded_grant_flagged():
    violations = lint("""
        def proc(sim, res):
            yield res.request()
            yield sim.timeout(1)
        """)
    assert len(violations) == 1
    assert "discarded" in violations[0].message


def test_lock_acquire_tracked_like_request():
    violations = lint("""
        def proc(sim, lock):
            token = yield lock.acquire()
            yield sim.timeout(1)
        """)
    assert len(violations) == 1


def test_escaping_grant_skipped():
    # Cross-function pairing (VReadChannel.acquire/release style) cannot be
    # decided locally: returning the grant hands responsibility upward.
    violations = lint("""
        def begin(self):
            token = yield self._lock.acquire()
            return token

        def make(res):
            return res.request()
        """)
    assert violations == []


def test_grant_passed_to_helper_skipped():
    violations = lint("""
        def proc(sim, res, registry):
            grant = yield res.request()
            registry.adopt(grant)
        """)
    assert violations == []


def test_two_arg_request_calls_ignored():
    # BaseTransport.request(peer, message) is an RPC, not a slot request.
    violations = lint("""
        def proc(self, peer, message):
            response = yield from self.transport.request(peer, message)
            return response
        """)
    assert violations == []


def test_cancel_in_finally_counts_as_release():
    violations = lint("""
        def proc(sim, res):
            grant = yield res.request()
            try:
                yield sim.timeout(1)
            finally:
                res.cancel(grant)
        """)
    assert violations == []
