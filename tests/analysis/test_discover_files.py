"""File discovery: overlapping inputs, symlink cycles, deterministic order."""

import os

import pytest

from repro.analysis.runner import discover_files


def _tree(tmp_path):
    src = tmp_path / "src"
    pkg = src / "pkg"
    pkg.mkdir(parents=True)
    (src / "top.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    (pkg / "notes.txt").write_text("")
    return src, pkg


def test_overlapping_paths_yield_no_duplicates(tmp_path):
    src, pkg = _tree(tmp_path)
    files = discover_files([str(src), str(pkg)])
    assert len(files) == len(set(files))
    assert sorted(os.path.basename(f) for f in files) == [
        "__init__.py", "mod.py", "top.py"]


def test_explicit_file_plus_containing_dir_deduped(tmp_path):
    src, pkg = _tree(tmp_path)
    files = discover_files([str(pkg / "mod.py"), str(src)])
    assert len(files) == len(set(files))
    assert sum(f.endswith("mod.py") for f in files) == 1


def test_output_is_sorted(tmp_path):
    src, pkg = _tree(tmp_path)
    files = discover_files([str(pkg), str(src)])
    assert files == sorted(files)


def test_symlink_cycle_terminates(tmp_path):
    src, pkg = _tree(tmp_path)
    try:
        os.symlink(str(src), str(pkg / "loop"))
    except OSError:  # pragma: no cover - filesystem without symlinks
        return
    files = discover_files([str(src)])
    assert len(files) == len(set(files))
    assert sorted(os.path.basename(f) for f in files) == [
        "__init__.py", "mod.py", "top.py"]


def test_symlinked_sibling_dir_followed_once(tmp_path):
    src, pkg = _tree(tmp_path)
    other = tmp_path / "other"
    other.mkdir()
    (other / "extra.py").write_text("")
    try:
        os.symlink(str(other), str(src / "vendored"))
    except OSError:  # pragma: no cover - filesystem without symlinks
        return
    files = discover_files([str(src)])
    assert sum(f.endswith("extra.py") for f in files) == 1


def test_pycache_skipped(tmp_path):
    src, pkg = _tree(tmp_path)
    cache = pkg / "__pycache__"
    cache.mkdir()
    (cache / "mod.cpython-311.py").write_text("")
    files = discover_files([str(src)])
    assert not any("__pycache__" in f for f in files)


def test_explicit_file_taken_as_given(tmp_path):
    # The .py filter applies to directory walks; a file named explicitly
    # is linted even without the extension.
    src, pkg = _tree(tmp_path)
    assert discover_files([str(pkg / "notes.txt")]) == [str(pkg / "notes.txt")]


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_files([str(tmp_path / "nope.py")])
