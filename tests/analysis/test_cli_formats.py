"""CLI output formats, exit codes, and the baseline workflow."""

import json
import textwrap

from repro.analysis.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

CLEAN = """\
    def proc(sim):
        yield sim.timeout(1)
    """

DIRTY = """\
    import time

    def helper():
        return time.time()

    def proc(sim):
        h = helper()
        yield sim.timeout(1)
    """


def _write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


# ---------------------------------------------------------------- exit codes
def test_exit_zero_on_clean_tree(tmp_path, capsys):
    assert main([_write(tmp_path, CLEAN), "-q"]) == EXIT_CLEAN


def test_exit_one_on_findings(tmp_path, capsys):
    assert main([_write(tmp_path, DIRTY), "-q"]) == EXIT_FINDINGS


def test_exit_two_on_no_paths(capsys):
    assert main([]) == EXIT_ERROR
    assert "no paths" in capsys.readouterr().err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "ghost.py"), "-q"]) == EXIT_ERROR
    assert "no such file" in capsys.readouterr().err


def test_exit_two_on_unknown_rule(tmp_path, capsys):
    path = _write(tmp_path, CLEAN)
    assert main([path, "--select", "no-such-rule", "-q"]) == EXIT_ERROR


def test_exit_two_on_update_baseline_without_baseline(tmp_path, capsys):
    path = _write(tmp_path, CLEAN)
    assert main([path, "--update-baseline", "-q"]) == EXIT_ERROR
    assert "--baseline" in capsys.readouterr().err


def test_exit_two_on_internal_error(tmp_path, capsys, monkeypatch):
    import repro.analysis.cli as cli_mod

    def boom(*args, **kwargs):
        raise RuntimeError("analyzer exploded")

    monkeypatch.setattr(cli_mod, "analyze_paths", boom)
    assert main([_write(tmp_path, CLEAN), "-q"]) == EXIT_ERROR
    assert "internal error" in capsys.readouterr().err


# -------------------------------------------------------------------- formats
def test_text_format_renders_chain(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY), "-q"])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "taint-wallclock" in out
    assert "time.time" in out


def test_json_format_is_parseable_and_has_stats(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY), "--format", "json", "-q"])
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    rules = {v["rule"] for v in payload["findings"]}
    assert "taint-wallclock" in rules
    assert payload["stats"]["files"] == 1
    chained = [v for v in payload["findings"]
               if v["rule"] == "taint-wallclock"]
    assert chained[0]["chain"][-1][0] == "time.time"


def test_sarif_format_shape(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY), "--format", "sarif", "-q"])
    assert code == EXIT_FINDINGS
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    results = run["results"]
    assert results
    for result in results:
        assert result["ruleId"] in rule_ids
        assert result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"].endswith("mod.py")
        assert "simlint/v1" in result["fingerprints"]
    taint = [r for r in results if r["ruleId"] == "taint-wallclock"]
    assert taint and taint[0]["relatedLocations"]


def test_output_file_instead_of_stdout(tmp_path, capsys):
    out_file = tmp_path / "findings.json"
    code = main([_write(tmp_path, DIRTY), "--format", "json",
                 "--output", str(out_file), "-q"])
    assert code == EXIT_FINDINGS
    assert capsys.readouterr().out == ""
    payload = json.loads(out_file.read_text())
    assert payload["findings"]


# ------------------------------------------------------------------- baseline
def test_baseline_update_then_gate(tmp_path, capsys):
    path = _write(tmp_path, DIRTY)
    baseline = str(tmp_path / "baseline.json")

    # Recording the current findings exits clean.
    assert main([path, "--baseline", baseline,
                 "--update-baseline", "-q"]) == EXIT_CLEAN
    # With the baseline in place the same tree is clean.
    assert main([path, "--baseline", baseline, "-q"]) == EXIT_CLEAN

    # A *new* finding still fails the run.
    extra = _write(tmp_path, """\
        import os

        def token():
            return os.urandom(4)

        def proc(sim):
            t = token()
            yield sim.timeout(1)
        """, name="extra.py")
    capsys.readouterr()
    assert main([path, extra, "--baseline", baseline]) == EXIT_FINDINGS
    captured = capsys.readouterr()
    assert "taint-entropy" in captured.out
    assert "taint-wallclock" not in captured.out  # old finding stays hidden
    assert "suppressed by baseline" in captured.err


def test_baseline_is_line_number_insensitive(tmp_path):
    path = _write(tmp_path, DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main([path, "--baseline", baseline,
                 "--update-baseline", "-q"]) == EXIT_CLEAN
    # Shift everything down a few lines; the fingerprint must still match.
    shifted = "# a comment\n# another\n\n" + textwrap.dedent(DIRTY)
    (tmp_path / "mod.py").write_text(shifted)
    assert main([path, "--baseline", baseline, "-q"]) == EXIT_CLEAN


def test_malformed_baseline_is_exit_two(tmp_path, capsys):
    path = _write(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{broken")
    assert main([path, "--baseline", str(baseline), "-q"]) == EXIT_ERROR


# ---------------------------------------------------------------- selections
def test_select_whole_program_rule_only(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY), "--select", "taint-wallclock",
                 "--format", "json", "-q"])
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in payload["findings"]} == {"taint-wallclock"}


def test_disable_whole_program_rule(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY),
                 "--disable", "taint-wallclock,no-wallclock", "-q"])
    assert code == EXIT_CLEAN


def test_no_whole_program_skips_taint(tmp_path, capsys):
    code = main([_write(tmp_path, DIRTY), "--no-whole-program",
                 "--format", "json", "-q"])
    payload = json.loads(capsys.readouterr().out)
    rules = {v["rule"] for v in payload["findings"]}
    assert "taint-wallclock" not in rules
    # The direct per-module rule still fires on the naked call.
    assert code == EXIT_FINDINGS
    assert "no-wallclock" in rules


def test_stats_flag_prints_parse_counts(tmp_path, capsys):
    assert main([_write(tmp_path, CLEAN), "--stats", "-q"]) == EXIT_CLEAN
    err = capsys.readouterr().err
    assert "simlint stats:" in err
    assert "parsed=1" in err
