"""no-topology-literals: hard-coded host/datanode names belong in presets."""

import textwrap

from repro.analysis.rules.topology_literals import NoTopologyLiteralsRule
from repro.analysis.runner import lint_source


def lint(snippet, rule=None, path="<string>"):
    return lint_source(textwrap.dedent(snippet),
                       [rule or NoTopologyLiteralsRule()], path=path)


def test_host_and_datanode_literals_flagged():
    violations = lint("""
        def pick():
            target = "host1"
            vm = "datanode2"
            return target, vm
        """)
    assert [v.rule for v in violations] == ["no-topology-literals"] * 2
    assert [v.line for v in violations] == [3, 4]
    assert "host1" in violations[0].message
    assert "datanode2" in violations[1].message


def test_docstrings_exempt():
    violations = lint('''
        """Module about host1 and datanode2 layouts."""

        class Thing:
            """Targets host1 by default."""

            def run(self):
                """Reads from datanode2."""
                return None
        ''')
    assert violations == []


def test_non_layout_names_not_flagged():
    violations = lint("""
        RACK = "rack1"
        DN = "dn1"
        NOTE = "the host12x suffix is fine"
        PORT = "hostname"
        """)
    assert violations == []


def test_allow_glob_exempts_path():
    snippet = """
        DEFAULT = "host1"
        """
    assert lint(snippet, path="src/repro/cluster/topology.py") == []
    assert len(lint(snippet, path="src/repro/faults/plan.py")) == 1


def test_custom_allowlist():
    rule = NoTopologyLiteralsRule(allow=("*special*",))
    snippet = """
        DEFAULT = "datanode1"
        """
    assert lint(snippet, rule=rule, path="pkg/special_mod.py") == []
    assert len(lint(snippet, rule=rule, path="pkg/other.py")) == 1


def test_pragma_disables():
    violations = lint("""
        DEFAULT = "host1"  # simlint: disable=no-topology-literals
        """)
    assert violations == []
