"""The shipped tree must be simlint-clean — violations fail the suite.

This is the local mirror of the ``make lint`` CI gate: any PR that
introduces a wall-clock read, global randomness, a non-event yield or an
unbalanced resource grant in ``src/repro`` fails here with file:line
pointers.
"""

import os
import subprocess
import sys

import repro
from repro.analysis.rules import default_rules
from repro.analysis.runner import lint_paths

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def test_src_repro_is_simlint_clean():
    violations = lint_paths([PACKAGE_DIR], default_rules())
    assert not violations, "simlint violations in src/repro:\n" + "\n".join(
        violation.render() for violation in violations)


def test_cli_exits_zero_on_shipped_tree():
    env = dict(os.environ)
    src_root = os.path.dirname(PACKAGE_DIR)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", PACKAGE_DIR],
        capture_output=True, text=True, env=env)
    assert result.returncode == 0, result.stdout + result.stderr
