"""The shipped tree must be simlint-clean — violations fail the suite.

This is the local mirror of the ``make analyze`` CI gate: any PR that
introduces a wall-clock read, global randomness, a non-event yield, an
unbalanced resource grant — or, via the whole-program passes, code that
makes any of those *reachable* from a simulation process — in
``src/repro`` fails here with file:line pointers and call chains.
"""

import json
import os
import subprocess
import sys

import repro
from repro.analysis.rules import default_rules
from repro.analysis.runner import analyze_paths, lint_paths

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(repro.__file__))))
BASELINE = os.path.join(REPO_ROOT, ".simlint-baseline.json")


def test_src_repro_is_simlint_clean():
    violations = lint_paths([PACKAGE_DIR], default_rules())
    assert not violations, "simlint violations in src/repro:\n" + "\n".join(
        violation.render() for violation in violations)


def test_src_repro_is_clean_under_whole_program_analysis():
    """The taint/flow passes find nothing reachable from sim processes."""
    result = analyze_paths([PACKAGE_DIR], default_rules())
    assert not result.violations, (
        "whole-program findings in src/repro:\n" + "\n".join(
            violation.render() for violation in result.violations))
    # The graph actually covered the tree — this is not a vacuous pass.
    assert result.stats.functions > 500
    assert result.stats.call_edges > 300
    assert result.stats.entry_points > 50


def test_committed_baseline_is_empty():
    """src/repro carries no grandfathered findings: the committed baseline
    must stay empty so CI gates on *every* finding, not just new ones."""
    with open(BASELINE, encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["findings"] == {}


def test_cli_exits_zero_on_shipped_tree():
    env = dict(os.environ)
    src_root = os.path.dirname(PACKAGE_DIR)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", PACKAGE_DIR,
         "--baseline", BASELINE],
        capture_output=True, text=True, env=env)
    assert result.returncode == 0, result.stdout + result.stderr
