"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_quick_experiment(capsys):
    assert main(["run", "fig03", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "2vms" in out and "4vms" in out


def test_demo_verifies_data(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "vanilla" in out and "vRead" in out and "verified" in out


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_every_listed_experiment_has_a_runner():
    from repro.cli import _runner_for

    for name in EXPERIMENTS:
        assert callable(_runner_for(name, quick=True))


def test_profile_subcommand_runs(capsys, tmp_path):
    out = tmp_path / "prof.json"
    assert main(["profile", "fig03", "--quick", "--top", "3",
                 "--json", str(out)]) == 0
    text = capsys.readouterr().out
    assert "events processed" in text
    assert "hottest functions" in text
    assert out.exists()


def test_profile_unknown_experiment_suggests(capsys):
    assert main(["profile", "fig0", "--quick"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "did you mean" in err


def test_registry_did_you_mean():
    from repro.experiments import registry

    with pytest.raises(KeyError, match="did you mean 'fig13'"):
        registry.get("fig1")
