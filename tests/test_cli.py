"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_quick_experiment(capsys):
    assert main(["run", "fig03", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "2vms" in out and "4vms" in out


def test_demo_verifies_data(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "vanilla" in out and "vRead" in out and "verified" in out


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_every_listed_experiment_has_a_runner():
    from repro.cli import _runner_for

    for name in EXPERIMENTS:
        assert callable(_runner_for(name, quick=True))
