"""Tests for the streaming MetricSink protocol (sketches, windows, reservoir).

The hypothesis properties here are the determinism contract the whole
load harness rests on: the quantile sketch's error bound against the
exact nearest-rank percentile, merge associativity/commutativity, and
byte-identical digests for serial vs sharded ingestion.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.sinks import (EmptyMetricError, LogHistogram, Reservoir,
                                 WindowedCounter, sink_digest)

positive_samples = st.lists(
    st.floats(min_value=1e-9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300)


def nearest_rank(samples, q):
    """The exact nearest-rank percentile the sketch approximates."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


# ----------------------------------------------------------------- histogram
def test_histogram_empty_contract():
    hist = LogHistogram()
    assert hist.count == 0
    with pytest.raises(EmptyMetricError, match="no samples recorded"):
        hist.quantile(50)
    with pytest.raises(EmptyMetricError):
        hist.minimum
    with pytest.raises(EmptyMetricError):
        hist.maximum


def test_histogram_exact_extremes():
    hist = LogHistogram()
    for value in (0.004, 0.1, 3.7):
        hist.observe(value)
    assert hist.minimum == 0.004
    assert hist.maximum == 3.7
    assert hist.quantile(0) >= 0.004
    assert hist.quantile(100) <= 3.7
    assert hist.quantile(100) == pytest.approx(3.7,
                                               rel=hist.relative_error_bound)


def test_histogram_nonpositive_goes_to_underflow():
    hist = LogHistogram()
    hist.observe(0.0)
    hist.observe(-1.5)
    hist.observe(2.0)
    assert hist.count == 3
    # Underflow samples clamp to the tracked minimum, not a log bucket.
    assert hist.quantile(1) == -1.5


@settings(max_examples=60, deadline=None)
@given(samples=positive_samples,
       q=st.floats(min_value=1.0, max_value=100.0))
def test_histogram_quantile_error_bound(samples, q):
    hist = LogHistogram()
    for value in samples:
        hist.observe(value)
    exact = nearest_rank(samples, q)
    # A sample landing exactly on a bucket edge sits at precisely the
    # bound; a few ulps of slack keep the comparison robust to that.
    assert hist.quantile(q) == pytest.approx(
        exact, rel=hist.relative_error_bound * (1 + 1e-9))


@settings(max_examples=40, deadline=None)
@given(a=positive_samples, b=positive_samples, c=positive_samples)
def test_histogram_merge_associative_commutative(a, b, c):
    def hist_of(*sample_sets):
        hist = LogHistogram()
        for samples in sample_sets:
            for value in samples:
                hist.observe(value)
        return hist

    ab_c = hist_of(a, b)
    ab_c.merge(hist_of(c))
    a_bc = hist_of(a)
    bc = hist_of(b)
    bc.merge(hist_of(c))
    a_bc.merge(bc)
    assert ab_c.state() == a_bc.state()
    assert ab_c.digest() == a_bc.digest()

    ba = hist_of(b)
    ba.merge(hist_of(a))
    ab = hist_of(a)
    ab.merge(hist_of(b))
    assert ab.state() == ba.state()


@settings(max_examples=40, deadline=None)
@given(samples=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                                  allow_nan=False, allow_infinity=False),
                        min_size=4, max_size=200))
def test_histogram_serial_vs_sharded_digest(samples):
    """Serial ingestion == 4 'worker' shards merged: byte-identical."""
    serial = LogHistogram()
    for value in samples:
        serial.observe(value)
    shards = [LogHistogram() for _ in range(4)]
    for index, value in enumerate(samples):
        shards[index % 4].observe(value)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    assert merged.digest() == serial.digest()
    assert sink_digest(merged.state()) == sink_digest(serial.state())


def test_histogram_merge_rejects_mismatched_resolution():
    with pytest.raises(ValueError):
        LogHistogram(bins_per_decade=100).merge(LogHistogram(bins_per_decade=50))


# ------------------------------------------------------------------- windows
def test_windowed_counter_basics():
    counter = WindowedCounter(window_seconds=1.0)
    for t in (0.1, 0.2, 1.5, 3.9):
        counter.observe(t)
    assert counter.count == 4
    assert counter.get(0) == 2
    assert counter.get(1) == 1
    assert counter.get(2) == 0
    assert counter.get(3) == 1
    assert counter.windows() == [(0, 2), (1, 1), (3, 1)]


def test_windowed_counter_merge_adds_counts():
    left = WindowedCounter(window_seconds=0.5)
    right = WindowedCounter(window_seconds=0.5)
    left.observe(0.1)
    right.observe(0.2)
    right.observe(0.7)
    left.merge(right)
    assert left.get(0) == 2
    assert left.get(1) == 1
    with pytest.raises(ValueError):
        left.merge(WindowedCounter(window_seconds=1.0))


def test_windowed_counter_rate_and_span():
    counter = WindowedCounter(window_seconds=0.5)
    for t in (0.0, 0.25, 0.6, 1.4):
        counter.observe(t)
    assert counter.rate(0) == pytest.approx(4.0)
    assert counter.rate(1) == pytest.approx(2.0)
    assert counter.rate(5) == 0.0
    assert counter.span() == (0, 2)
    with pytest.raises(EmptyMetricError):
        WindowedCounter().span()


# ----------------------------------------------------------------- reservoir
def test_reservoir_exact_below_capacity():
    res = Reservoir(capacity=8)
    for value in (5.0, 1.0, 3.0):
        res.observe(value)
    assert res.exact
    assert sorted(res.samples) == [1.0, 3.0, 5.0]


def test_reservoir_bounded_above_capacity():
    res = Reservoir(capacity=16)
    for value in range(1000):
        res.observe(float(value))
    assert not res.exact
    assert len(res.samples) == 16
    assert res.count == 1000


def test_reservoir_deterministic_for_seed():
    def fill(seed):
        res = Reservoir(capacity=8, seed=seed)
        for value in range(100):
            res.observe(float(value))
        return list(res.samples)

    assert fill(1) == fill(1)
    assert fill(1) != fill(2)
