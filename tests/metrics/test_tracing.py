"""Tests for the event tracer and its scheduler integration."""

import pytest

from repro.hostmodel.costs import CostModel
from repro.hostmodel.cpu import CpuScheduler
from repro.metrics.accounting import CpuAccounting
from repro.metrics.tracing import TraceEvent, Tracer
from repro.sim import Simulator


def test_record_and_filter():
    tracer = Tracer()
    tracer.record(1.0, "sched", "dispatch", thread="a")
    tracer.record(2.0, "net", "send", bytes=100)
    tracer.record(3.0, "sched", "preempt", thread="a")
    assert len(tracer) == 3
    assert len(tracer.events(category="sched")) == 2
    assert len(tracer.events(name="send")) == 1
    assert tracer.events(category="sched", name="preempt")[0].time == 3.0


def test_category_allowlist():
    tracer = Tracer(categories=["net"])
    tracer.record(1.0, "sched", "dispatch")
    tracer.record(2.0, "net", "send")
    assert len(tracer) == 1
    assert tracer.events()[0].category == "net"


def test_bounded_capacity_drops_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.record(float(i), "c", f"e{i}")
    assert len(tracer) == 3
    assert [event.name for event in tracer.events()] == ["e2", "e3", "e4"]
    assert tracer.dropped == 2
    assert tracer.recorded == 5


def test_render_contains_fields():
    tracer = Tracer()
    tracer.record(0.001, "sched", "dispatch", thread="vcpu0", cycles=5)
    text = tracer.render()
    assert "dispatch" in text and "thread=vcpu0" in text and "cycles=5" in text


def test_render_limit_and_clear():
    tracer = Tracer()
    for i in range(10):
        tracer.record(float(i), "c", f"e{i}")
    assert tracer.render(limit=2).count("\n") == 1
    tracer.clear()
    assert len(tracer) == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_scheduler_emits_dispatch_and_preempt():
    sim = Simulator()
    costs = CostModel().with_overrides(context_switch_cycles=0.0,
                                       wakeup_stacking_delay_seconds=0.0)
    sched = CpuScheduler(sim, 1, 1e9, CpuAccounting(), costs)
    sched.tracer = Tracer()

    def worker(tag):
        yield from sched.thread(tag).run(3_000_000, "work")  # 3 slices

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    dispatches = sched.tracer.events(name="dispatch")
    preempts = sched.tracer.events(name="preempt")
    assert len(dispatches) == 2
    assert len(preempts) > 0  # round-robin between the two bursts


def test_scheduler_emits_stacked_events_under_load():
    sim = Simulator()
    sched = CpuScheduler(sim, 1, 1e9, CpuAccounting(), name="traced")
    sched.tracer = Tracer()
    hog_thread = sched.thread("hog")

    def hog():
        for _ in range(50):
            yield from hog_thread.run(1_000_000, "hog")

    def waker():
        thread = sched.thread("waker")
        for _ in range(50):
            yield from thread.run(1_000, "w")
            yield sim.timeout(0.0002)

    sim.process(hog())
    sim.process(waker())
    sim.run()
    stacked = sched.tracer.events(name="stacked")
    assert len(stacked) == sched.stacked_wakeups
    assert sched.stacked_wakeups > 0


def test_trace_event_is_slotted():
    event = TraceEvent(0.0, "test", "x")
    assert not hasattr(event, "__dict__")
    assert hasattr(type(event), "__slots__")


def test_wants_reflects_category_filter():
    assert Tracer().wants("anything")
    tracer = Tracer(categories=["sched"])
    assert tracer.wants("sched")
    assert not tracer.wants("fault")


def test_guarded_call_sites_record_identically():
    # Call sites guard record() behind wants() to skip argument packing;
    # the guard must be behavior-neutral — record() filters too.
    guarded = Tracer(categories=["keep"])
    unguarded = Tracer(categories=["keep"])
    for i in range(10):
        category = "keep" if i % 2 else "drop"
        if guarded.wants(category):
            guarded.record(float(i), category, "tick", i=i)
        unguarded.record(float(i), category, "tick", i=i)
    assert guarded.recorded == unguarded.recorded == 5
    assert guarded.events() == unguarded.events()
