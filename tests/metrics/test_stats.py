"""Tests for SummaryStats / percentile / timelines / report rendering."""

import pytest

from repro.metrics.report import Table, format_figure_series, improvement_pct, reduction_pct
from repro.metrics.stats import SummaryStats, percentile
from repro.metrics.timeline import IntervalRecorder, TimeSeries


# ----------------------------------------------------------------- percentile
def test_percentile_basics():
    samples = [1, 2, 3, 4, 5]
    assert percentile(samples, 0) == 1
    assert percentile(samples, 50) == 3
    assert percentile(samples, 100) == 5


def test_percentile_interpolates():
    assert percentile([1, 2], 50) == pytest.approx(1.5)
    assert percentile([0, 10], 25) == pytest.approx(2.5)


def test_percentile_single_sample():
    assert percentile([7], 99) == 7


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


# --------------------------------------------------------------- SummaryStats
def test_summary_stats_accessors():
    stats = SummaryStats([2.0, 4.0, 6.0])
    assert stats.count == 3
    assert stats.mean == pytest.approx(4.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 6.0
    assert stats.total == 12.0
    assert stats.median == 4.0


def test_summary_stats_stdev():
    stats = SummaryStats([2.0, 2.0, 2.0])
    assert stats.stdev == 0.0
    stats2 = SummaryStats([0.0, 4.0])
    assert stats2.stdev == pytest.approx(2.0)


def test_summary_stats_add_extend():
    stats = SummaryStats()
    stats.add(1.0)
    stats.extend([2.0, 3.0])
    assert len(stats) == 3
    assert stats.samples == (1.0, 2.0, 3.0)


def test_summary_stats_empty_raises():
    stats = SummaryStats()
    with pytest.raises(ValueError):
        _ = stats.mean


# ----------------------------------------------------------------- TimeSeries
def test_timeseries_rate_window():
    series = TimeSeries()
    series.record(0.0, 100.0)
    series.record(1.0, 100.0)
    series.record(2.0, 100.0)
    assert series.rate(0.0, 2.0) == pytest.approx(100.0)  # 200 over 2s


def test_timeseries_requires_time_order():
    series = TimeSeries()
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 1.0)


def test_timeseries_window_bounds_are_half_open():
    series = TimeSeries()
    series.record(0.0, 1.0)
    series.record(2.0, 1.0)
    assert series.values_in(0.0, 2.0) == [1.0]


# ----------------------------------------------------------- IntervalRecorder
def test_interval_recorder_durations():
    rec = IntervalRecorder()
    rec.begin("req-1", 1.0)
    assert rec.end("req-1", 3.5) == pytest.approx(2.5)
    assert rec.durations == [2.5]
    assert rec.open_count == 0


def test_interval_recorder_errors():
    rec = IntervalRecorder()
    rec.begin("a", 0.0)
    with pytest.raises(ValueError):
        rec.begin("a", 1.0)
    with pytest.raises(ValueError):
        rec.end("missing", 1.0)
    with pytest.raises(ValueError):
        rec.end("a", -1.0)


# --------------------------------------------------------------------- report
def test_table_renders_headers_and_rows():
    table = Table(["x", "y"], title="demo")
    table.add_row(1, 2.5)
    text = table.render()
    assert "demo" in text
    assert "x" in text and "y" in text
    assert "2.500" in text


def test_table_rejects_wrong_arity():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_format_figure_series():
    text = format_figure_series(
        "Fig X", "size", ["64KB", "1MB"],
        {"vanilla": [10.0, 20.0], "vRead": [5.0, 10.0]}, unit="ms")
    assert "vanilla (ms)" in text
    assert "64KB" in text
    assert "20.000" in text


def test_improvement_and_reduction_pct():
    assert improvement_pct(100.0, 160.0) == pytest.approx(60.0)
    assert reduction_pct(100.0, 60.0) == pytest.approx(40.0)
    with pytest.raises(ValueError):
        improvement_pct(0.0, 10.0)
