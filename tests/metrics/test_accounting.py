"""Tests for per-thread/per-category CPU accounting and breakdowns."""

import pytest

from repro.metrics.accounting import (
    CATEGORY_ORDER,
    CLIENT_APPLICATION,
    COPY_VIRTIO,
    CpuAccounting,
    OTHERS,
    UtilizationBreakdown,
    VHOST_NET,
)


def test_charge_accumulates():
    acct = CpuAccounting()
    acct.charge("vcpu0", CLIENT_APPLICATION, 0.5)
    acct.charge("vcpu0", CLIENT_APPLICATION, 0.25)
    assert acct.by_category() == {CLIENT_APPLICATION: 0.75}


def test_negative_charge_rejected():
    acct = CpuAccounting()
    with pytest.raises(ValueError):
        acct.charge("t", OTHERS, -0.1)


def test_by_category_filters_threads():
    acct = CpuAccounting()
    acct.charge("client.vcpu", CLIENT_APPLICATION, 1.0)
    acct.charge("datanode.vcpu", COPY_VIRTIO, 2.0)
    only_client = acct.by_category(threads=["client.vcpu"])
    assert only_client == {CLIENT_APPLICATION: 1.0}


def test_by_thread_totals():
    acct = CpuAccounting()
    acct.charge("a", CLIENT_APPLICATION, 1.0)
    acct.charge("a", OTHERS, 0.5)
    acct.charge("b", VHOST_NET, 2.0)
    assert acct.by_thread() == {"a": 1.5, "b": 2.0}


def test_total():
    acct = CpuAccounting()
    acct.charge("a", OTHERS, 1.0)
    acct.charge("b", OTHERS, 2.0)
    assert acct.total() == 3.0


def test_snapshot_and_since_window():
    acct = CpuAccounting()
    acct.charge("a", OTHERS, 5.0)
    mark = acct.snapshot()
    acct.charge("a", OTHERS, 2.0)
    acct.charge("b", VHOST_NET, 1.0)
    window = acct.since(mark)
    assert window.by_category() == {OTHERS: 2.0, VHOST_NET: 1.0}
    # Original untouched.
    assert acct.by_category()[OTHERS] == 7.0


def test_since_excludes_zero_deltas():
    acct = CpuAccounting()
    acct.charge("a", OTHERS, 5.0)
    mark = acct.snapshot()
    window = acct.since(mark)
    assert window.by_category() == {}


def test_breakdown_fractions():
    # 2 cores over a 10s window = 20 core-seconds of capacity.
    breakdown = UtilizationBreakdown(
        {CLIENT_APPLICATION: 5.0, VHOST_NET: 1.0}, window_seconds=10.0, cores=2)
    assert breakdown.get(CLIENT_APPLICATION) == pytest.approx(0.25)
    assert breakdown.get(VHOST_NET) == pytest.approx(0.05)
    assert breakdown.total == pytest.approx(0.30)


def test_breakdown_rows_follow_paper_order():
    breakdown = UtilizationBreakdown(
        {VHOST_NET: 1.0, CLIENT_APPLICATION: 1.0}, window_seconds=10.0, cores=1)
    names = [name for name, _ in breakdown.rows()]
    assert names == [CLIENT_APPLICATION, VHOST_NET]
    assert CATEGORY_ORDER.index(CLIENT_APPLICATION) < CATEGORY_ORDER.index(VHOST_NET)


def test_breakdown_unknown_category_listed_last():
    breakdown = UtilizationBreakdown(
        {"custom": 1.0, CLIENT_APPLICATION: 1.0}, window_seconds=10.0, cores=1)
    names = [name for name, _ in breakdown.rows()]
    assert names == [CLIENT_APPLICATION, "custom"]


def test_breakdown_validation():
    with pytest.raises(ValueError):
        UtilizationBreakdown({}, window_seconds=0, cores=1)
    with pytest.raises(ValueError):
        UtilizationBreakdown({}, window_seconds=1, cores=0)


def test_breakdown_drops_zero_categories():
    breakdown = UtilizationBreakdown(
        {CLIENT_APPLICATION: 0.0, VHOST_NET: 1.0}, window_seconds=10.0, cores=1)
    assert CLIENT_APPLICATION not in breakdown.utilization


def test_fold_order_follows_first_charge_time():
    # Readers fold float sums in birth order: (first-charge time, seq).
    # With a clock wired, a key charged later in arrival order but at an
    # earlier simulated time folds first.
    acct = CpuAccounting()
    now = [5.0]
    acct.set_clock(lambda: now[0])
    acct.charge("b", OTHERS, 0.25)       # born at t=5
    now[0] = 2.0
    acct.charge("a", OTHERS, 0.5)        # born at t=2: folds first
    assert [key for key, _ in acct._fold_order()] \
        == [("a", OTHERS), ("b", OTHERS)]


def test_fold_order_without_clock_is_arrival_order():
    acct = CpuAccounting()
    acct.charge("z", OTHERS, 0.1)
    acct.charge("a", OTHERS, 0.2)
    assert [key for key, _ in acct._fold_order()] \
        == [("z", OTHERS), ("a", OTHERS)]


def test_birth_is_first_charge_only():
    acct = CpuAccounting()
    now = [1.0]
    acct.set_clock(lambda: now[0])
    acct.charge("t", OTHERS, 0.1)
    now[0] = 9.0
    acct.charge("t", OTHERS, 0.1)        # later charge: birth unchanged
    assert acct._birth[("t", OTHERS)][0] == 1.0


def test_since_preserves_relative_birth_order():
    acct = CpuAccounting()
    now = [3.0]
    acct.set_clock(lambda: now[0])
    acct.charge("b", OTHERS, 0.25)
    now[0] = 1.0
    acct.charge("a", OTHERS, 0.5)
    delta = acct.since({})
    assert [key for key, _ in delta._fold_order()] \
        == [key for key, _ in acct._fold_order()]


def test_zero_charge_mints_key():
    # The scheduler charges a zero-cost context switch unconditionally;
    # the key must appear in snapshots even with a 0.0 total.
    acct = CpuAccounting()
    acct.charge("t", OTHERS, 0.0)
    assert acct.snapshot() == {("t", OTHERS): 0.0}
