"""Tests for lookbusy, netperf, and the file-read benchmark."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.storage.content import PatternSource
from repro.workloads.filereader import FileReadBenchmark
from repro.workloads.lookbusy import Lookbusy
from repro.workloads.netperf import NetperfRR


# ------------------------------------------------------------------ lookbusy
def test_lookbusy_validation(single_host_bed):
    with pytest.raises(ValueError):
        Lookbusy(single_host_bed.vms[0], utilization=0.0)
    with pytest.raises(ValueError):
        Lookbusy(single_host_bed.vms[0], utilization=1.5)
    with pytest.raises(ValueError):
        Lookbusy(single_host_bed.vms[0], period_seconds=0)


def test_lookbusy_stop_terminates(single_host_bed):
    bed = single_host_bed
    hog = Lookbusy(bed.vms[0], utilization=0.5)

    def stopper():
        yield bed.sim.timeout(0.1)
        hog.stop()

    bed.sim.process(stopper())
    bed.sim.run()  # must terminate
    assert hog.stopped


def test_lookbusy_hits_target_utilization(single_host_bed):
    bed = single_host_bed
    hog = Lookbusy(bed.vms[0], utilization=0.6)

    def stopper():
        yield bed.sim.timeout(2.0)
        hog.stop()

    bed.sim.process(stopper())
    bed.sim.run()
    busy = bed.hosts[0].accounting.by_category().get("lookbusy", 0)
    assert busy == pytest.approx(1.2, rel=0.1)


# ------------------------------------------------------------------- netperf
def test_netperf_counts_transactions(single_host_bed):
    bed = single_host_bed
    rr = NetperfRR(bed.network, bed.vms[0], bed.vms[1], request_bytes=32 * 1024)

    def proc():
        rate = yield from rr.run(duration=0.05)
        return rate

    rate = bed.run(bed.sim.process(proc()))
    assert rr.transactions > 0
    assert rate == pytest.approx(rr.transactions / 0.05, rel=0.2)


def test_netperf_rate_drops_under_cpu_contention():
    """The Figure 3 effect: background lookbusy VMs depress TCP_RR rate."""
    def measure(total_vms):
        cluster = VirtualHadoopCluster(block_size=1 << 20,
                                       total_vms_per_host=total_vms)
        rr = NetperfRR(cluster.network, cluster.client_vm,
                       cluster.datanode_vms[0], request_bytes=32 * 1024)

        def proc():
            return (yield from rr.run(duration=0.2))

        rate = cluster.run(cluster.sim.process(proc()))
        cluster.stop_background()
        return rate

    rate_2vms = measure(2)
    rate_4vms = measure(4)
    assert rate_4vms < rate_2vms
    drop = (rate_2vms - rate_4vms) / rate_2vms
    assert 0.05 < drop < 0.60  # paper reports ~20%


def test_netperf_validation(single_host_bed):
    with pytest.raises(ValueError):
        NetperfRR(single_host_bed.network, single_host_bed.vms[0],
                  single_host_bed.vms[1], request_bytes=0)


# ---------------------------------------------------------------- filereader
def test_filereader_local_counts_requests(single_host_bed):
    bed = single_host_bed
    vm = bed.vms[0]
    vm.guest_fs.mkdir("/data")
    vm.guest_fs.create("/data/f", PatternSource(256 * 1024, seed=1))
    bench = FileReadBenchmark(request_bytes=64 * 1024)

    def proc():
        yield from bench.read_local(vm, "/data/f")

    bed.run(bed.sim.process(proc()))
    assert bench.delays.count == 4
    assert bench.mean_delay > 0


def test_filereader_hdfs_vs_local_delay(hadoop_bed):
    """Figure 2's core claim: inter-VM HDFS reads are slower than local."""
    bed = hadoop_bed
    payload = PatternSource(256 * 1024, seed=2)

    def load():
        yield from bed.client.write_file("/f", payload, favored=["dn1"])

    bed.run(bed.sim.process(load()))
    # Local baseline: the same file on the client VM's own disk.
    bed.client_vm.guest_fs.mkdir("/data")
    bed.client_vm.guest_fs.create("/data/f", payload)

    def drop_caches():
        for host in bed.hosts:
            host.drop_caches()
            for vm in host.vms:
                vm.drop_guest_cache()

    local = FileReadBenchmark(request_bytes=64 * 1024)
    hdfs = FileReadBenchmark(request_bytes=64 * 1024)

    def run_local():
        yield from local.read_local(bed.client_vm, "/data/f")

    def run_hdfs():
        yield from hdfs.read_hdfs(bed.client, "/f")

    # Cold-vs-cold, as in Fig 2(a).
    drop_caches()
    bed.run(bed.sim.process(run_local()))
    drop_caches()
    bed.run(bed.sim.process(run_hdfs()))
    assert hdfs.mean_delay > local.mean_delay * 1.5


def test_filereader_validation():
    with pytest.raises(ValueError):
        FileReadBenchmark(request_bytes=0)
