"""Deeper MapReduce engine tests: factories, heartbeats, slot isolation."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.storage.content import PatternSource
from repro.workloads.mapreduce import MapSpec, MiniMapReduce


@pytest.fixture
def cluster():
    return VirtualHadoopCluster(block_size=1 << 20)


def load(cluster, paths, size=128 * 1024):
    def proc():
        for i, path in enumerate(paths):
            yield from cluster.write_dataset(
                path, PatternSource(size, seed=40 + i))

    cluster.run(cluster.sim.process(proc()))
    cluster.settle()


def test_mapper_factory_gives_each_task_its_own_state(cluster):
    paths = [f"/in/f{i}" for i in range(4)]
    load(cluster, paths)
    engine = MiniMapReduce(cluster.clients.get(), map_slots=2)
    instances = []

    def factory(spec):
        state = {"path": spec.path, "pieces": 0}
        instances.append(state)

        def mapper(piece):
            state["pieces"] += 1
            return state["path"]

        return mapper

    def proc():
        return (yield from engine.run(
            [MapSpec(p, 64 * 1024) for p in paths],
            mapper_factory=factory))

    results = cluster.run(cluster.sim.process(proc()))
    assert len(instances) == 4
    assert all(state["pieces"] == 2 for state in instances)  # 128KB / 64KB
    # Each task's outputs reference its own file.
    for result in results:
        assert set(result.map_output) == {result.path}


def test_mapper_and_factory_are_mutually_exclusive(cluster):
    engine = MiniMapReduce(cluster.clients.get())

    def proc():
        yield from engine.run([], mapper=lambda piece: None,
                              mapper_factory=lambda spec: None)

    cluster.sim.process(proc())
    with pytest.raises(ValueError):
        cluster.sim.run()


def test_heartbeat_stops_with_the_job(cluster):
    load(cluster, ["/in/f0"])
    engine = MiniMapReduce(cluster.clients.get(), heartbeat_interval=0.001)

    def proc():
        yield from engine.run([MapSpec("/in/f0", 64 * 1024)])
        return cluster.sim.now

    finished_at = cluster.run(cluster.sim.process(proc()))
    # Drain: if the heartbeat leaked, the sim would keep producing events
    # forever; run() returning proves it stopped.
    cluster.sim.run()
    assert cluster.sim.now < finished_at + 0.01


def test_heartbeat_cpu_scales_with_duration(cluster):
    load(cluster, ["/in/f0"], size=1 << 20)
    vcpu_name = cluster.client_vm.vcpu.name

    def run_with(duty):
        engine = MiniMapReduce(cluster.clients.get(), heartbeat_interval=0.001,
                               heartbeat_duty=duty,
                               map_cycles_per_byte=0.0,
                               map_cycles_per_call=0.0)
        mark = cluster.hosts[0].accounting.snapshot()

        def proc():
            yield from engine.run([MapSpec("/in/f0", 256 * 1024)])

        cluster.run(cluster.sim.process(proc()))
        window = cluster.hosts[0].accounting.since(mark)
        return window.by_thread().get(vcpu_name, 0.0)

    low = run_with(0.0)
    high = run_with(0.3)
    assert high > low


def test_map_slots_bound_concurrency(cluster):
    paths = [f"/in/f{i}" for i in range(6)]
    load(cluster, paths)
    active = {"now": 0, "max": 0}

    def factory(spec):
        def mapper(piece):
            return None

        return mapper

    class CountingEngine(MiniMapReduce):
        def _map_task(self, spec, mapper):
            active["now"] += 1
            active["max"] = max(active["max"], active["now"])
            try:
                result = yield from super()._map_task(spec, mapper)
            finally:
                active["now"] -= 1
            return result

    engine = CountingEngine(cluster.clients.get(), map_slots=2)

    def proc():
        yield from engine.run([MapSpec(p, 64 * 1024) for p in paths])

    cluster.run(cluster.sim.process(proc()))
    assert active["max"] <= 2
