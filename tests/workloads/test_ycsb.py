"""Tests for the YCSB-like workload and the zipfian generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualHadoopCluster
from repro.workloads.hbase import HBaseTable
from repro.workloads.ycsb import YcsbWorkload, ZipfianGenerator


# ------------------------------------------------------------------ zipfian
def test_zipfian_ranges_and_skew():
    gen = ZipfianGenerator(1000, rng=random.Random(1))
    samples = [gen.next() for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    # Heavy head: the hottest 1% of keys should draw far more than 1%.
    hot = sum(1 for s in samples if s < 10) / len(samples)
    assert hot > 0.15


def test_zipfian_hot_fraction_monotone():
    gen = ZipfianGenerator(100)
    assert gen.hot_fraction(0) == 0.0
    assert gen.hot_fraction(1) < gen.hot_fraction(10) < gen.hot_fraction(100)
    assert gen.hot_fraction(100) == pytest.approx(1.0)


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)


@given(n=st.integers(min_value=1, max_value=500),
       seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=20, deadline=None)
def test_zipfian_samples_always_in_range(n, seed):
    gen = ZipfianGenerator(n, rng=random.Random(seed))
    assert all(0 <= gen.next() < n for _ in range(50))


# --------------------------------------------------------------------- YCSB
@pytest.fixture
def loaded_table():
    cluster = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    table = HBaseTable(cluster.clients.get(), row_bytes=256,
                       rows_per_region=2048,
                       get_cycles_per_row=20_000)

    def load():
        yield from table.load(4096)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    return cluster, table


def test_ycsb_pure_reads(loaded_table):
    cluster, table = loaded_table
    workload = YcsbWorkload(table, read_fraction=1.0)

    def proc():
        return (yield from workload.run(200))

    result = cluster.run(cluster.sim.process(proc()))
    assert result.operations == 200
    assert result.reads == 200 and result.scans == 0
    assert result.bytes_read == 200 * 256
    assert result.ops_per_second > 0


def test_ycsb_scan_mix(loaded_table):
    cluster, table = loaded_table
    workload = YcsbWorkload(table, read_fraction=0.5, scan_rows=20, seed=3)

    def proc():
        return (yield from workload.run(100))

    result = cluster.run(cluster.sim.process(proc()))
    assert result.reads + result.scans == 100
    assert result.scans > 10  # ~half
    assert result.bytes_read > result.reads * 256


def test_ycsb_zipfian_benefits_from_cache_more_than_uniform(loaded_table):
    """Hot-key skew means repeat accesses hit warm pages: zipfian traffic
    should be faster per op than uniform traffic on a cold-ish cache."""
    cluster, table = loaded_table
    cluster.drop_all_caches()
    zipf = YcsbWorkload(table, distribution="zipfian", seed=4)

    def run_zipf():
        return (yield from zipf.run(400))

    zipf_result = cluster.run(cluster.sim.process(run_zipf()))
    cluster.drop_all_caches()
    uniform = YcsbWorkload(table, distribution="uniform", seed=4)

    def run_uniform():
        return (yield from uniform.run(400))

    uniform_result = cluster.run(cluster.sim.process(run_uniform()))
    assert zipf_result.elapsed_seconds < uniform_result.elapsed_seconds


def test_ycsb_validation(loaded_table):
    _, table = loaded_table
    with pytest.raises(ValueError):
        YcsbWorkload(table, read_fraction=1.5)
    with pytest.raises(ValueError):
        YcsbWorkload(table, distribution="gaussian")
    workload = YcsbWorkload(table)

    def proc():
        yield from workload.run(0)

    table.client.vm.sim.process(proc())
    with pytest.raises(ValueError):
        table.client.vm.sim.run()


def test_ycsb_empty_table_rejected():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    table = HBaseTable(cluster.clients.get())
    with pytest.raises(ValueError, match="empty"):
        YcsbWorkload(table)
