"""Tests for MapReduce, TestDFSIO, HBase, Hive, and Sqoop workloads."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.storage.content import PatternSource
from repro.virt.vm import VirtualMachine
from repro.workloads.hbase import HBaseTable
from repro.workloads.hive import HiveTable
from repro.workloads.mapreduce import MapSpec, MiniMapReduce
from repro.workloads.sqoop import MySqlServer, SqoopExport
from repro.workloads.testdfsio import TestDfsio


@pytest.fixture
def cluster():
    return VirtualHadoopCluster(block_size=1 << 20)


def load_files(cluster, paths, size, seed=1):
    def proc():
        for i, path in enumerate(paths):
            yield from cluster.write_dataset(path, PatternSource(size,
                                                                 seed=seed + i))

    cluster.run(cluster.sim.process(proc()))
    cluster.settle()


# ---------------------------------------------------------------- MapReduce
def test_mapreduce_runs_all_tasks(cluster):
    paths = [f"/in/f{i}" for i in range(3)]
    load_files(cluster, paths, 128 * 1024)
    engine = MiniMapReduce(cluster.clients.get(), map_slots=2)

    def proc():
        return (yield from engine.run([MapSpec(p, 64 * 1024) for p in paths]))

    results = cluster.run(cluster.sim.process(proc()))
    assert len(results) == 3
    assert all(r.bytes_read == 128 * 1024 for r in results)
    assert [r.path for r in results] == paths


def test_mapreduce_mapper_collects_output(cluster):
    load_files(cluster, ["/in/f0"], 128 * 1024)
    engine = MiniMapReduce(cluster.clients.get())

    def proc():
        return (yield from engine.run(
            [MapSpec("/in/f0", 64 * 1024)], mapper=lambda piece: piece.size))

    results = cluster.run(cluster.sim.process(proc()))
    assert results[0].map_output == [64 * 1024, 64 * 1024]


def test_mapreduce_slot_validation(cluster):
    with pytest.raises(ValueError):
        MiniMapReduce(cluster.clients.get(), map_slots=0)


def test_mapreduce_empty_job(cluster):
    engine = MiniMapReduce(cluster.clients.get())

    def proc():
        return (yield from engine.run([]))

    assert cluster.run(cluster.sim.process(proc())) == []


# ----------------------------------------------------------------- TestDFSIO
def test_dfsio_write_then_read(cluster):
    dfsio = TestDfsio(cluster.clients.get(), request_bytes=256 * 1024)

    def proc():
        write_result = yield from dfsio.write(2, 512 * 1024, favored=["dn1"])
        read_result = yield from dfsio.read(2)
        return write_result, read_result

    write_result, read_result = cluster.run(cluster.sim.process(proc()))
    assert write_result.total_bytes == 2 * 512 * 1024
    assert read_result.total_bytes == 2 * 512 * 1024
    assert write_result.throughput_mbps > 0
    assert read_result.throughput_mbps > 0
    assert read_result.cpu_seconds > 0


def test_dfsio_vread_beats_vanilla_throughput():
    def measure(vread):
        cluster = VirtualHadoopCluster(block_size=1 << 20, vread=vread)
        dfsio = TestDfsio(cluster.clients.get(), request_bytes=1 << 20)

        def proc():
            yield from dfsio.write(1, 4 << 20, favored=["dn1"])
            cluster.drop_all_caches()
            return (yield from dfsio.read(1))

        return cluster.run(cluster.sim.process(proc()))

    vanilla = measure(False)
    vread = measure(True)
    assert vread.throughput_mbps > vanilla.throughput_mbps
    assert vread.cpu_seconds < vanilla.cpu_seconds


# --------------------------------------------------------------------- HBase
def test_hbase_operations(cluster):
    table = HBaseTable(cluster.clients.get(), row_bytes=256, rows_per_region=1024)

    def proc():
        yield from table.load(2048)
        scan = yield from table.scan(batch_rows=256)
        seq = yield from table.sequential_read(512)
        rnd = yield from table.random_read(256)
        table.close()
        return scan, seq, rnd

    scan, seq, rnd = cluster.run(cluster.sim.process(proc()))
    assert scan.rows == 2048
    assert scan.bytes_read == 2048 * 256
    assert seq.rows == 512 and seq.bytes_read == 512 * 256
    assert rnd.rows == 256
    assert scan.throughput_mbps > seq.throughput_mbps  # batching wins


def test_hbase_spans_regions(cluster):
    table = HBaseTable(cluster.clients.get(), row_bytes=128, rows_per_region=512)

    def proc():
        yield from table.load(1500)  # 3 regions
        return table.n_regions

    assert cluster.run(cluster.sim.process(proc())) == 3
    assert cluster.namenode.exists(table.region_path(2))


def test_hbase_empty_table_random_read_rejected(cluster):
    table = HBaseTable(cluster.clients.get())

    def proc():
        yield from table.random_read(1)

    cluster.sim.process(proc())
    with pytest.raises(ValueError):
        cluster.sim.run()


# ---------------------------------------------------------------------- Hive
def test_hive_query_counts_matches(cluster):
    table = HiveTable(cluster.clients.get(), row_bytes=64, rows_per_file=1024)

    def proc():
        yield from table.load(3000)
        result = yield from table.select_where_id_between(100, 199)
        return result

    result = cluster.run(cluster.sim.process(proc()))
    assert result.scanned_rows == 3000
    assert result.matched_rows == 100
    assert result.elapsed_seconds > 0


def test_hive_load_validation(cluster):
    table = HiveTable(cluster.clients.get())

    def proc():
        yield from table.load(0)

    cluster.sim.process(proc())
    with pytest.raises(ValueError):
        cluster.sim.run()


# --------------------------------------------------------------------- Sqoop
def test_sqoop_export_moves_all_rows():
    cluster = VirtualHadoopCluster(n_hosts=3, block_size=1 << 20)
    mysql_vm = VirtualMachine(cluster.hosts[2], "mysql")
    mysql = MySqlServer(mysql_vm, cluster.network)
    table = HiveTable(cluster.clients.get(), row_bytes=64, rows_per_file=1024)
    export = SqoopExport(cluster.clients.get(), mysql, cluster.network,
                         batch_rows=500)

    def proc():
        yield from table.load(2048)
        result = yield from export.export_table(table)
        return result

    result = cluster.run(cluster.sim.process(proc()))
    assert result.rows == 2048
    assert mysql.rows_inserted == 2048
    assert result.batches >= 4
    assert result.elapsed_seconds > 0
