"""Tests for VM guest file I/O: caches, virtio-blk, cost attribution."""

import pytest

from repro.metrics.accounting import CLIENT_APPLICATION, COPY_VIRTIO, DISK_READ
from repro.storage.content import PatternSource
from repro.storage.filesystem import FsError


@pytest.fixture
def vm(single_host_bed):
    vm = single_host_bed.vms[0]
    vm.guest_fs.mkdir("/data")
    return vm


def test_read_returns_correct_bytes(single_host_bed, vm):
    vm.guest_fs.create("/data/f", b"the quick brown fox")

    def proc():
        source = yield from vm.read_file("/data/f")
        return source.read(0, source.size)

    assert single_host_bed.run(single_host_bed.sim.process(proc())) == \
        b"the quick brown fox"


def test_read_range(single_host_bed, vm):
    vm.guest_fs.create("/data/f", b"0123456789")

    def proc():
        source = yield from vm.read_file("/data/f", offset=2, length=5)
        return source.read(0, 5)

    assert single_host_bed.run(single_host_bed.sim.process(proc())) == b"23456"


def test_missing_file_raises(single_host_bed, vm):
    def proc():
        yield from vm.read_file("/data/missing")

    single_host_bed.sim.process(proc())
    with pytest.raises(FsError):
        single_host_bed.sim.run()


def test_cold_read_hits_disk_warm_read_does_not(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", PatternSource(1 << 20, seed=1))
    host = vm.host

    def read_once():
        yield from vm.read_file("/data/f")

    bed.run(bed.sim.process(read_once()))
    cold_disk_bytes = host.ssd.bytes_read
    assert cold_disk_bytes >= 1 << 20
    bed.run(bed.sim.process(read_once()))
    assert host.ssd.bytes_read == cold_disk_bytes  # warm: no device I/O


def test_warm_read_is_faster(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", PatternSource(1 << 20, seed=2))
    durations = []

    def read_once():
        start = bed.sim.now
        yield from vm.read_file("/data/f")
        durations.append(bed.sim.now - start)

    bed.run(bed.sim.process(read_once()))
    bed.run(bed.sim.process(read_once()))
    assert durations[1] < durations[0] / 2


def test_drop_guest_cache_forces_virtio_but_host_cache_absorbs_disk(
        single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", PatternSource(1 << 20, seed=3))
    host = vm.host

    def read_once():
        yield from vm.read_file("/data/f")

    bed.run(bed.sim.process(read_once()))
    disk_after_cold = host.ssd.bytes_read
    virtio_after_cold = vm.virtio_blk.bytes_read
    vm.drop_guest_cache()
    bed.run(bed.sim.process(read_once()))
    assert vm.virtio_blk.bytes_read > virtio_after_cold  # crossed virtio again
    assert host.ssd.bytes_read == disk_after_cold        # host cache absorbed it


def test_full_cold_read_after_both_caches_dropped(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", PatternSource(1 << 20, seed=4))
    host = vm.host

    def read_once():
        yield from vm.read_file("/data/f")

    bed.run(bed.sim.process(read_once()))
    disk_after_cold = host.ssd.bytes_read
    vm.drop_guest_cache()
    host.drop_caches()
    bed.run(bed.sim.process(read_once()))
    assert host.ssd.bytes_read == 2 * disk_after_cold


def test_read_charges_expected_categories(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", PatternSource(1 << 20, seed=5))
    mark = vm.host.accounting.snapshot()

    def proc():
        yield from vm.read_file("/data/f", copy_category=CLIENT_APPLICATION)

    bed.run(bed.sim.process(proc()))
    window = vm.host.accounting.since(mark).by_category()
    assert window.get(DISK_READ, 0) > 0          # syscall/issue path
    assert window.get(COPY_VIRTIO, 0) > 0        # qemu I/O thread copy
    assert window.get(CLIENT_APPLICATION, 0) > 0  # kernel->user copy


def test_write_then_read_roundtrip(single_host_bed, vm):
    bed = single_host_bed

    def proc():
        yield from vm.write_file("/data/out", b"alpha")
        yield from vm.write_file("/data/out", b"-beta")
        source = yield from vm.read_file("/data/out")
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(proc())) == b"alpha-beta"


def test_write_reaches_ssd_when_sync(single_host_bed, vm):
    bed = single_host_bed

    def proc():
        yield from vm.write_file("/data/out", b"x" * 4096, sync=True)

    bed.run(bed.sim.process(proc()))
    assert vm.host.ssd.bytes_written >= 4096


def test_write_nosync_skips_device(single_host_bed, vm):
    bed = single_host_bed

    def proc():
        yield from vm.write_file("/data/out", b"x" * 4096, sync=False)

    bed.run(bed.sim.process(proc()))
    assert vm.host.ssd.bytes_written == 0


def test_written_data_is_cache_warm(single_host_bed, vm):
    bed = single_host_bed

    def write():
        yield from vm.write_file("/data/out", b"x" * 8192)

    bed.run(bed.sim.process(write()))
    virtio_reads_before = vm.virtio_blk.bytes_read

    def read():
        yield from vm.read_file("/data/out")

    bed.run(bed.sim.process(read()))
    assert vm.virtio_blk.bytes_read == virtio_reads_before  # guest-cache hit


def test_delete_and_rename(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", b"z")

    def proc():
        yield from vm.rename_file("/data/f", "/data/g")
        yield from vm.delete_file("/data/g")

    bed.run(bed.sim.process(proc()))
    assert not vm.guest_fs.exists("/data/f")
    assert not vm.guest_fs.exists("/data/g")


def test_zero_length_read(single_host_bed, vm):
    bed = single_host_bed
    vm.guest_fs.create("/data/f", b"abc")

    def proc():
        source = yield from vm.read_file("/data/f", offset=3)
        return source.size

    assert bed.run(bed.sim.process(proc())) == 0
