"""Tests for VM live migration and vRead's post-migration rebinding."""

import pytest

from repro.storage.content import PatternSource
from repro.virt.migration import migrate_vm


def test_migrate_moves_vm_and_threads(testbed):
    bed = testbed
    vm = bed.vms[0]
    source, target = bed.hosts
    old_vcpu = vm.vcpu

    def proc():
        yield from migrate_vm(vm, target, bed.lan)

    bed.run(bed.sim.process(proc()))
    assert vm.host is target
    assert vm not in source.vms and vm in target.vms
    assert vm.vcpu is not old_vcpu
    assert vm.vcpu.scheduler is target.scheduler


def test_migrate_to_same_host_rejected(testbed):
    bed = testbed
    vm = bed.vms[0]

    def proc():
        yield from migrate_vm(vm, bed.hosts[0], bed.lan)

    bed.sim.process(proc())
    with pytest.raises(ValueError):
        bed.sim.run()


def test_migration_takes_wire_time(testbed):
    bed = testbed
    vm = bed.vms[0]

    def proc():
        yield from migrate_vm(vm, bed.hosts[1], bed.lan, ram_bytes=1 << 30)
        return bed.sim.now

    finish = bed.run(bed.sim.process(proc()))
    # >= 1GB * 1.15 at 1.25 GB/s plus downtime.
    assert finish > 0.9


def test_guest_io_still_works_after_migration(testbed):
    bed = testbed
    vm = bed.vms[0]
    vm.guest_fs.mkdir("/d")
    vm.guest_fs.create("/d/f", b"pre-migration data")

    def proc():
        yield from migrate_vm(vm, bed.hosts[1], bed.lan, ram_bytes=1 << 20)
        source = yield from vm.read_file("/d/f")
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(proc())) == b"pre-migration data"
    # Post-migration CPU lands on the destination host's accounting.
    assert bed.hosts[1].accounting.by_thread().get(vm.vcpu.name, 0) > 0


def test_vread_keeps_working_after_datanode_migration(vread_bed):
    """Paper Section 6: after migration, both hosts' vRead hash tables are
    updated and reads keep flowing — now over the remote path."""
    bed = vread_bed
    payload = PatternSource(200 * 1024, seed=5)

    def load():
        yield from bed.client.write_file("/f", payload, favored=["dn1"])

    bed.run(bed.sim.process(load()))
    bed.sim.run()

    # Migrate the co-located datanode VM to host2 and rebind vRead.
    def migrate():
        yield from migrate_vm(bed.datanode1_vm, bed.hosts[1], bed.lan,
                              ram_bytes=1 << 20)

    bed.run(bed.sim.process(migrate()))
    bed.manager.rebind_datanode(bed.datanode1)

    service1 = bed.manager.service_for(bed.hosts[0])
    service2 = bed.manager.service_for(bed.hosts[1])
    assert not service1.is_local("dn1")
    assert service2.is_local("dn1")
    # host1 unmounted the image; host2 mounted it.
    assert bed.datanode1_vm.image.name not in bed.hosts[0].mounts
    assert bed.datanode1_vm.image.name in bed.hosts[1].mounts

    def read():
        source = yield from bed.vread_client.read_file("/f", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()
    library = bed.manager.library_of(bed.client_vm)
    assert library.reads > 0
    # Data now crosses the wire (RDMA remote read).
    assert bed.lan.nic_of(bed.hosts[1]).bytes_sent >= payload.size


def test_repeated_migrations_do_not_leak_source_threads():
    """Each hop retires the three source-side VM threads; round-tripping a
    VM many times must leave both schedulers' rosters exactly as built.
    Runs under the sanitizer so any roster/accounting violation raises."""
    from repro.hostmodel import PhysicalHost
    from repro.hostmodel.costs import CostModel
    from repro.net.lan import Lan
    from repro.sim import Simulator
    from repro.virt.vm import VirtualMachine

    sim = Simulator(sanitize=True)
    costs = CostModel()
    lan = Lan(sim, costs)
    hosts = [PhysicalHost(sim, f"host{i + 1}", cores=4,
                          frequency_hz=2.0e9, costs=costs)
             for i in range(2)]
    for host in hosts:
        lan.attach(host)
    vm = VirtualMachine(hosts[0], "vm1")
    rosters = [len(host.scheduler._threads) for host in hosts]

    def proc():
        for _ in range(3):
            yield from migrate_vm(vm, hosts[1], lan, ram_bytes=1 << 20)
            yield from migrate_vm(vm, hosts[0], lan, ram_bytes=1 << 20)

    sim.run_until_complete(sim.process(proc()))
    assert vm.host is hosts[0]
    assert [len(host.scheduler._threads) for host in hosts] == rosters


def test_cross_rack_migration_updates_fabric_distance():
    """After a cross-rack move the LAN routes (and prices) traffic from the
    VM's new position — membership.migrate relies on this for the RDMA
    rack-domain recompute."""
    from repro.cluster import VirtualHadoopCluster, rack_cluster
    from repro.net.lan import CROSS_RACK, SAME_RACK

    cluster = VirtualHadoopCluster(block_size=256 << 10, replication=2,
                                   topology=rack_cluster(2, 2))
    host1, host3 = cluster.hosts[0], cluster.hosts[2]
    assert cluster.lan.distance(host1, host3) == CROSS_RACK

    def churn():
        yield from cluster.membership.migrate("datanode2", "host3",
                                              ram_bytes=1 << 20)

    cluster.run(cluster.sim.process(churn()))
    vm = cluster.namenode.datanode("dn2").vm
    assert vm.host is host3
    # The fabric now sees dn2's VM at host3's position: cross-rack from
    # host1, same-rack from host4.
    assert cluster.lan.distance(host1, vm.host) == CROSS_RACK
    assert cluster.lan.distance(cluster.hosts[3], vm.host) == SAME_RACK
