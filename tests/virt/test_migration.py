"""Tests for VM live migration and vRead's post-migration rebinding."""

import pytest

from repro.storage.content import PatternSource
from repro.virt.migration import migrate_vm


def test_migrate_moves_vm_and_threads(testbed):
    bed = testbed
    vm = bed.vms[0]
    source, target = bed.hosts
    old_vcpu = vm.vcpu

    def proc():
        yield from migrate_vm(vm, target, bed.lan)

    bed.run(bed.sim.process(proc()))
    assert vm.host is target
    assert vm not in source.vms and vm in target.vms
    assert vm.vcpu is not old_vcpu
    assert vm.vcpu.scheduler is target.scheduler


def test_migrate_to_same_host_rejected(testbed):
    bed = testbed
    vm = bed.vms[0]

    def proc():
        yield from migrate_vm(vm, bed.hosts[0], bed.lan)

    bed.sim.process(proc())
    with pytest.raises(ValueError):
        bed.sim.run()


def test_migration_takes_wire_time(testbed):
    bed = testbed
    vm = bed.vms[0]

    def proc():
        yield from migrate_vm(vm, bed.hosts[1], bed.lan, ram_bytes=1 << 30)
        return bed.sim.now

    finish = bed.run(bed.sim.process(proc()))
    # >= 1GB * 1.15 at 1.25 GB/s plus downtime.
    assert finish > 0.9


def test_guest_io_still_works_after_migration(testbed):
    bed = testbed
    vm = bed.vms[0]
    vm.guest_fs.mkdir("/d")
    vm.guest_fs.create("/d/f", b"pre-migration data")

    def proc():
        yield from migrate_vm(vm, bed.hosts[1], bed.lan, ram_bytes=1 << 20)
        source = yield from vm.read_file("/d/f")
        return source.read(0, source.size)

    assert bed.run(bed.sim.process(proc())) == b"pre-migration data"
    # Post-migration CPU lands on the destination host's accounting.
    assert bed.hosts[1].accounting.by_thread().get(vm.vcpu.name, 0) > 0


def test_vread_keeps_working_after_datanode_migration(vread_bed):
    """Paper Section 6: after migration, both hosts' vRead hash tables are
    updated and reads keep flowing — now over the remote path."""
    bed = vread_bed
    payload = PatternSource(200 * 1024, seed=5)

    def load():
        yield from bed.client.write_file("/f", payload, favored=["dn1"])

    bed.run(bed.sim.process(load()))
    bed.sim.run()

    # Migrate the co-located datanode VM to host2 and rebind vRead.
    def migrate():
        yield from migrate_vm(bed.datanode1_vm, bed.hosts[1], bed.lan,
                              ram_bytes=1 << 20)

    bed.run(bed.sim.process(migrate()))
    bed.manager.rebind_datanode(bed.datanode1)

    service1 = bed.manager.service_for(bed.hosts[0])
    service2 = bed.manager.service_for(bed.hosts[1])
    assert not service1.is_local("dn1")
    assert service2.is_local("dn1")
    # host1 unmounted the image; host2 mounted it.
    assert bed.datanode1_vm.image.name not in bed.hosts[0].mounts
    assert bed.datanode1_vm.image.name in bed.hosts[1].mounts

    def read():
        source = yield from bed.vread_client.read_file("/f", 64 * 1024)
        return source

    got = bed.run(bed.sim.process(read()))
    assert got.checksum() == payload.checksum()
    library = bed.manager.library_of(bed.client_vm)
    assert library.reads > 0
    # Data now crosses the wire (RDMA remote read).
    assert bed.lan.nic_of(bed.hosts[1]).bytes_sent >= payload.size
