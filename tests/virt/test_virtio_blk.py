"""Direct unit tests for the virtio-blk device model."""

import pytest

from repro.metrics.accounting import COPY_VIRTIO


def test_read_counts_requests_and_bytes(single_host_bed):
    vm = single_host_bed.vms[0]

    def proc():
        yield from vm.virtio_blk.read(("img", 1), 0, 8192)

    single_host_bed.run(single_host_bed.sim.process(proc()))
    assert vm.virtio_blk.requests == 1
    assert vm.virtio_blk.bytes_read == 8192


def test_zero_length_read_is_noop(single_host_bed):
    vm = single_host_bed.vms[0]

    def proc():
        yield from vm.virtio_blk.read(("img", 1), 0, 0)

    single_host_bed.run(single_host_bed.sim.process(proc()))
    assert vm.virtio_blk.requests == 0


def test_cold_read_pays_device_time_warm_does_not(single_host_bed):
    bed = single_host_bed
    vm = bed.vms[0]
    durations = []

    def proc():
        start = bed.sim.now
        yield from vm.virtio_blk.read(("img", 2), 0, 1 << 20)
        durations.append(bed.sim.now - start)

    bed.run(bed.sim.process(proc()))   # cold: SSD
    bed.run(bed.sim.process(proc()))   # warm: host cache
    assert durations[1] < durations[0] / 2
    assert vm.host.ssd.bytes_read >= 1 << 20


def test_read_charges_qemu_io_thread(single_host_bed):
    bed = single_host_bed
    vm = bed.vms[0]
    mark = vm.host.accounting.snapshot()

    def proc():
        yield from vm.virtio_blk.read(("img", 3), 0, 256 * 1024)

    bed.run(bed.sim.process(proc()))
    window = vm.host.accounting.since(mark)
    qemu_io_busy = window.by_thread().get(vm.qemu_io.name, 0.0)
    assert qemu_io_busy > 0
    assert window.by_category().get(COPY_VIRTIO, 0) > 0


def test_write_reaches_ssd_and_warms_host_cache(single_host_bed):
    bed = single_host_bed
    vm = bed.vms[0]

    def write():
        yield from vm.virtio_blk.write(("img", 4), 0, 64 * 1024)

    bed.run(bed.sim.process(write()))
    assert vm.host.ssd.bytes_written >= 64 * 1024
    assert vm.host.page_cache.contains(("img", 4), 0, 64 * 1024)
    # A subsequent read of the same range is a host-cache hit.
    ssd_reads = vm.host.ssd.bytes_read

    def read():
        yield from vm.virtio_blk.read(("img", 4), 0, 64 * 1024)

    bed.run(bed.sim.process(read()))
    assert vm.host.ssd.bytes_read == ssd_reads


def test_distinct_keys_do_not_share_cache(single_host_bed):
    bed = single_host_bed
    vm = bed.vms[0]

    def proc(key):
        yield from vm.virtio_blk.read(key, 0, 4096)

    bed.run(bed.sim.process(proc(("img", 5))))
    ssd_reads = vm.host.ssd.bytes_read
    bed.run(bed.sim.process(proc(("img", 6))))
    assert vm.host.ssd.bytes_read > ssd_reads
