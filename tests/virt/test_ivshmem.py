"""Tests for the shared ring buffer and eventfd channel primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator
from repro.virt.eventfd import EventFd
from repro.virt.ivshmem import SharedRing


# ----------------------------------------------------------------- SharedRing
def test_slots_for():
    ring = SharedRing(Simulator(), slots=8, slot_bytes=4096)
    assert ring.slots_for(0) == 1       # header-only message
    assert ring.slots_for(1) == 1
    assert ring.slots_for(4096) == 1
    assert ring.slots_for(4097) == 2
    with pytest.raises(ValueError):
        ring.slots_for(-1)


def test_put_get_roundtrip():
    sim = Simulator()
    ring = SharedRing(sim)
    got = []

    def consumer():
        payload, nbytes = yield from ring.get()
        got.append((payload, nbytes))

    def producer():
        yield from ring.put("data", 5000)

    proc = sim.process(consumer())
    sim.process(producer())
    sim.run_until_complete(proc)
    assert got == [("data", 5000)]


def test_ring_backpressure_when_full():
    sim = Simulator()
    ring = SharedRing(sim, slots=2, slot_bytes=4096)
    completed = []

    def producer():
        yield from ring.put("a", 4096)   # 1 slot
        completed.append("a")
        yield from ring.put("b", 4096)   # 1 slot — ring now full
        completed.append("b")
        yield from ring.put("c", 4096)   # must block
        completed.append("c")

    def consumer():
        yield sim.timeout(1.0)
        yield from ring.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert completed == ["a", "b", "c"]
    assert sim.now >= 1.0  # third put had to wait for the consumer


def test_message_larger_than_ring_rejected():
    sim = Simulator()
    ring = SharedRing(sim, slots=2, slot_bytes=4096)

    def producer():
        yield from ring.put("huge", 3 * 4096)

    sim.process(producer())
    with pytest.raises(SimulationError, match="chunk"):
        sim.run()


def test_get_frees_slots():
    sim = Simulator()
    ring = SharedRing(sim, slots=4, slot_bytes=4096)

    def proc():
        yield from ring.put("x", 4 * 4096)
        assert ring.occupied_slots == 4
        yield from ring.get()
        assert ring.occupied_slots == 0

    sim.run_until_complete(sim.process(proc()))


def test_max_occupancy_tracked():
    sim = Simulator()
    ring = SharedRing(sim, slots=8, slot_bytes=4096)

    def proc():
        yield from ring.put("x", 3 * 4096)
        yield from ring.put("y", 2 * 4096)
        yield from ring.get()
        yield from ring.get()

    sim.run_until_complete(sim.process(proc()))
    assert ring.max_occupancy == 5


def test_ring_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        SharedRing(sim, slots=0)
    with pytest.raises(SimulationError):
        SharedRing(sim, slot_bytes=0)


@given(sizes=st.lists(st.integers(min_value=0, max_value=3 * 4096),
                      min_size=1, max_size=20))
@settings(max_examples=30)
def test_ring_fifo_under_random_sizes(sizes):
    sim = Simulator()
    ring = SharedRing(sim, slots=4, slot_bytes=4096)
    got = []

    def producer():
        for i, size in enumerate(sizes):
            yield from ring.put(i, size)

    def consumer():
        for _ in sizes:
            payload, _ = yield from ring.get()
            got.append(payload)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_complete(proc)
    assert got == list(range(len(sizes)))


# -------------------------------------------------------------------- EventFd
def test_eventfd_signal_then_wait():
    sim = Simulator()
    efd = EventFd(sim)
    efd.signal()
    woke = []

    def waiter():
        yield from efd.wait()
        woke.append(sim.now)

    sim.run_until_complete(sim.process(waiter()))
    assert woke == [0.0]
    assert efd.signals == 1


def test_eventfd_wait_blocks_until_signal():
    sim = Simulator()
    efd = EventFd(sim)
    woke = []

    def waiter():
        yield from efd.wait()
        woke.append(sim.now)

    def signaller():
        yield sim.timeout(2.0)
        efd.signal()

    sim.process(waiter())
    sim.process(signaller())
    sim.run()
    assert woke == [2.0]


def test_eventfd_counts_accumulate():
    sim = Simulator()
    efd = EventFd(sim)
    efd.signal()
    efd.signal()
    sim.run()
    assert efd.pending == 2

    def waiter():
        yield from efd.wait()
        yield from efd.wait()

    sim.run_until_complete(sim.process(waiter()))
    assert efd.pending == 0
