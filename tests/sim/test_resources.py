"""Unit tests for Resource / PriorityResource / Lock / Store / Container."""

import pytest

from repro.sim import (
    Container,
    Lock,
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first, second, third = resource.request(), resource.request(), resource.request()
    sim.run()
    assert first.triggered and second.triggered and not third.triggered
    assert resource.count == 2 and resource.queue_length == 1


def test_resource_release_wakes_fifo():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    grants = []

    def user(tag, hold):
        req = yield resource.request()
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        resource.release(req)

    sim.process(user("a", 2.0))
    sim.process(user("b", 1.0))
    sim.process(user("c", 1.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_resource_release_unheld_is_error():
    sim = Simulator()
    resource = Resource(sim)
    req = resource.request()
    sim.run()
    resource.release(req)
    with pytest.raises(SimulationError):
        resource.release(req)


def test_resource_cancel_queued_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    held = resource.request()
    queued = resource.request()
    resource.cancel(queued)
    assert resource.queue_length == 0
    with pytest.raises(SimulationError):
        resource.cancel(held)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


# -------------------------------------------------------- PriorityResource
def test_priority_resource_serves_lowest_priority_first():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def user(tag, priority):
        req = yield resource.request(priority=priority)
        order.append(tag)
        yield sim.timeout(1.0)
        resource.release(req)

    def spawn():
        # First user grabs the slot; others queue with differing priorities.
        sim.process(user("holder", 0))
        yield sim.timeout(0.1)
        sim.process(user("low-prio", 5))
        sim.process(user("high-prio", 1))
        sim.process(user("mid-prio", 3))

    sim.process(spawn())
    sim.run()
    assert order == ["holder", "high-prio", "mid-prio", "low-prio"]


def test_priority_ties_are_fifo():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def user(tag):
        req = yield resource.request(priority=2)
        order.append(tag)
        resource.release(req)

    holder = resource.request()
    sim.process(user("first"))
    sim.process(user("second"))
    sim.run()
    resource.release(holder)
    sim.run()
    assert order == ["first", "second"]


# --------------------------------------------------------------------- Lock
def test_lock_mutual_exclusion():
    sim = Simulator()
    lock = Lock(sim)
    inside = []
    max_inside = []

    def critical(tag):
        holder = yield lock.acquire()
        inside.append(tag)
        max_inside.append(len(inside))
        yield sim.timeout(1.0)
        inside.remove(tag)
        lock.release(holder)

    for tag in range(4):
        sim.process(critical(tag))
    sim.run()
    assert max(max_inside) == 1
    assert sim.now == 4.0


def test_lock_locked_flag():
    sim = Simulator()
    lock = Lock(sim)
    assert not lock.locked
    holder = lock.acquire()
    sim.run()
    assert lock.locked
    lock.release(holder)
    assert not lock.locked


# -------------------------------------------------------------------- Store
def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    sim.process(consumer())
    for item in (1, 2, 3):
        store.put(item)
    sim.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        got.append(((yield store.get()), sim.now))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 5.0)]


def test_bounded_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        item = yield store.get()
        events.append((f"got-{item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 3.0) in events  # unblocked by the get at t=3


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_try_get_unblocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")
    blocked_put = store.put("b")
    sim.run()
    assert not blocked_put.triggered
    assert store.try_get() == "a"
    sim.run()
    assert blocked_put.triggered
    assert store.try_get() == "b"


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------- Container
def test_container_put_get_levels():
    sim = Simulator()
    container = Container(sim, capacity=100, init=10)
    container.put(40)
    sim.run()
    assert container.level == 50
    container.get(30)
    sim.run()
    assert container.level == 20


def test_container_get_blocks_until_available():
    sim = Simulator()
    container = Container(sim, capacity=100)
    times = []

    def consumer():
        yield container.get(50)
        times.append(sim.now)

    def producer():
        yield sim.timeout(2.0)
        yield container.put(50)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [2.0]


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    container = Container(sim, capacity=10, init=10)
    done = []

    def producer():
        yield container.put(5)
        done.append(sim.now)

    def consumer():
        yield sim.timeout(1.0)
        yield container.get(5)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert done == [1.0]


def test_container_validation():
    sim = Simulator()
    container = Container(sim, capacity=10)
    with pytest.raises(SimulationError):
        container.put(0)
    with pytest.raises(SimulationError):
        container.get(-1)
    with pytest.raises(SimulationError):
        container.put(11)
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=6)
