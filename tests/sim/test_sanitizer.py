"""Runtime sanitizer: deadlocks, leaks, double triggers, clock monotonicity."""


import pytest

from repro.sim import (
    Event,
    Lock,
    Resource,
    SanitizerError,
    SimulationError,
    Simulator,
    Store,
)


# ------------------------------------------------------------------- set-up
def test_sanitize_flag_arms_sanitizer():
    assert Simulator().sanitizer is None
    assert Simulator(sanitize=True).sanitizer is not None
    assert Simulator(sanitize=False).sanitizer is None


def test_env_var_arms_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Simulator().sanitizer is None
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator(sanitize=False).sanitizer is None


# ----------------------------------------------------------------- deadlock
def _two_lock_deadlock(sim):
    lock_a, lock_b = Lock(sim), Lock(sim)

    def philosopher_one():
        with lock_a.acquire() as first:
            yield first
            yield sim.timeout(1)
            with lock_b.acquire() as second:
                yield second

    def philosopher_two():
        with lock_b.acquire() as first:
            yield first
            yield sim.timeout(1)
            with lock_a.acquire() as second:
                yield second

    sim.process(philosopher_one())
    sim.process(philosopher_two())


def test_deadlock_detected_with_process_names():
    sim = Simulator(sanitize=True)
    _two_lock_deadlock(sim)
    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "philosopher_one" in message
    assert "philosopher_two" in message
    assert "deadlock" in message


def test_deadlock_silent_without_sanitizer():
    sim = Simulator()
    _two_lock_deadlock(sim)
    sim.run()  # quiesces silently: exactly the hazard the sanitizer closes


def test_run_until_complete_deadlock_report():
    sim = Simulator(sanitize=True)
    lock = Lock(sim)

    def holder():
        with lock.acquire() as token:
            yield token
            yield Event(sim)  # never triggered

    def blocked():
        with lock.acquire() as token:
            yield token

    sim.process(holder())
    process = sim.process(blocked())
    with pytest.raises(SanitizerError) as excinfo:
        sim.run_until_complete(process)
    assert "blocked" in str(excinfo.value)
    assert "holder" in str(excinfo.value)


# -------------------------------------------------------------------- leaks
def test_leaked_slot_names_owning_process():
    sim = Simulator(sanitize=True)
    resource = Resource(sim)

    def leaker():
        grant = yield resource.request()  # noqa - deliberately unreleased
        yield sim.timeout(1)

    sim.process(leaker())
    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "leaked resource slots" in message
    assert "'leaker'" in message


def test_clean_with_usage_passes_quiescence():
    sim = Simulator(sanitize=True)
    resource = Resource(sim, capacity=1)
    finished = []

    def worker(tag):
        with resource.request() as grant:
            yield grant
            yield sim.timeout(1)
        finished.append(tag)

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert finished == ["a", "b"]
    assert sim.now == 2.0


def test_idle_store_waiter_is_not_an_error():
    # A server loop parked on an empty Store is the normal end state of a
    # run, not a deadlock: quiescence only fails on held/queued slots.
    sim = Simulator(sanitize=True)
    store = Store(sim)

    def server():
        while True:
            item = yield store.get()

    def client():
        yield store.put("one")
        yield sim.timeout(1)

    sim.process(server())
    sim.process(client())
    sim.run()
    assert sim.now == 1.0


# ---------------------------------------------------------- double triggers
def test_double_succeed_diagnosed_with_first_trigger():
    sim = Simulator(sanitize=True)
    event = sim.event()

    def double_trigger():
        event.succeed("first")
        yield sim.timeout(2)
        event.succeed("second")

    sim.process(double_trigger())
    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "triggered twice" in message
    assert "t=0" in message and "t=2" in message
    assert "double_trigger" in message


def test_double_fail_diagnosed():
    sim = Simulator(sanitize=True)
    event = sim.event()
    event.fail(RuntimeError("boom"))
    event.defuse()
    with pytest.raises(SanitizerError, match="triggered twice"):
        event.fail(RuntimeError("again"))


def test_double_succeed_without_sanitizer_keeps_old_error():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError, match="already triggered"):
        event.succeed(2)


# ------------------------------------------------------------- monotonicity
def test_non_monotonic_clock_detected():
    sim = Simulator(sanitize=True)
    sim.timeout(5)
    sim.run()
    assert sim.now == 5.0
    rogue = Event(sim)
    rogue._ok = True
    rogue._value = None
    sim._push_entry((1.0, sim._seq + 1, rogue, sim._now))  # in the past
    with pytest.raises(SanitizerError, match="non-monotonic"):
        sim.run()


# ------------------------------------------------------------- end to end
def test_sanitized_cluster_read_stays_clean(monkeypatch):
    # The full vRead stack must run leak-free under the sanitizer.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.cluster import VirtualHadoopCluster
    from repro.storage.content import PatternSource

    payload = PatternSource(512 * 1024, seed=7)
    cluster = VirtualHadoopCluster(vread=True)
    assert cluster.sim.sanitizer is not None

    def load():
        yield from cluster.write_dataset("/sanitized", payload,
                                         favored=["dn1"])

    cluster.run(cluster.sim.process(load()))
    cluster.settle()

    def read():
        source = yield from cluster.clients.get().read_file("/sanitized")
        return source

    source = cluster.run(cluster.sim.process(read()))
    assert source.checksum() == payload.checksum()
