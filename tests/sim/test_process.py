"""Unit tests for processes: sequencing, waiting, interrupts, conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, SimulationError, Simulator


def test_process_runs_to_completion():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(2.0)
        trace.append(("end", sim.now))

    sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_process_receives_event_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def proc():
        got.append((yield event))

    sim.process(proc())
    event.succeed("hello")
    sim.run()
    assert got == ["hello"]


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    parent_proc = sim.process(parent())
    sim.run()
    assert parent_proc.value == (5.0, "child-result")


def test_failed_event_raises_inside_process():
    sim = Simulator()
    event = sim.event()
    caught = []

    def proc():
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    event.fail(RuntimeError("bad"))
    sim.run()
    assert caught == ["bad"]


def test_uncaught_process_exception_propagates_to_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_waiting_process_catches_child_failure():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "recovered"

    parent_proc = sim.process(parent())
    sim.run()
    assert parent_proc.value == "recovered"


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc():
        yield 42

    sim.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")
    times = []

    def proc():
        yield sim.timeout(3.0)
        value = yield event  # processed long ago
        times.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert times == [(3.0, "early")]


def test_interrupt_raises_with_cause():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((sim.now, interrupt.cause))

    victim_proc = sim.process(victim())

    def attacker():
        yield sim.timeout(2.0)
        victim_proc.interrupt("preempted")

    sim.process(attacker())
    sim.run()
    assert caught == [(2.0, "preempted")]


def test_interrupt_detaches_from_waited_event():
    sim = Simulator()
    resumed = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            pass
        yield sim.timeout(100.0)
        resumed.append(sim.now)

    victim_proc = sim.process(victim())

    def attacker():
        yield sim.timeout(1.0)
        victim_proc.interrupt()

    sim.process(attacker())
    sim.run()
    # Victim must resume from the interrupt at t=1 then wait 100 more, and
    # must NOT be resumed again by the original t=10 timeout.
    assert resumed == [101.0]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    process = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_allof_waits_for_all():
    sim = Simulator()
    done = []

    def proc():
        timeout_a = sim.timeout(1.0, "a")
        timeout_b = sim.timeout(3.0, "b")
        results = yield AllOf(sim, [timeout_a, timeout_b])
        done.append((sim.now, results[timeout_a], results[timeout_b]))

    sim.process(proc())
    sim.run()
    assert done == [(3.0, "a", "b")]


def test_anyof_fires_on_first():
    sim = Simulator()
    done = []

    def proc():
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(9.0, "slow")
        results = yield AnyOf(sim, [fast, slow])
        done.append((sim.now, list(results.values())))

    sim.process(proc())
    sim.run()
    assert done == [(1.0, ["fast"])]


def test_and_or_operators():
    sim = Simulator()
    done = []

    def proc():
        both = sim.timeout(1.0) & sim.timeout(2.0)
        yield both
        done.append(sim.now)
        either = sim.timeout(5.0) | sim.timeout(3.0)
        yield either
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [2.0, 5.0]


def test_empty_allof_fires_immediately():
    sim = Simulator()
    condition = AllOf(sim, [])
    sim.run()
    assert condition.triggered and condition.value == {}


def test_condition_propagates_failure():
    sim = Simulator()
    bad = sim.event()
    good = sim.timeout(10.0)
    caught = []

    def proc():
        try:
            yield AllOf(sim, [good, bad])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(proc())
    bad.fail(RuntimeError("nope"))
    sim.run()
    assert caught == [0.0]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def worker(tag, period):
        for _ in range(3):
            yield sim.timeout(period)
            trace.append((tag, sim.now))

    sim.process(worker("x", 1.0))
    sim.process(worker("y", 1.5))
    sim.run()
    # At t=3.0 both workers fire; y's timeout was scheduled first (at t=1.5,
    # before x's at t=2.0), so insertion order puts y ahead of x.
    assert trace == [
        ("x", 1.0), ("y", 1.5), ("x", 2.0), ("y", 3.0), ("x", 3.0), ("y", 4.5),
    ]


def test_process_is_alive_flag():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    process = sim.process(proc())
    assert process.is_alive
    sim.run()
    assert not process.is_alive
