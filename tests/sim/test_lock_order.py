"""Lock-order inversion detector: lockdep-style would-be-deadlock reports."""

import pytest

from repro.sim import Lock, Resource, SanitizerError, Simulator


def _grab_in_order(sim, first, second, hold=1):
    """A process body that acquires ``first`` then ``second``."""
    with first.acquire() as one:
        yield one
        yield sim.timeout(hold)
        with second.acquire() as two:
            yield two
            yield sim.timeout(hold)


# -------------------------------------------------------------- acceptance
def test_inverted_acquisition_flagged_before_quiescence():
    """Acceptance: two resources taken in opposite orders raise at the
    inverted acquisition — not at heap drain — naming both processes."""
    sim = Simulator(sanitize=True)
    lock_a = Lock(sim, name="lock-a")
    lock_b = Lock(sim, name="lock-b")

    def forward():
        yield from _grab_in_order(sim, lock_a, lock_b)

    def backward():
        yield from _grab_in_order(sim, lock_b, lock_a)

    sim.process(forward())
    sim.process(backward())

    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "lock-order inversion" in message
    assert "would-be deadlock" in message
    assert "'forward'" in message
    assert "'backward'" in message
    assert "lock-a" in message and "lock-b" in message
    # Fired at the inverted request (t=1), long before any quiescence
    # report could exist.
    assert sim.now == 1


def test_would_be_deadlock_caught_without_actual_deadlock():
    """The orders conflict but never overlap in time: the post-hoc
    quiescence check cannot see this; the order graph does."""
    sim = Simulator(sanitize=True)
    lock_a = Lock(sim, name="lock-a")
    lock_b = Lock(sim, name="lock-b")

    def early():
        yield from _grab_in_order(sim, lock_a, lock_b)

    def late():
        yield sim.timeout(10)  # runs after `early` fully released both
        yield from _grab_in_order(sim, lock_b, lock_a)

    sim.process(early())
    sim.process(late())
    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "lock-order inversion" in message
    assert "'early'" in message and "'late'" in message


def test_three_lock_cycle_detected():
    sim = Simulator(sanitize=True)
    lock_a = Lock(sim, name="lock-a")
    lock_b = Lock(sim, name="lock-b")
    lock_c = Lock(sim, name="lock-c")

    def p_ab():
        yield from _grab_in_order(sim, lock_a, lock_b)

    def p_bc():
        yield sim.timeout(10)
        yield from _grab_in_order(sim, lock_b, lock_c)

    def p_ca():
        yield sim.timeout(20)
        yield from _grab_in_order(sim, lock_c, lock_a)

    # a->b, b->c are fine; c->a closes the cycle.
    sim.process(p_ab())
    sim.process(p_bc())
    sim.process(p_ca())
    with pytest.raises(SanitizerError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "lock-order inversion" in message
    assert "'p_ca'" in message  # the closing acquisition
    assert "prior chain" in message


# ---------------------------------------------------------------- negatives
def test_consistent_order_is_clean():
    sim = Simulator(sanitize=True)
    lock_a = Lock(sim, name="lock-a")
    lock_b = Lock(sim, name="lock-b")

    def worker():
        yield from _grab_in_order(sim, lock_a, lock_b)

    for _ in range(3):
        sim.process(worker())
    sim.run()  # no error: everyone agrees on the order
    assert sim.now > 0


def test_single_lock_reacquire_by_other_process_clean():
    sim = Simulator(sanitize=True)
    lock = Lock(sim, name="only")

    def user():
        with lock.acquire() as token:
            yield token
            yield sim.timeout(1)

    sim.process(user())
    sim.process(user())
    sim.run()


def test_semaphore_reentrant_acquire_no_self_edge():
    # Two slots of the same capacity-2 resource held at once by one
    # process: no A->A ordering edge, no false cycle.
    sim = Simulator(sanitize=True)
    pool = Resource(sim, capacity=2, name="pool")

    def hog():
        first = pool.request()
        yield first
        second = pool.request()
        yield second
        yield sim.timeout(1)
        pool.release(second)
        pool.release(first)

    sim.process(hog())
    sim.run()


def test_detector_inert_without_sanitizer():
    sim = Simulator()
    lock_a, lock_b = Lock(sim), Lock(sim)

    def forward():
        yield from _grab_in_order(sim, lock_a, lock_b)

    def backward():
        yield from _grab_in_order(sim, lock_b, lock_a)

    sim.process(forward())
    sim.process(backward())
    sim.run()  # wedges silently — exactly the hazard sanitize=True closes


def test_resource_names_default_to_anonymous_repr():
    sim = Simulator(sanitize=True)
    assert "Resource" in repr(Resource(sim))
    named = Resource(sim, name="disk-queue")
    assert "disk-queue" in repr(named)
