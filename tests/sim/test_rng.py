"""Tests for deterministic random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream_sequence():
    a = RandomStreams(seed=42).stream("disk")
    b = RandomStreams(seed=42).stream("disk")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("disk")
    b = RandomStreams(seed=2).stream("disk")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent():
    streams = RandomStreams(seed=7)
    disk = streams.stream("disk")
    net = streams.stream("net")
    # Draw from one stream; the other's sequence must be unaffected.
    reference = RandomStreams(seed=7).stream("net")
    disk.random()
    disk.random()
    assert [net.random() for _ in range(5)] == \
        [reference.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_stream_names_matter():
    streams = RandomStreams(seed=0)
    assert [streams.stream("a").random() for _ in range(3)] != \
        [streams.stream("b").random() for _ in range(3)]
