"""Kernel fast paths: absolute timers, lazy compaction, occupancy stats.

Covers the PR 5 allocation-diet machinery: ``schedule_at`` /
``AbsoluteTimeout`` exactness, cancelled-entry discarding and threshold
compaction, the process-wide kernel counters behind ``python -m repro
profile``, slotted event classes, and the bounded-``run`` quiescence
regression (a bounded run that outlives every event must still report
leaked waiters in sanitize mode).
"""

import pytest

from repro.sim import Event, Lock, SanitizerError, SimulationError, Simulator
from repro.sim.events import AbsoluteTimeout, Timeout
from repro.sim.kernel import _COMPACT_MIN, kernel_stats, reset_kernel_stats
from repro.sim.process import Process


# ----------------------------------------------------------- absolute timers
def test_schedule_at_lands_exactly():
    sim = Simulator()
    sim.timeout(0.3)
    sim.run()
    # 0.3 + (0.7 - 0.3) != 0.7 in floats; schedule_at must not round-trip.
    event = sim.event()
    event._ok = True
    event._value = None
    sim.schedule_at(0.7, event)
    sim.run()
    assert sim.now == 0.7


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, sim.event())


def test_absolute_timeout_fires_at_absolute_time():
    sim = Simulator()
    sim.timeout(0.25)
    sim.run()
    fired = []
    timer = AbsoluteTimeout(sim, 0.75)
    timer.callbacks.append(lambda event: fired.append(sim.now))
    sim.run()
    assert fired == [0.75]


def test_absolute_timeout_in_past_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        AbsoluteTimeout(sim, 0.25)


def test_absolute_timeout_cancel_is_silent():
    sim = Simulator()
    timer = AbsoluteTimeout(sim, 5.0)
    timer.callbacks.append(lambda event: pytest.fail("cancelled timer fired"))
    timer.cancel()
    sim.run()
    assert sim.now == 0.0  # discarded, clock never advanced to it


# ------------------------------------------------------ cancelled-entry diet
def test_peek_skips_cancelled_head():
    sim = Simulator()
    doomed = sim.timeout(1.0)
    sim.timeout(2.0)
    doomed.cancel()
    assert sim.peek() == 2.0


def test_cancelled_timers_discarded_not_fired():
    sim = Simulator()
    fired = []
    doomed = sim.timeout(1.0)
    doomed.callbacks.append(lambda event: fired.append("doomed"))
    keeper = sim.timeout(2.0)
    keeper.callbacks.append(lambda event: fired.append("keeper"))
    doomed.cancel()
    sim.run()
    assert fired == ["keeper"]
    assert sim.cancelled_discarded == 1


def test_compaction_triggers_at_threshold():
    sim = Simulator()
    timers = [sim.timeout(float(i + 1)) for i in range(2 * _COMPACT_MIN)]
    assert sim.compactions == 0
    # Cancel until cancelled entries are >= _COMPACT_MIN and at least half
    # the heap: the lazy sweep must rebuild in place.
    for timer in timers[:_COMPACT_MIN + 1]:
        timer.cancel()
    assert sim.compactions == 1
    assert sim.cancelled_discarded >= _COMPACT_MIN
    assert len(sim._heap) < 2 * _COMPACT_MIN
    sim.run()  # survivors still fire in order off the rebuilt heap
    assert sim.now == 2.0 * _COMPACT_MIN


def test_no_compaction_below_threshold():
    sim = Simulator()
    timers = [sim.timeout(float(i + 1)) for i in range(64)]
    for timer in timers[:32]:
        timer.cancel()
    assert sim.compactions == 0  # plenty cancelled, but < _COMPACT_MIN


# ------------------------------------------------------------ kernel counters
def test_kernel_stats_reset_and_accumulate():
    reset_kernel_stats()
    sim = Simulator()

    def ticker():
        for _ in range(10):
            yield sim.timeout(0.1)

    sim.run_until_complete(sim.process(ticker()))
    stats = kernel_stats()
    assert stats["simulators"] == 1
    assert stats["events_processed"] >= 10
    assert stats["events_scheduled"] >= stats["events_processed"]
    reset_kernel_stats()
    assert kernel_stats()["events_processed"] == 0


def test_per_simulator_counters():
    sim = Simulator()
    for i in range(5):
        sim.timeout(float(i))
    sim.run()
    assert sim.events_processed == 5


def test_heap_high_water_sampled():
    reset_kernel_stats()
    sim = Simulator()
    # > 256 concurrent timers so at least one 256-event sample observes a
    # big heap (high-water is a sampled lower bound, not an exact max).
    for i in range(600):
        sim.timeout(1.0 + i * 1e-6)

    sim.run()
    assert sim.heap_high_water > 0
    assert kernel_stats()["heap_high_water"] == sim.heap_high_water


# ------------------------------------------------------------- slotted events
@pytest.mark.parametrize("instance", [
    lambda sim: Event(sim),
    lambda sim: Timeout(sim, 1.0),
    lambda sim: AbsoluteTimeout(sim, 1.0),
    lambda sim: Process(sim, (x for x in ())),
])
def test_kernel_objects_are_slotted(instance):
    obj = instance(Simulator())
    with pytest.raises(AttributeError):
        obj.arbitrary_new_attribute = 1


# ------------------------------------------------- bounded-run quiescence fix
def _leaky_waiter(sim):
    lock = Lock(sim)

    def holder_forever():
        token = lock._resource.request()
        yield token
        yield sim.timeout(1.0)
        # never releases: the waiter below is deadlocked from here on

    def waiter():
        yield sim.timeout(0.5)
        yield lock._resource.request()

    sim.process(holder_forever())
    sim.process(waiter())


def test_bounded_run_past_drained_heap_checks_quiescence():
    sim = Simulator(sanitize=True)
    _leaky_waiter(sim)
    # The heap drains at t=1.0; the bounded run outlives it.  Before PR 5
    # this path skipped check_quiescence and the leak went unreported.
    with pytest.raises(SanitizerError, match="leaked|deadlock"):
        sim.run(until=10.0)


def test_bounded_run_stopping_early_does_not_check_quiescence():
    sim = Simulator(sanitize=True)
    _leaky_waiter(sim)
    sim.run(until=0.25)  # events still pending beyond the bound: no check
    assert sim.now == 0.25


def test_unbounded_run_still_checks_quiescence():
    sim = Simulator(sanitize=True)
    _leaky_waiter(sim)
    with pytest.raises(SanitizerError, match="leaked|deadlock"):
        sim.run()
