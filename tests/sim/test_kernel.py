"""Unit tests for the discrete-event kernel: clock, events, run loop."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_advances_exactly_to_until():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_processes_events_at_until():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(3.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=3.0)
    assert fired == [3.0]


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    event.succeed("payload")
    sim.run()
    assert event.ok and event.value == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_failed_undefused_event_crashes_run():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_failed_defused_event_is_silent():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom"))
    event.defuse()
    sim.run()  # must not raise


def test_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        event = sim.event()
        event.callbacks.append(lambda _, t=tag: order.append(t))
        event.succeed(None)
    sim.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    assert sim.run_until_complete(sim.process(proc())) == 42


def test_run_until_complete_detects_deadlock():
    sim = Simulator()

    def proc():
        yield sim.event()  # never fires

    process = sim.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(process)


def test_run_until_complete_reraises_process_error():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    process = sim.process(proc())
    with pytest.raises(ValueError, match="inner"):
        sim.run_until_complete(process)


def test_callbacks_receive_the_event():
    sim = Simulator()
    seen = []
    event = sim.event()
    event.callbacks.append(seen.append)
    event.succeed("x")
    sim.run()
    assert seen == [event]


def test_event_trigger_mirrors_success():
    sim = Simulator()
    source = sim.event()
    mirror = sim.event()
    source.callbacks.append(mirror.trigger)
    source.succeed(99)
    sim.run()
    assert mirror.ok and mirror.value == 99


def test_event_trigger_mirrors_failure():
    sim = Simulator()
    source = sim.event()
    mirror = sim.event()
    source.callbacks.append(mirror.trigger)
    source.fail(KeyError("k"))
    mirror.callbacks.append(lambda e: None)
    with pytest.raises(KeyError):
        sim.run()
