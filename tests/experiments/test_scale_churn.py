"""End-to-end coverage for the cluster-churn extension experiment."""

import pytest

from repro.experiments import registry
from repro.experiments.scale_churn import ChurnPoint, _measure, assemble


def test_unknown_churn_level_rejected():
    with pytest.raises(ValueError, match="unknown churn level"):
        _measure(False, "tornado", 1 << 20, 0.5)


def test_static_point_never_touches_membership():
    point = _measure(False, "none", 512 << 10, 0.4, seed=3)
    assert isinstance(point, ChurnPoint)
    assert point.reads > 0 and point.mean_ms > 0
    assert point.membership_version == 0
    assert point.degraded_fraction == 0.0
    assert point.reprobes == point.recoveries == 0
    assert point.re_replications == 0


def test_migrate_point_recovers_and_is_deterministic():
    point = _measure(True, "migrate", 512 << 10, 1.0, seed=2)
    assert point.membership_version == 1
    assert point.reads > 0
    # The daemon crash degraded the library; the restart recovered it
    # inside the window via the re-probe loop.
    assert 0.0 < point.degraded_fraction < 1.0
    assert point.reprobes >= 1
    assert point.recoveries >= 1
    assert point.recovery_ms > 0
    assert _measure(True, "migrate", 512 << 10, 1.0, seed=2) == point


def test_assemble_builds_figure():
    def fake(version, degraded=0.0):
        return ChurnPoint(reads=10, mean_ms=1.0, p99_ms=2.0,
                          degraded_fraction=degraded, reprobes=1,
                          recoveries=1, recovery_ms=100.0,
                          re_replications=2,
                          re_replication_bytes=4 << 20, rebalance_moves=1,
                          membership_version=version)

    values = {("vanilla", "none"): fake(0), ("vanilla", "full"): fake(3),
              ("vRead", "none"): fake(0), ("vRead", "full"): fake(3, 0.25)}
    result = assemble(values, churn_levels=("none", "full"),
                      file_bytes=2 << 20, duration=2.0)
    assert result.figure.startswith("Extension")
    assert set(result.series) == {"vanilla p99", "vRead p99",
                                  "vRead degraded %"}
    assert result.series["vRead degraded %"] == [0.0, 25.0]
    assert "membership version 3" in result.notes


def test_registered_in_extension_group():
    spec = registry.get("scale-churn")
    assert spec.group == "extension"
    assert spec.fanout is not None
    quick = spec.params("quick")
    assert quick["churn_levels"] == ("none", "migrate")
    full = spec.params("default")
    assert full["churn_levels"] == ("none", "migrate", "full")
