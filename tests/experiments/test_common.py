"""Tests for experiment infrastructure: results, views, breakdown windows."""

import pytest

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import (
    BreakdownResult,
    BreakdownViews,
    FigureResult,
    client_view,
    daemon_view,
    datanode_view,
    load_dataset,
    pct_improvement,
)
from repro.metrics.accounting import CLIENT_APPLICATION, UtilizationBreakdown
from repro.storage.content import PatternSource


def test_figure_result_value_and_render():
    figure = FigureResult("Fig X", "demo", "size", ["a", "b"],
                          {"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, unit="ms",
                          notes="hello")
    assert figure.value("s1", "b") == 2.0
    text = figure.render()
    assert "Fig X" in text and "s1 (ms)" in text and "hello" in text
    with pytest.raises(ValueError):
        figure.value("s1", "missing")


def test_figure_result_value_errors_name_whats_available():
    figure = FigureResult("Fig X", "demo", "size", ["a", "b"],
                          {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
    with pytest.raises(KeyError, match=r"available series.*s1.*s2"):
        figure.value("s3", "a")
    with pytest.raises(ValueError, match=r"available size values.*a.*b"):
        figure.value("s1", "c")


def test_breakdown_result_render_orders_categories():
    breakdown = UtilizationBreakdown({CLIENT_APPLICATION: 0.5}, 1.0, 1)
    result = BreakdownResult("Fig Y", "demo", {"vRead": breakdown})
    text = result.render()
    assert "client-application" in text
    assert "50.0%" in text


def test_breakdown_result_to_csv():
    breakdown = UtilizationBreakdown({CLIENT_APPLICATION: 0.5}, 1.0, 1)
    result = BreakdownResult("Fig Y", "demo", {"vRead": breakdown,
                                               "vanilla": breakdown})
    lines = result.to_csv().splitlines()
    assert lines[0].startswith("bar,")
    assert "client-application" in lines[0] and lines[0].endswith("total")
    assert len(lines) == 3
    assert lines[1].startswith("vRead,0.5")


def test_breakdown_views_requires_mark():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    views = BreakdownViews(cluster)
    with pytest.raises(RuntimeError):
        views.collect({"all": []})


def test_breakdown_views_measures_window():
    cluster = VirtualHadoopCluster(block_size=1 << 20)
    load_dataset(cluster, "/f", PatternSource(256 * 1024, seed=1),
                 favored=["dn1"])
    views = BreakdownViews(cluster)
    views.mark()

    def read():
        yield from cluster.clients.get().read_file("/f")

    cluster.run(cluster.sim.process(read()))
    collected = views.collect({"client": client_view(cluster),
                               "datanode": datanode_view(cluster, 0)})
    assert collected["client"].total > 0
    assert collected["datanode"].total > 0


def test_view_thread_name_lists():
    cluster = VirtualHadoopCluster(block_size=1 << 20, vread=True)
    names = client_view(cluster)
    assert "client.vcpu" in names and "client.vhost-net" in names
    dn = datanode_view(cluster, 1)
    assert "datanode2.vcpu" in dn
    daemons_all = daemon_view(cluster)
    daemons_h1 = daemon_view(cluster, host_index=0)
    assert "host1.vread-hostd" in daemons_h1
    assert all(name.startswith("host1.") for name in daemons_h1)
    assert set(daemons_h1) < set(daemons_all)


def test_pct_improvement():
    assert pct_improvement(100.0, 150.0) == pytest.approx(50.0)


def test_pct_improvement_rejects_zero_baseline():
    with pytest.raises(ValueError, match="near zero"):
        pct_improvement(0.0, 10.0)
    with pytest.raises(ValueError, match="near zero"):
        pct_improvement(1e-15, 10.0)
