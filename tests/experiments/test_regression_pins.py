"""Byte-identity pins: the default topology reproduces the PR 3 numbers.

The topology refactor promises that a bare ``VirtualHadoopCluster()`` (the
``paper_fig10()`` spec) is *bit-for-bit* identical to the pre-refactor
builder.  These goldens were captured from the pre-refactor tree at small
dataset sizes; any drift in event ordering, placement, or fabric timing
for the single-rack path shows up here as an exact-string mismatch.
"""

from repro.cluster import VirtualHadoopCluster
from repro.experiments.dfsio_sweep import run_cell
from repro.experiments.fig09_vread_delay import run as run_fig09
from repro.experiments.runner import canonical_json, jsonable
from repro.hostmodel.frequency import GHZ_2_0
from repro.storage.content import PatternSource

FIG09_NO_CACHE = (
    '{"figure":"Fig 9(a)","notes":"file=2MB, co-located read @2.0GHz",'
    '"series":{"vRead-2vms":[0.2923640650000029,2.839347440000004,'
    '5.303550880000004],"vRead-4vms":[0.34432721500000585,'
    '2.9268474400000044,5.429086480000004],"vanilla-2vms":'
    '[0.43945470000001013,3.794328800000017,7.289841600000029],'
    '"vanilla-4vms":[0.5308609500000127,4.006828800000023,'
    '7.639841600000039]},"title":"Data access delay without cache",'
    '"unit":"ms","x_label":"size of request","x_values":["64KB","1MB",'
    '"4MB"]}')

FIG09_CACHE = (
    '{"figure":"Fig 9(b)","notes":"file=2MB, co-located read @2.0GHz",'
    '"series":{"vRead-2vms":[0.09452288750000197,0.6362524000000057,'
    '0.9613608000000086],"vRead-4vms":[0.15444627500000474,'
    '0.6362524000000057,1.0363608000000109],"vanilla-2vms":'
    '[0.194721900000007,1.0316040000000202,1.7893920000000354],'
    '"vanilla-4vms":[0.2611281500000069,1.2598184000000245,'
    '2.113160000000043]},"title":"Data access delay with cache",'
    '"unit":"ms","x_label":"size of request","x_values":["64KB","1MB",'
    '"4MB"]}')

FIG11_CELLS = {
    ("colocated", "vanilla"):
        '{"read_cpu_ms":2.4241088,"read_mbps":272.9747367370954,'
        '"reread_cpu_ms":2.220108800000002,"reread_mbps":977.8588150683862,'
        '"write_mbps":317.39434046846225}',
    ("colocated", "vRead"):
        '{"read_cpu_ms":1.5866836,"read_mbps":364.84114064852423,'
        '"reread_cpu_ms":1.382683599999999,"reread_mbps":1577.4778070901455,'
        '"write_mbps":317.39434046846225}',
    ("remote", "vanilla"):
        '{"read_cpu_ms":2.4241088,"read_mbps":244.72297873003797,'
        '"reread_cpu_ms":2.4241088000000013,"reread_mbps":404.52716612936865,'
        '"write_mbps":282.74708753857095}',
    ("remote", "vRead"):
        '{"read_cpu_ms":1.5866835999999997,"read_mbps":272.7825579495914,'
        '"reread_cpu_ms":1.382683599999999,"reread_mbps":641.2703289671092,'
        '"write_mbps":282.74708753857095}',
}

#: (vread,) -> (t_load, t_end, sha256 of the read-back payload).
DEFAULT_CLUSTER_DIGEST = {
    False: (0.007037635999999998, 0.009158844000000011,
            "fbedda7f44c0184cd55ae1611ce25d169266950165d113d23a538f95d5a2d48a"),
    True: (0.007101635999999998, 0.008382140799999997,
           "fbedda7f44c0184cd55ae1611ce25d169266950165d113d23a538f95d5a2d48a"),
}


def test_fig09_pins_bit_for_bit():
    result = run_fig09(file_bytes=2 << 20)
    assert canonical_json(jsonable(result.no_cache)) == FIG09_NO_CACHE
    assert canonical_json(jsonable(result.cache)) == FIG09_CACHE


def test_fig11_cells_pin_bit_for_bit():
    for (scenario, mode), golden in FIG11_CELLS.items():
        cell = run_cell(scenario, GHZ_2_0, 2, mode, file_bytes=4 << 20,
                        n_files=1)
        assert canonical_json(jsonable(cell)) == golden, (scenario, mode)


def test_default_cluster_timeline_pins_bit_for_bit():
    for vread, (t_load, t_end, checksum) in DEFAULT_CLUSTER_DIGEST.items():
        cluster = VirtualHadoopCluster(vread=vread)
        payload = PatternSource(2 << 20, seed=3)

        def load():
            yield from cluster.write_dataset("/pin/data", payload,
                                             favored=["dn1"])

        cluster.run(cluster.sim.process(load()))
        cluster.settle()
        assert cluster.sim.now == t_load, ("load", vread)

        def read():
            source = yield from cluster.clients.get().read_file("/pin/data")
            return source

        got = cluster.run(cluster.sim.process(read()))
        assert cluster.sim.now == t_end, ("read", vread)
        assert got.checksum() == checksum
