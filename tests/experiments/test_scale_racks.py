"""End-to-end coverage for the multi-rack scale-out experiment."""

from repro.experiments import registry
from repro.experiments.scale_racks import RackPoint, _measure, assemble


def test_measure_two_racks_end_to_end():
    point = _measure(True, 2, 1 << 20)
    assert isinstance(point, RackPoint)
    assert point.aggregate_mbps > 0
    assert set(point.per_rack_mbps) == {"rack1", "rack2"}
    assert set(point.per_host_mbps) == {"host1", "host2", "host3", "host4"}
    assert all(v > 0 for v in point.per_rack_mbps.values())
    # Rack-aware placement put replica 2 on the remote rack.
    assert point.cross_rack_blocks > 0
    assert point.aggregate_mbps == sum(point.per_rack_mbps.values())


def test_single_rack_has_no_cross_rack_blocks():
    point = _measure(False, 1, 1 << 20)
    assert set(point.per_rack_mbps) == {"rack1"}
    assert point.cross_rack_blocks == 0


def test_vread_beats_vanilla_within_a_rack():
    vanilla = _measure(False, 1, 1 << 20)
    vread = _measure(True, 1, 1 << 20)
    assert vread.aggregate_mbps > vanilla.aggregate_mbps


def test_assemble_builds_figure():
    points = {}
    for mode in ("vanilla", "vRead"):
        for n_racks in (1, 2):
            points[(mode, n_racks)] = _measure(mode == "vRead", n_racks,
                                               1 << 20)
    result = assemble(points, rack_counts=(1, 2), file_bytes=1 << 20)
    assert result.figure.startswith("Extension")
    assert set(result.series) == {"vanilla", "vRead"}
    assert len(result.series["vRead"]) == 2
    assert "rack" in result.notes


def test_registry_exposes_scale_racks():
    spec = registry.get("scale-racks")
    assert spec.fanout is not None
    params = spec.params("quick")
    assert params["rack_counts"] == (1, 2)
    points = spec.fanout.points(params)
    assert ("vanilla", 1) in points and ("vRead", 2) in points
