"""Tests for figure-to-CSV export."""

from repro.experiments.common import BreakdownResult, FigureResult


def test_to_csv_header_and_rows():
    figure = FigureResult("Fig X", "demo", "freq", ["1.6GHz", "2.0GHz"],
                          {"vanilla": [100.0, 120.5],
                           "vRead": [150.0, 170.25]}, unit="MBps")
    csv = figure.to_csv()
    lines = csv.splitlines()
    assert lines[0] == "freq,vanilla,vRead"
    # Order within a row follows the series dict.
    assert lines[1].split(",") == ["1.6GHz", "100.0", "150.0"]
    assert lines[2].split(",") == ["2.0GHz", "120.5", "170.25"]


def test_to_csv_roundtrips_values():
    figure = FigureResult("F", "t", "x", [1, 2],
                          {"s": [0.1234567890123, 2.0]})
    csv = figure.to_csv()
    value = float(csv.splitlines()[1].split(",")[1])
    assert value == 0.1234567890123  # repr() keeps full precision


def test_to_csv_quotes_commas_per_rfc4180():
    figure = FigureResult("F", "t", "freq", ['1.6GHz, turbo "boost"'],
                          {"re-read, cached": [1.5], "plain": [2.0]})
    lines = figure.to_csv().splitlines()
    assert lines[0] == 'freq,"re-read, cached",plain'
    assert lines[1] == '"1.6GHz, turbo ""boost""",1.5,2.0'


def test_breakdown_to_csv_quotes_labels():
    from repro.metrics.accounting import UtilizationBreakdown

    result = BreakdownResult(
        "F", "t", {'vRead, warm': UtilizationBreakdown({"user": 0.5}, 1.0,
                                                       cores=1)})
    lines = result.to_csv().splitlines()
    assert lines[1].startswith('"vRead, warm",')
