"""Tests for the registry and the parallel experiment runner.

The determinism contract is the load-bearing one: a sweep fanned out over
worker processes must produce byte-identical results to the serial run,
because every point's seed derives from ``(root_seed, point)`` rather than
from scheduling order.
"""

import pytest

from repro.cli import EXPERIMENTS
from repro.experiments import registry, runner

# Small enough to keep the fork+simulate round under a few seconds.
_CHAOS_PARAMS = {"cases": 3, "file_bytes": 1 << 20, "faults": 2,
                 "horizon": 0.002}


def test_derive_seed_is_stable_and_point_sensitive():
    seed = runner.derive_seed(0, ("case", 0))
    assert seed == runner.derive_seed(0, ("case", 0))  # process-independent
    assert seed != runner.derive_seed(0, ("case", 1))
    assert seed != runner.derive_seed(1, ("case", 0))


def test_parallel_chaos_sweep_matches_serial_byte_for_byte():
    serial = runner.run_experiment("chaos-sweep", jobs=1, seed=0,
                                   params=_CHAOS_PARAMS)
    parallel = runner.run_experiment("chaos-sweep", jobs=4, seed=0,
                                     params=_CHAOS_PARAMS)
    assert runner.canonical_json(serial) == runner.canonical_json(parallel)
    # The storms actually fired — the equality above compared real activity.
    assert sum(serial.series["faults"]) > 0
    assert all(v == 1.0 for v in serial.series["verified"])


def test_parallel_storage_tiers_matches_serial_byte_for_byte():
    params = {"file_bytes": 1 << 20}
    serial = runner.run_experiment("ablation-storage-tiers", jobs=1, seed=0,
                                   params=params)
    parallel = runner.run_experiment("ablation-storage-tiers", jobs=4,
                                     seed=0, params=params)
    assert runner.canonical_json(serial) == runner.canonical_json(parallel)
    # Faster media means faster cold reads, in every mode.
    for mode in ("vanilla", "vRead"):
        cold = serial.series[f"{mode} cold"]
        assert cold[0] < cold[1] < cold[2]  # hdd < ssd < nvme


def test_root_seed_changes_the_sweep():
    one = runner.run_experiment("chaos-sweep", jobs=1, seed=0,
                                params=_CHAOS_PARAMS)
    other = runner.run_experiment("chaos-sweep", jobs=1, seed=1,
                                  params=_CHAOS_PARAMS)
    assert runner.canonical_json(one) != runner.canonical_json(other)


def test_every_cli_experiment_is_registered_with_profiles():
    for name in EXPERIMENTS:
        spec = registry.get(name)
        assert callable(spec.resolve())
        for profile in registry.PROFILES:
            assert isinstance(spec.params(profile), dict)


def test_unknown_names_are_diagnosed():
    with pytest.raises(KeyError, match="fig11"):
        registry.get("fig99")
    with pytest.raises(KeyError, match="unknown profile"):
        registry.get("fig11").params("huge")


def test_runner_rejects_zero_jobs():
    with pytest.raises(ValueError, match="jobs"):
        runner.run_experiment("chaos-sweep", jobs=0)


def test_jsonable_normalizes_containers():
    data = {("a", 1): (1, 2.5, None), "b": [True, "x"]}
    assert runner.jsonable(data) == {"('a', 1)": [1, 2.5, None],
                                     "b": [True, "x"]}


def test_fanout_points_cover_the_grid():
    spec = registry.get("fig11")
    points = spec.fanout.points(spec.params("quick"))
    assert len(points) == len(set(points))  # distinct, hashable
    from repro.experiments.dfsio_sweep import MODES, SCENARIOS, VM_COUNTS
    from repro.hostmodel.frequency import PAPER_FREQUENCIES
    assert len(points) == (len(SCENARIOS) * len(PAPER_FREQUENCIES)
                           * len(VM_COUNTS) * len(MODES))
