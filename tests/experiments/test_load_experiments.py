"""Registry + determinism tests for the open-loop load experiments."""

import pytest

from repro.experiments import registry, runner
from repro.experiments.load_sweep import LoadSweepResult
from repro.experiments.load_sweep import run as run_load_sweep

TINY_SWEEP = {"rates": (30.0,), "duration": 0.8, "n_tenants": 2,
              "request_bytes": 64 << 10, "deadline_ms": 2.0,
              "arrival_kind": "poisson"}
TINY_TENANTS = {"tenant_counts": (1, 2), "rate": 25.0, "duration": 0.8,
                "request_bytes": 64 << 10, "deadline_ms": 2.0,
                "arrival_kind": "poisson"}


def test_registered_with_fanouts():
    for name in ("load-sweep", "scale-tenants"):
        spec = registry.get(name)
        assert spec.group == "extension"
        assert spec.fanout is not None
        for profile in ("quick", "default", "paper"):
            assert spec.params(profile)


def test_load_sweep_jobs_byte_identical():
    serial = runner.run_experiment("load-sweep", jobs=1, seed=11,
                                   params=dict(TINY_SWEEP))
    parallel = runner.run_experiment("load-sweep", jobs=4, seed=11,
                                     params=dict(TINY_SWEEP))
    assert isinstance(serial, LoadSweepResult)
    assert serial.digest() == parallel.digest()
    assert (runner.canonical_json(serial)
            == runner.canonical_json(parallel))


def test_scale_tenants_jobs_byte_identical():
    serial = runner.run_experiment("scale-tenants", jobs=1, seed=4,
                                   params=dict(TINY_TENANTS))
    parallel = runner.run_experiment("scale-tenants", jobs=3, seed=4,
                                     params=dict(TINY_TENANTS))
    assert serial.digest() == parallel.digest()
    assert (runner.canonical_json(serial)
            == runner.canonical_json(parallel))


def test_serial_builder_matches_fanout_path():
    """``run()`` (the plain builder) derives the same per-point seeds."""
    via_fanout = runner.run_experiment("load-sweep", jobs=1, seed=11,
                                       params=dict(TINY_SWEEP))
    via_builder = run_load_sweep(seed=11, **TINY_SWEEP)
    assert (runner.canonical_json(via_builder)
            == runner.canonical_json(via_fanout))


def test_seed_actually_matters():
    one = runner.run_experiment("load-sweep", jobs=1, seed=1,
                                params=dict(TINY_SWEEP))
    two = runner.run_experiment("load-sweep", jobs=1, seed=2,
                                params=dict(TINY_SWEEP))
    assert one.digest() != two.digest()


def test_result_accessors():
    result = runner.run_experiment("load-sweep", jobs=1, seed=0,
                                   params=dict(TINY_SWEEP))
    assert result.p99_series("vRead") and result.p99_series("vanilla")
    assert len(result.goodput_series("vanilla", "chaos")) == 1
    assert all(0.0 <= v <= 1.0
               for v in result.violation_series("vanilla", "chaos"))
    report = result.report("vRead", "healthy", 30.0)
    assert set(report.tenants) == {"tenant1", "tenant2"}
    for row in report.tenants.values():
        assert row.p99_9_ms >= row.p99_ms >= row.p50_ms
    with pytest.raises(KeyError, match="no sweep point"):
        result.report("vRead", "healthy", 999.0)
    rendered = result.render()
    assert "healthy" in rendered and "chaos" in rendered