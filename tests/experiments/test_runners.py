"""Smoke + shape tests for every experiment runner at tiny scale.

The benchmarks exercise the full-size shape checks; these tests verify the
runners' structure, determinism, and basic directionality quickly enough
for the unit suite.
"""

import pytest

from repro.experiments import (
    ablation_direct_read,
    ablation_packet_size,
    ablation_ring,
    ablation_transport,
    fig02_motivation_delay,
    fig03_iothread_sync,
    fig09_vread_delay,
    fig11_dfsio_throughput,
    fig13_write_throughput,
    table2_hbase,
    table3_hive_sqoop,
)
from repro.experiments.cpu_breakdowns import run_fig06
from repro.experiments.dfsio_sweep import DfsioCell, clear_cache, run_cell

TINY = 4 << 20  # 4MB datasets keep these tests fast


def test_fig02_structure_and_direction():
    result = fig02_motivation_delay.run(file_bytes=TINY,
                                        request_sizes=(64 * 1024, 1 << 20))
    assert result.no_cache.x_values == ["64KB", "1MB"]
    for figure in (result.no_cache, result.cache):
        assert set(figure.series) == {"inter-VM", "local"}
        for i in range(2):
            assert figure.series["inter-VM"][i] > figure.series["local"][i]


def test_fig03_structure():
    result = fig03_iothread_sync.run(request_sizes=(32 * 1024,),
                                     duration=0.05)
    assert set(result.series) == {"2vms", "4vms"}
    assert result.series["4vms"][0] < result.series["2vms"][0]


def test_fig06_savings_positive():
    result = run_fig06(file_bytes=TINY)
    assert result.client_saving_pct() > 0
    assert result.serving_saving_pct() > 0
    rendered = result.render()
    assert "Fig 6(a)" in rendered and "Fig 6(b)" in rendered


def test_fig09_reductions():
    result = fig09_vread_delay.run(file_bytes=TINY,
                                   request_sizes=(1 << 20,))
    assert result.reduction_pct("2vms", False, "1MB") > 0
    assert result.reduction_pct("4vms", True, "1MB") > 0


def test_dfsio_cell_and_cache():
    clear_cache()
    cell = run_cell("colocated", 2.0e9, 2, "vanilla", file_bytes=TINY,
                    n_files=1)
    assert isinstance(cell, DfsioCell)
    assert cell.read_mbps > 0 and cell.reread_mbps > cell.read_mbps
    assert cell.write_mbps > 0 and cell.read_cpu_ms > 0
    # Memoized: second call returns the identical object.
    again = run_cell("colocated", 2.0e9, 2, "vanilla", file_bytes=TINY,
                     n_files=1)
    assert again is cell
    clear_cache()


def test_dfsio_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_cell("weird", 2.0e9, 2, "vanilla", file_bytes=TINY, n_files=1)


def test_fig11_tiny_sweep():
    clear_cache()
    result = fig11_dfsio_throughput.run(frequencies=(2.0e9,),
                                        file_bytes=TINY, n_files=1)
    assert len(result.panels) == 6
    assert result.improvement_pct("colocated", "read", "2.0GHz", 2) > 0
    clear_cache()


def test_fig13_negligible_overhead():
    clear_cache()
    result = fig13_write_throughput.run(scenarios=("colocated",),
                                        file_bytes=TINY, n_files=1)
    vanilla = result.series["vanilla"][0]
    vread = result.series["vRead"][0]
    assert abs(vanilla - vread) / vanilla < 0.05
    clear_cache()


def test_table2_tiny():
    result = table2_hbase.run(n_rows=2048, rows_per_region=1024)
    for operation in table2_hbase.OPERATIONS:
        assert result.improvement_pct(operation) > 0
    assert "Table 2" in result.render()


def test_table3_tiny():
    result = table3_hive_sqoop.run(n_rows=16_384, rows_per_file=8_192)
    assert result.hive_reduction_pct > 0
    assert result.sqoop_reduction_pct > 0
    assert "Table 3" in result.render()


def test_ablation_direct_read_tiny():
    result = ablation_direct_read.run(file_bytes=TINY)
    assert result.warm_penalty_pct > 30
    assert result.modes["bypass host FS"][2] == 0  # no refreshes


def test_ablation_transport_tiny():
    result = ablation_transport.run(file_bytes=TINY)
    assert result.cpu_ratio > 1.0


def test_ablation_ring_tiny():
    result = ablation_ring.run(file_bytes=TINY,
                               chunk_sizes=(64 * 1024, 1 << 20),
                               ring_slots=(1024,))
    assert len(result.cells) == 2
    assert all(v > 0 for v in result.cells.values())


def test_ablation_packet_size_tiny():
    result = ablation_packet_size.run(file_bytes=TINY,
                                      packet_sizes=(16 * 1024, 256 * 1024))
    assert result.vanilla[256 * 1024] > result.vanilla[16 * 1024]


def test_experiments_are_deterministic():
    """Identical parameters -> bit-identical results (seeded streams)."""
    first = fig02_motivation_delay.run(file_bytes=TINY,
                                       request_sizes=(1 << 20,))
    second = fig02_motivation_delay.run(file_bytes=TINY,
                                        request_sizes=(1 << 20,))
    assert first.no_cache.series == second.no_cache.series
    assert first.cache.series == second.cache.series
