# Convenience targets for the vRead reproduction.

.PHONY: install test lint analyze chaos bench bench-quick bench-pr5 bench-pr5-quick bench-kernel bench-kernel-quick load-smoke load-bench storage-smoke storage-bench churn-smoke churn-bench profile bench-tables report paper-report quick-report demo clean

install:
	python setup.py develop

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.analysis src/repro

# Whole-program analysis (per-module rules + cross-module taint/flow),
# gated on the committed baseline, with the incremental cache warm.
analyze:
	PYTHONPATH=src python -m repro.analysis src/repro \
		--baseline .simlint-baseline.json \
		--cache .simlint-cache.json --stats

chaos:
	PYTHONPATH=src python -m pytest tests/faults -q
	PYTHONPATH=src python examples/failure_drill.py

bench:
	python benchmarks/perf/bench_pr3.py --out BENCH_pr3.json

bench-quick:
	python benchmarks/perf/bench_pr3.py --quick --out BENCH_pr3.json

bench-pr5:
	PYTHONPATH=src python benchmarks/perf/bench_pr5.py --out BENCH_pr5.json

bench-pr5-quick:
	PYTHONPATH=src python benchmarks/perf/bench_pr5.py --quick --out BENCH_pr5.json

# Timer-wheel kernel + epoch-coalescing harness: storms wheel-vs-heap,
# experiments all-fast vs the full reference configuration, and a
# contended rack point (see docs/performance.md).
bench-kernel:
	PYTHONPATH=src python benchmarks/perf/bench_pr10.py --out BENCH_pr10.json

bench-kernel-quick:
	PYTHONPATH=src python benchmarks/perf/bench_pr10.py --quick --out BENCH_pr10.json

# Open-loop load harness: RSS-flatness + jobs-N determinism gates
# (see docs/load.md); load-smoke is the CI profile.
load-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_pr7.py --quick --out BENCH_pr7.json
	PYTHONPATH=src python -m pytest tests/load tests/metrics/test_sinks.py -q

load-bench:
	PYTHONPATH=src python benchmarks/perf/bench_pr7.py --out BENCH_pr7.json

# Tiered-storage harness: device-tier determinism, hot-placement +
# stream-digest reproducibility, flat-RSS appends (see docs/storage.md);
# storage-smoke is the CI profile.
storage-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_pr8.py --quick --out BENCH_pr8.json
	PYTHONPATH=src python -m pytest tests/storage tests/cluster/test_storage_tiers.py tests/properties/test_stream_properties.py -q

storage-bench:
	PYTHONPATH=src python benchmarks/perf/bench_pr8.py --out BENCH_pr8.json

# Elastic-membership harness: churn-sweep jobs-N determinism, daemon
# crash -> re-probe -> recovery gates, churn-free neutrality (see
# docs/elasticity.md); churn-smoke is the CI profile.
churn-smoke:
	PYTHONPATH=src python benchmarks/perf/bench_pr9.py --quick --out BENCH_pr9.json
	PYTHONPATH=src python -m pytest tests/cluster/test_membership.py tests/load/test_autoscale.py tests/experiments/test_scale_churn.py -q

churn-bench:
	PYTHONPATH=src python benchmarks/perf/bench_pr9.py --out BENCH_pr9.json

# Usage: make profile [EXP=fig11] [PROFILE_FLAGS="--quick --memory"]
EXP ?= fig11
profile:
	PYTHONPATH=src python -m repro profile $(EXP) $(PROFILE_FLAGS)

bench-tables:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro.experiments.run_all --ablations

paper-report:
	python -m repro.experiments.run_all --paper

quick-report:
	python -m repro.experiments.run_all --quick

demo:
	python -m repro demo

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
