# Convenience targets for the vRead reproduction.

.PHONY: install test lint chaos bench bench-quick bench-tables report paper-report quick-report demo clean

install:
	python setup.py develop

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.analysis src/repro

chaos:
	PYTHONPATH=src python -m pytest tests/faults -q
	PYTHONPATH=src python examples/failure_drill.py

bench:
	python benchmarks/perf/bench_pr3.py --out BENCH_pr3.json

bench-quick:
	python benchmarks/perf/bench_pr3.py --quick --out BENCH_pr3.json

bench-tables:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro.experiments.run_all --ablations

paper-report:
	python -m repro.experiments.run_all --paper

quick-report:
	python -m repro.experiments.run_all --quick

demo:
	python -m repro demo

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
