"""Deadlines, retries and backoff for the resilient read paths.

Three building blocks, all deterministic under the simulation clock:

* :func:`call_with_deadline` — run a sub-process with a sim-time budget;
  on expiry the sub-process is interrupted (its ``finally`` blocks release
  any held locks/slots) and :class:`DeadlineExceeded` is raised in the
  caller.
* :class:`RetryPolicy` — knobs + seeded-jitter exponential backoff for the
  HDFS client's replica failover loop (``DfsInputStream``).
* :class:`VReadClientPolicy` — open/read conversation timeouts and the
  daemon re-probe interval for ``libvread``'s graceful degradation to the
  vanilla path.

Randomized jitter draws from an explicitly passed ``random.Random`` (a
named :class:`~repro.sim.rng.RandomStreams` stream in practice), so two
runs with the same seed back off identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim import AnyOf


class DeadlineExceeded(Exception):
    """A deadline-bounded operation did not complete in time."""


def call_with_deadline(sim, generator: Generator, seconds: Optional[float]):
    """Generator: run ``generator`` as a process with a sim-time budget.

    Returns the generator's return value if it finishes within ``seconds``
    (``None`` budget = unbounded, plain delegation).  On expiry the
    sub-process is interrupted — cleanup in its ``finally``/``with`` blocks
    runs at the current instant — and :class:`DeadlineExceeded` is raised.
    Exceptions from the generator propagate unchanged.
    """
    if seconds is None:
        return (yield from generator)
    process = sim.process(generator)
    timeout = sim.timeout(seconds)
    race = AnyOf(sim, [process, timeout])
    try:
        # A failed process fails the AnyOf, re-raising its exception here.
        yield race
    except BaseException:
        # The guarded operation failed (or this caller was itself
        # interrupted by an outer deadline): the race is over either way.
        if not timeout.processed:
            timeout.cancel()
        if process.is_alive:
            # Nobody waits on the race anymore (an interrupt detached this
            # caller from it), so the sub-process's Interrupt would fail it
            # unobserved and crash the kernel at drain.  The failure is
            # expected — mark it handled up front.
            race.defuse()
            process.interrupt(DeadlineExceeded("outer deadline expired"))
        raise
    if process.triggered:
        timeout.cancel()
        return process.value
    process.interrupt(DeadlineExceeded(f"deadline of {seconds}s expired"))
    raise DeadlineExceeded(
        f"operation exceeded its {seconds}s deadline at t={sim.now}")


@dataclass
class RetryPolicy:
    """Retry/backoff/blacklist knobs for ``DfsInputStream`` block fetches.

    One *attempt* is a full pass over the block's (non-blacklisted) replica
    list; replicas failing within a pass fail over to the next replica
    immediately, and exhausted passes sleep an exponentially growing,
    jittered backoff before retrying.
    """

    #: Full passes over the replica list before giving up.
    max_attempts: int = 3
    #: First inter-pass backoff (seconds, sim time).
    base_backoff: float = 0.02
    backoff_multiplier: float = 2.0
    max_backoff: float = 1.0
    #: Fraction of the backoff added as seeded random jitter (0 = none).
    jitter: float = 0.25
    #: Budget for one replica conversation; ``None`` = unbounded.
    attempt_timeout: Optional[float] = 5.0
    #: Overall per-read deadline across all replicas/attempts.
    read_deadline: Optional[float] = 30.0
    #: How long a failed replica stays blacklisted (sim seconds).
    blacklist_seconds: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be non-negative")
        if not 0 <= self.jitter:
            raise ValueError(f"jitter must be non-negative: {self.jitter}")

    def backoff(self, attempt: int, rng=None) -> float:
        """Backoff before retry pass ``attempt`` (0-based), with jitter."""
        delay = min(self.max_backoff,
                    self.base_backoff * self.backoff_multiplier ** attempt)
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass
class VReadClientPolicy:
    """Timeout/degradation knobs for ``libvread`` conversations.

    When a conversation with the per-VM daemon exceeds its timeout the
    library abandons it, marks the daemon *degraded* and answers every call
    with the fallback signal (open -> ``None``, read -> ``VReadError``) so
    the HDFS integration uses the vanilla path.  After ``reprobe_interval``
    sim-seconds the next call becomes a re-probe: if the daemon answers,
    the library recovers and vRead reads resume.
    """

    open_timeout: Optional[float] = 0.25
    read_timeout: Optional[float] = 5.0
    reprobe_interval: float = 1.0

    def __post_init__(self):
        if self.reprobe_interval <= 0:
            raise ValueError(
                f"reprobe_interval must be positive: {self.reprobe_interval}")
