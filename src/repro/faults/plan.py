"""The fault catalogue and the :class:`FaultPlan` DSL.

A plan is a declarative schedule of typed faults::

    plan = (FaultPlan()
            .at(0.05, DatanodeCrash("dn1", duration=0.5))
            .at(0.10, RdmaFlap(duration=0.3))
            .at(0.00, DiskLatencySpike("dn2", factor=8.0, duration=1.0))
            .on("daemon-down", DaemonCrash("client")))

``at`` times are **relative to arming** (see
:class:`~repro.faults.injector.FaultInjector`), not absolute sim times —
cluster construction and dataset loading advance the clock, and a plan
should not care by how much.  ``on`` registers a named trigger fired
manually (``injector.fire("daemon-down")``) or from test code.

Every fault is a small dataclass with an ``inject(cluster, counters)``
generator: apply the fault, optionally hold it for ``duration`` sim
seconds, then revert.  Faults resolve their targets from the cluster's
topology at injection time, so a plan can be built before the cluster
and reused across layouts: host targets accept either a host name or a
datanode id ("the host of dn2"), VM targets accept a VM name or a
datanode id, and defaults mean "the first sensible target" (first host,
client VM, first datanode) rather than a hard-coded name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


def _find_host(cluster, name: Optional[str]):
    """Resolve a host target: a host name, or a datanode id ("host of dn2")."""
    if name is None:
        return cluster.hosts[0]
    for host in cluster.hosts:
        if host.name == name:
            return host
    for datanode in cluster.datanodes:
        if datanode.datanode_id == name:
            return datanode.vm.host
    raise ValueError(f"no host named {name!r}; cluster has "
                     f"{[h.name for h in cluster.hosts]} "
                     f"(datanode ids also resolve: "
                     f"{[d.datanode_id for d in cluster.datanodes]})")


def _find_vm(cluster, name: Optional[str]):
    """Resolve a VM target: a VM name, or a datanode id ("dn2's VM")."""
    if name is None:
        return cluster.client_vm
    for host in cluster.hosts:
        for vm in host.vms:
            if vm.name == name:
                return vm
    for datanode in cluster.datanodes:
        if datanode.datanode_id == name:
            return datanode.vm
    raise ValueError(
        f"no VM named {name!r}; cluster has "
        f"{[vm.name for host in cluster.hosts for vm in host.vms]} "
        f"(datanode ids also resolve: "
        f"{[d.datanode_id for d in cluster.datanodes]})")


def _find_datanode(cluster, datanode_id: str):
    """Resolve a datanode id against the cluster's *current* membership.

    The namenode registry alone is not enough once clusters churn: a plan
    naming a decommissioned datanode should fail loudly with the live
    targets, not silently hit a stale registration or no-op.
    """
    for datanode in cluster.datanodes:
        if datanode.datanode_id == datanode_id:
            return datanode
    live = [d.datanode_id for d in cluster.datanodes]
    gone = ""
    membership = getattr(cluster, "membership", None)
    if membership is not None and datanode_id in membership.decommissioned:
        gone = f" ({datanode_id!r} was decommissioned)"
    raise ValueError(
        f"no live datanode {datanode_id!r}{gone}; live datanodes: {live}")


def _find_devices(cluster, host_name: Optional[str], tier: Optional[str]):
    """Resolve disk-fault targets: one host's device, or a whole tier's.

    ``tier`` selects every host whose storage device is of that class
    (``"hdd"`` / ``"ssd"`` / ``"nvme"``) — how a plan degrades "all the
    cold-tier disks" without naming hosts.  Mutually exclusive with
    ``host_name``.
    """
    if tier is not None:
        if host_name is not None:
            raise ValueError(
                "pass either host_name or tier, not both "
                f"({host_name!r} and {tier!r})")
        devices = [host.storage for host in cluster.hosts
                   if host.storage.profile.tier == tier]
        if not devices:
            raise ValueError(
                f"no host has a {tier!r} storage device; cluster tiers: "
                f"{sorted({h.storage.profile.tier for h in cluster.hosts})}")
        return devices
    return [_find_host(cluster, host_name).storage]


def _daemon_for(cluster, vm_name: Optional[str]):
    manager = cluster.vread_manager
    if manager is None:
        raise ValueError("cluster has no vRead deployment (vread=False)")
    vm = _find_vm(cluster, vm_name)
    return manager.daemon_of(vm)


class Fault:
    """Base class: a typed, revertible fault."""

    #: Counter suffix: the injector records ``fault.<label>``.
    label = "generic"

    def describe(self) -> str:
        return self.label

    def inject(self, cluster, counters):
        """Generator: apply (and, after ``duration``, revert) the fault."""
        raise NotImplementedError
        yield  # simlint: disable=yield-discipline


@dataclass
class DatanodeCrash(Fault):
    """Datanode VM dies: in-flight transfers drop, new requests refused.

    With a ``duration`` the datanode restarts afterwards (VM reboot)."""
    datanode_id: str
    duration: Optional[float] = None
    label = "datanode-crash"

    def describe(self) -> str:
        return f"{self.label}({self.datanode_id})"

    def inject(self, cluster, counters):
        datanode = _find_datanode(cluster, self.datanode_id)
        datanode.stop()
        if self.duration is not None:
            yield cluster.sim.timeout(self.duration)
            datanode.start()
            counters.count("fault.datanode-restart",
                           datanode=self.datanode_id)


@dataclass
class DaemonCrash(Fault):
    """The vRead daemon serving ``vm_name`` dies mid-whatever-it-was-doing.

    With a ``duration`` the daemon restarts over a fresh channel."""
    vm_name: Optional[str] = None
    duration: Optional[float] = None
    label = "daemon-crash"

    def describe(self) -> str:
        return f"{self.label}({self.vm_name or 'client'})"

    def inject(self, cluster, counters):
        daemon = _daemon_for(cluster, self.vm_name)
        daemon.crash()
        if self.duration is not None:
            yield cluster.sim.timeout(self.duration)
            daemon.restart()
            counters.count("fault.daemon-restart", vm=daemon.vm.name)


@dataclass
class RingStall(Fault):
    """The ivshmem rings of ``vm_name``'s channel wedge for ``duration``."""
    vm_name: Optional[str] = None
    duration: float = 0.5
    label = "ring-stall"

    def describe(self) -> str:
        return f"{self.label}({self.vm_name or 'client'})"

    def inject(self, cluster, counters):
        daemon = _daemon_for(cluster, self.vm_name)
        channel = daemon.channel
        channel.request_ring.stall()
        channel.response_ring.stall()
        yield cluster.sim.timeout(self.duration)
        # The channel may have been reset (daemon restart) while stalled;
        # unstall whatever rings it has now as well as the ones we stalled.
        channel.request_ring.unstall()
        channel.response_ring.unstall()


@dataclass
class RdmaFlap(Fault):
    """The RoCE link drops; vRead remote reads fall back to TCP."""
    duration: float = 0.5
    label = "rdma-flap"

    def inject(self, cluster, counters):
        cluster.rdma.fail()
        yield cluster.sim.timeout(self.duration)
        cluster.rdma.restore()
        counters.count("fault.rdma-restore")


@dataclass
class DiskLatencySpike(Fault):
    """A host's storage device slows by ``factor`` (noisy neighbour /
    flaky disk).  ``tier="hdd"`` targets every device of that class
    instead of one host."""
    host_name: Optional[str] = None
    factor: float = 10.0
    duration: float = 1.0
    tier: Optional[str] = None
    label = "disk-latency-spike"

    def describe(self) -> str:
        target = (f"tier:{self.tier}" if self.tier
                  else self.host_name or "first-host")
        return f"{self.label}({target}x{self.factor:g})"

    def inject(self, cluster, counters):
        devices = _find_devices(cluster, self.host_name, self.tier)
        for device in devices:
            device.set_latency_factor(self.factor)
        yield cluster.sim.timeout(self.duration)
        for device in devices:
            device.set_latency_factor(1.0)


@dataclass
class DiskOutage(Fault):
    """A host's storage device fails every request with ``DiskError``.
    ``tier="hdd"`` targets every device of that class instead of one
    host."""
    host_name: Optional[str] = None
    duration: float = 0.5
    tier: Optional[str] = None
    label = "disk-outage"

    def describe(self) -> str:
        target = (f"tier:{self.tier}" if self.tier
                  else self.host_name or "first-host")
        return f"{self.label}({target})"

    def inject(self, cluster, counters):
        devices = _find_devices(cluster, self.host_name, self.tier)
        for device in devices:
            device.set_failing(True)
        yield cluster.sim.timeout(self.duration)
        for device in devices:
            device.set_failing(False)


@dataclass
class ImageFault(Fault):
    """``vm_name``'s disk image becomes unreadable through loop mounts
    (snapshot-chain corruption); the vRead path degrades for that VM.

    Default target: the first datanode VM in the topology."""
    vm_name: Optional[str] = None
    duration: float = 0.5
    label = "image-fault"

    def describe(self) -> str:
        return f"{self.label}({self.vm_name or 'first-datanode'})"

    def inject(self, cluster, counters):
        vm = (_find_vm(cluster, self.vm_name) if self.vm_name
              else cluster.datanode_vms[0])
        vm.image.set_faulted(True)
        yield cluster.sim.timeout(self.duration)
        vm.image.set_faulted(False)


@dataclass
class HostCacheDrop(Fault):
    """Drop one host's page cache (echo 3 > drop_caches)."""
    host_name: Optional[str] = None
    label = "host-cache-drop"

    def describe(self) -> str:
        return f"{self.label}({self.host_name or 'first-host'})"

    def inject(self, cluster, counters):
        host = _find_host(cluster, self.host_name)
        host.drop_caches()
        return
        yield  # simlint: disable=yield-discipline


@dataclass
class GuestCacheDrop(Fault):
    """Drop one VM's guest page cache."""
    vm_name: Optional[str] = None
    label = "guest-cache-drop"

    def describe(self) -> str:
        return f"{self.label}({self.vm_name or 'client'})"

    def inject(self, cluster, counters):
        vm = _find_vm(cluster, self.vm_name)
        vm.drop_guest_cache()
        return
        yield  # simlint: disable=yield-discipline


@dataclass
class MigrateVm(Fault):
    """Live-migrate a (datanode) VM to another host mid-read.

    A thin wrapper over ``cluster.membership.migrate`` — the controller
    retires the source threads, rebinds the vRead hash tables on every
    host (paper Section 6), and versions the change.  Defaults resolve
    from the topology: the first datanode VM moves to the next host after
    its current one."""
    vm_name: Optional[str] = None
    target_host: Optional[str] = None
    label = "vm-migration"

    def describe(self) -> str:
        return (f"{self.label}({self.vm_name or 'first-datanode'}"
                f"->{self.target_host or 'next-host'})")

    def inject(self, cluster, counters):
        vm = (_find_vm(cluster, self.vm_name) if self.vm_name
              else cluster.datanode_vms[0])
        if self.target_host is not None:
            target = _find_host(cluster, self.target_host)
        else:
            index = cluster.hosts.index(vm.host)
            target = cluster.hosts[(index + 1) % len(cluster.hosts)]
        yield from cluster.membership.migrate(vm, target)
        counters.count("fault.vm-migration-done", vm=vm.name,
                       host=target.name)


@dataclass
class DecommissionDatanode(Fault):
    """Gracefully drain and detach a datanode mid-workload.

    Delegates to ``cluster.membership.decommission_datanode``: the node
    keeps serving reads while its sole replicas are copied elsewhere,
    then it leaves the cluster entirely (namenode, vRead tables, fabric
    bookkeeping)."""
    datanode_id: str
    poll_interval: Optional[float] = None
    label = "decommission"

    def describe(self) -> str:
        return f"{self.label}({self.datanode_id})"

    def inject(self, cluster, counters):
        _find_datanode(cluster, self.datanode_id)  # fail fast, clear error
        yield from cluster.membership.decommission_datanode(
            self.datanode_id, poll_interval=self.poll_interval)
        counters.count("fault.decommission-done",
                       datanode=self.datanode_id)


@dataclass
class _TimedEntry:
    at: float
    fault: Fault


@dataclass
class _TriggerEntry:
    trigger: str
    fault: Fault


class FaultPlan:
    """A declarative schedule of faults; consumed by ``FaultInjector``."""

    def __init__(self):
        self.timed: List[_TimedEntry] = []
        self.triggered: List[_TriggerEntry] = []

    def at(self, seconds: float, fault: Fault) -> "FaultPlan":
        """Schedule ``fault`` ``seconds`` after the injector is armed."""
        if seconds < 0:
            raise ValueError(f"fault time must be non-negative: {seconds}")
        if not isinstance(fault, Fault):
            raise TypeError(f"expected a Fault, got {fault!r}")
        self.timed.append(_TimedEntry(seconds, fault))
        return self

    def on(self, trigger: str, fault: Fault) -> "FaultPlan":
        """Attach ``fault`` to a named trigger (``injector.fire(trigger)``)."""
        if not isinstance(fault, Fault):
            raise TypeError(f"expected a Fault, got {fault!r}")
        self.triggered.append(_TriggerEntry(trigger, fault))
        return self

    def __len__(self) -> int:
        return len(self.timed) + len(self.triggered)

    def describe(self) -> str:
        """Human-readable schedule, one line per entry."""
        lines = [f"t+{entry.at:g}s: {entry.fault.describe()}"
                 for entry in sorted(self.timed, key=lambda e: e.at)]
        lines += [f"on {entry.trigger!r}: {entry.fault.describe()}"
                  for entry in self.triggered]
        return "\n".join(lines) if lines else "(empty plan)"

    def __repr__(self) -> str:
        return (f"<FaultPlan timed={len(self.timed)} "
                f"triggered={len(self.triggered)}>")
