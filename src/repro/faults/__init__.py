"""Deterministic fault injection + the resilience primitives it exercises.

``repro.faults`` has two halves:

* **Injection** — :class:`FaultPlan` (a declarative schedule of typed
  faults from the catalogue in :mod:`repro.faults.plan`) executed by a
  :class:`FaultInjector` on the simulation clock, plus
  :func:`random_plan` for seeded chaos runs.
* **Resilience** — :func:`call_with_deadline`, :class:`RetryPolicy` and
  :class:`VReadClientPolicy`, the deadline/retry/backoff machinery the
  HDFS client and ``libvread`` use to survive those faults.

See ``docs/faults.md`` for the full catalogue and semantics.
"""

from repro.faults.chaos import random_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DaemonCrash,
    DatanodeCrash,
    DecommissionDatanode,
    DiskLatencySpike,
    DiskOutage,
    Fault,
    FaultPlan,
    GuestCacheDrop,
    HostCacheDrop,
    ImageFault,
    MigrateVm,
    RdmaFlap,
    RingStall,
)
from repro.faults.retry import (
    DeadlineExceeded,
    RetryPolicy,
    VReadClientPolicy,
    call_with_deadline,
)

__all__ = [
    "DaemonCrash",
    "DatanodeCrash",
    "DeadlineExceeded",
    "DecommissionDatanode",
    "DiskLatencySpike",
    "DiskOutage",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "GuestCacheDrop",
    "HostCacheDrop",
    "ImageFault",
    "MigrateVm",
    "RdmaFlap",
    "RetryPolicy",
    "RingStall",
    "VReadClientPolicy",
    "call_with_deadline",
    "random_plan",
]
