"""Deterministic, sim-clock-scheduled execution of a :class:`FaultPlan`.

The injector binds a plan to a live cluster.  Nothing happens until
:meth:`FaultInjector.arm` is called — all ``.at(t, ...)`` offsets are
relative to the arm instant, so cluster construction, dataset writes and
``settle()`` can advance the clock freely without faults firing early.

Each fault runs as its own simulation process; injections and reverts are
counted into the cluster's :class:`~repro.metrics.accounting.FaultCounters`
(and thus traced, when a tracer is attached) as ``fault.<label>`` events.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.metrics.accounting import FaultCounters


class FaultInjector:
    """Executes a :class:`FaultPlan` against a cluster."""

    def __init__(self, cluster, plan: Optional[FaultPlan] = None,
                 counters: Optional[FaultCounters] = None):
        self.cluster = cluster
        self.plan = plan or FaultPlan()
        self.counters = (counters if counters is not None
                         else getattr(cluster, "fault_counters", None)
                         or FaultCounters())
        self.armed_at: Optional[float] = None
        self.injected = 0
        self._processes: List = []

    @property
    def armed(self) -> bool:
        return self.armed_at is not None

    def arm(self) -> "FaultInjector":
        """Schedule every timed fault, offsets measured from *now*.

        Arming twice is an error — a plan describes one run.
        """
        if self.armed:
            raise RuntimeError(
                f"injector already armed at t={self.armed_at}")
        sim = self.cluster.sim
        self.armed_at = sim.now
        for entry in self.plan.timed:
            self._processes.append(
                sim.process(self._run_timed(entry.at, entry.fault)))
        return self

    def fire(self, trigger: str) -> int:
        """Inject every fault registered under ``trigger``; returns count."""
        matches = [entry.fault for entry in self.plan.triggered
                   if entry.trigger == trigger]
        sim = self.cluster.sim
        for fault in matches:
            self._processes.append(sim.process(self._run_one(fault)))
        return len(matches)

    def _run_timed(self, delay: float, fault):
        if delay > 0:
            yield self.cluster.sim.timeout(delay)
        yield from self._run_one(fault)

    def _run_one(self, fault):
        self.injected += 1
        self.counters.count(f"fault.{fault.label}", what=fault.describe(),
                            at=self.cluster.sim.now)
        yield from fault.inject(self.cluster, self.counters)

    def pending(self) -> int:
        """Fault processes still applying/holding their fault."""
        return sum(1 for p in self._processes if p.is_alive)

    def __repr__(self) -> str:
        state = (f"armed at t={self.armed_at}" if self.armed else "unarmed")
        return (f"<FaultInjector {state} plan={len(self.plan)} "
                f"injected={self.injected}>")
