"""Seeded random fault-plan generation for chaos testing.

``random_plan(seed=...)`` draws a reproducible schedule of faults from the
catalogue using a dedicated :class:`~repro.sim.rng.RandomStreams` stream —
the same seed always yields the same plan, so a chaos failure is a plain
deterministic repro, not a flake.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.plan import (
    DaemonCrash,
    DatanodeCrash,
    DiskLatencySpike,
    FaultPlan,
    GuestCacheDrop,
    HostCacheDrop,
    RdmaFlap,
    RingStall,
)
from repro.sim.rng import RandomStreams


def random_plan(seed: int = 0, faults: int = 4, horizon: float = 2.0,
                datanode_ids: Optional[List[str]] = None,
                host_names: Optional[List[str]] = None,
                include_datanode_crashes: bool = True) -> FaultPlan:
    """Draw ``faults`` random faults over ``horizon`` sim-seconds.

    ``datanode_ids``/``host_names`` restrict crash and disk targets.  The
    defaults are topology-relative rather than literal host names: crashes
    hit ``dn1``, and disk/cache faults target "the host of dn1" / "the
    host of dn2" — fault targets resolve datanode ids to their hosts at
    injection time (see :mod:`repro.faults.plan`), so the same plan works
    on any layout with two datanodes, wherever its hosts live.  Set
    ``include_datanode_crashes=False`` for replication-1 clusters where a
    crashed datanode has no surviving replica to fail over to.
    """
    rng = RandomStreams(seed).stream("chaos-plan")
    datanode_ids = datanode_ids or ["dn1"]
    host_names = host_names or ["dn1", "dn2"]
    plan = FaultPlan()

    def _recovery_window(at: float) -> float:
        # Keep every fault transient: revert well inside the horizon so a
        # bounded workload can always finish.
        return max(0.05, min(0.5, (horizon - at) * 0.5))

    kinds = ["daemon-crash", "ring-stall", "rdma-flap",
             "disk-latency-spike", "host-cache-drop", "guest-cache-drop"]
    if include_datanode_crashes:
        kinds.append("datanode-crash")
    for _ in range(faults):
        at = rng.uniform(0.0, horizon * 0.8)
        kind = rng.choice(kinds)
        duration = _recovery_window(at)
        if kind == "daemon-crash":
            plan.at(at, DaemonCrash(duration=duration))
        elif kind == "ring-stall":
            plan.at(at, RingStall(duration=duration))
        elif kind == "rdma-flap":
            plan.at(at, RdmaFlap(duration=duration))
        elif kind == "disk-latency-spike":
            plan.at(at, DiskLatencySpike(rng.choice(host_names),
                                         factor=rng.uniform(4.0, 16.0),
                                         duration=duration))
        elif kind == "host-cache-drop":
            plan.at(at, HostCacheDrop(rng.choice(host_names)))
        elif kind == "guest-cache-drop":
            plan.at(at, GuestCacheDrop())
        elif kind == "datanode-crash":
            plan.at(at, DatanodeCrash(rng.choice(datanode_ids),
                                      duration=duration))
    return plan
