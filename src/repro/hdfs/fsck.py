"""fsck: cross-check namenode metadata against datanode block files.

Like ``hdfs fsck /``: walks every file's block list and verifies, for every
replica location, that the block file exists on that datanode's filesystem
with the size the namenode believes — plus (optionally) that all replicas
hold byte-identical content.  Used by tests as a global invariant and
available from the CLI for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hdfs.namenode import Namenode
from repro.storage.filesystem import FsError


@dataclass
class FsckProblem:
    path: str
    block_name: str
    datanode_id: Optional[str]
    kind: str        # 'missing-replica' | 'size-mismatch' | 'content-mismatch'
                     # | 'no-locations' | 'not-committed'
    detail: str = ""

    def render(self) -> str:
        where = f"@{self.datanode_id}" if self.datanode_id else ""
        return (f"{self.path} {self.block_name}{where}: {self.kind}"
                + (f" ({self.detail})" if self.detail else ""))


@dataclass
class FsckReport:
    files_checked: int = 0
    blocks_checked: int = 0
    replicas_checked: int = 0
    problems: List[FsckProblem] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [f"fsck: {self.files_checked} files, "
                 f"{self.blocks_checked} blocks, "
                 f"{self.replicas_checked} replicas checked"]
        if self.healthy:
            lines.append("Status: HEALTHY")
        else:
            lines.append(f"Status: CORRUPT ({len(self.problems)} problems)")
            lines.extend("  " + problem.render()
                         for problem in self.problems)
        return "\n".join(lines)


def fsck(namenode: Namenode, verify_content: bool = False) -> FsckReport:
    """Check every file; returns an :class:`FsckReport`.

    ``verify_content=True`` additionally compares replica bytes (expensive:
    materializes block contents)."""
    report = FsckReport()
    for path in namenode.list_files():
        report.files_checked += 1
        for block in namenode.get_blocks(path):
            report.blocks_checked += 1
            if not block.committed:
                # Under-construction tails are not errors, only noted when
                # the file claims to be complete.
                if namenode.file(path).complete:
                    report.problems.append(FsckProblem(
                        path, block.name, None, "not-committed"))
                continue
            if not block.locations:
                report.problems.append(FsckProblem(
                    path, block.name, None, "no-locations"))
                continue
            reference: Optional[bytes] = None
            for dn_id in block.locations:
                report.replicas_checked += 1
                datanode = namenode.datanode(dn_id)
                block_path = datanode.block_path(block.name)
                try:
                    size = datanode.vm.guest_fs.size(block_path)
                except FsError:
                    report.problems.append(FsckProblem(
                        path, block.name, dn_id, "missing-replica"))
                    continue
                if size != block.size:
                    report.problems.append(FsckProblem(
                        path, block.name, dn_id, "size-mismatch",
                        f"namenode={block.size} datanode={size}"))
                    continue
                if verify_content:
                    data = datanode.vm.guest_fs.read(block_path)
                    if reference is None:
                        reference = data
                    elif data != reference:
                        report.problems.append(FsckProblem(
                            path, block.name, dn_id, "content-mismatch"))
    return report
