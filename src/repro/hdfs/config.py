"""HDFS deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass

#: Hadoop 1.x default block size (the paper's configuration).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True)
class HdfsConfig:
    """Cluster-wide HDFS parameters.

    ``block_size`` is configurable so tests can exercise multi-block files
    cheaply; experiments use the 64 MB default.
    """

    #: dfs.block.size — bytes per HDFS block.
    block_size: int = DEFAULT_BLOCK_SIZE
    #: dfs.replication — replicas per block.
    replication: int = 1
    #: Directory inside every datanode VM where block files live
    #: (the same path on each datanode, as the paper notes).
    data_dir: str = "/hadoop/dfs/data"
    #: Datanode streaming port.
    datanode_port: int = 50010
    #: Data-transfer packet size: a block read streams to the client as a
    #: pipeline of packets (real HDFS uses 64 KB; we default to 256 KB to
    #: keep simulated event counts moderate without changing the shape).
    packet_bytes: int = 256 * 1024

    def __post_init__(self):
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}")
        if not self.data_dir.startswith("/"):
            raise ValueError("data_dir must be an absolute path")
        if self.packet_bytes < 1:
            raise ValueError(
                f"packet_bytes must be >= 1, got {self.packet_bytes}")
