"""The HDFS namenode: file/block metadata and commit notifications.

The namenode stores file -> block lists and block -> datanode locations.
All client/namenode logic is preserved from stock HDFS (the paper modifies
only the read path); metadata RPCs are cheap control messages whose cost is
charged via :meth:`Namenode.rpc`.

The **commit notification** is load-bearing for vRead: when a datanode
finalizes a block it reports to the namenode, and the namenode fans the
event out to registered observers.  vRead daemons subscribe and use it to
refresh the dentry/inode cache of that datanode's loop-mounted image
(paper Section 3.2, "the synchronization is achieved through the Hadoop
namenode").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.hdfs.block import Block
from repro.hdfs.config import HdfsConfig
from repro.hdfs.topology import PlacementPolicy
from repro.metrics.accounting import OTHERS


class HdfsError(Exception):
    """Namespace or protocol errors in HDFS."""


class FileMeta:
    """Metadata of one HDFS file."""

    __slots__ = ("path", "blocks", "complete", "replication", "spread",
                 "hot")

    def __init__(self, path: str, replication: int, spread: bool = False,
                 hot: bool = False):
        self.path = path
        self.blocks: List[Block] = []
        self.complete = False
        self.replication = replication
        #: Spread first replicas round-robin (hybrid layout) instead of
        #: preferring the co-located datanode.
        self.spread = spread
        #: Hot data: on a mixed-tier cluster the placement policy steers
        #: this file's blocks onto the fastest storage media.
        self.hot = hot

    @property
    def length(self) -> int:
        return sum(block.size for block in self.blocks)

    def __repr__(self) -> str:
        return (f"<FileMeta {self.path} blocks={len(self.blocks)} "
                f"length={self.length}>")


class Namenode:
    """The metadata service of the simulated HDFS cluster."""

    def __init__(self, config: Optional[HdfsConfig] = None, vm=None):
        self.config = config or HdfsConfig()
        #: The VM hosting the namenode process (for RPC latency); optional.
        self.vm = vm
        self._datanodes: Dict[str, object] = {}
        #: Datanodes excluded from new block placement (decommissioning).
        self.excluded_datanodes: set = set()
        self._files: Dict[str, FileMeta] = {}
        self._blocks: Dict[str, Block] = {}
        self._next_block_id = 1000
        self.policy = PlacementPolicy(self)
        #: Callbacks ``(event, block, datanode_id)`` for 'commit'/'delete'.
        self._observers: List[Callable[[str, Block, str], None]] = []

    # -------------------------------------------------------------- datanodes
    def register_datanode(self, datanode) -> None:
        if datanode.datanode_id in self._datanodes:
            raise HdfsError(f"datanode {datanode.datanode_id!r} already registered")
        self._datanodes[datanode.datanode_id] = datanode

    def unregister_datanode(self, datanode_id: str) -> None:
        """Drop a datanode from the registry (decommission finished).

        The caller is responsible for having drained its replicas first
        (see :class:`~repro.hdfs.replication.ReplicationMonitor`).
        """
        if datanode_id not in self._datanodes:
            raise HdfsError(f"unknown datanode {datanode_id!r}")
        del self._datanodes[datanode_id]
        self.excluded_datanodes.discard(datanode_id)

    def datanode(self, datanode_id: str):
        try:
            return self._datanodes[datanode_id]
        except KeyError:
            raise HdfsError(f"unknown datanode {datanode_id!r}")

    def datanode_ids(self) -> List[str]:
        return list(self._datanodes)

    # -------------------------------------------------------------- observers
    def add_observer(self, callback: Callable[[str, Block, str], None]) -> None:
        self._observers.append(callback)

    def _notify(self, event: str, block: Block, datanode_id: str) -> None:
        for callback in self._observers:
            callback(event, block, datanode_id)

    # ------------------------------------------------------------------- RPC
    def rpc(self, client_vm):
        """Generator: charge one metadata round trip from ``client_vm``."""
        costs = client_vm.costs
        yield from client_vm.vcpu.run(2 * costs.syscall_cycles, OTHERS)
        if self.vm is not None and self.vm.host is not client_vm.host:
            yield client_vm.sim.timeout(2 * costs.lan_latency)

    # --------------------------------------------------------------- namespace
    def create_file(self, path: str, replication: Optional[int] = None,
                    spread: bool = False, hot: bool = False) -> FileMeta:
        if path in self._files:
            raise HdfsError(f"file exists: {path!r}")
        meta = FileMeta(path, replication or self.config.replication, spread,
                        hot)
        self._files[path] = meta
        return meta

    def file(self, path: str) -> FileMeta:
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such file: {path!r}")

    def exists(self, path: str) -> bool:
        return path in self._files

    def file_length(self, path: str) -> int:
        return self.file(path).length

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def delete_file(self, path: str) -> List[Block]:
        """Remove a file's metadata; returns its blocks for cleanup."""
        meta = self._files.pop(path, None)
        if meta is None:
            raise HdfsError(f"no such file: {path!r}")
        for block in meta.blocks:
            del self._blocks[block.name]
            for dn_id in block.locations:
                self._notify("delete", block, dn_id)
        return meta.blocks

    # ------------------------------------------------------------------ blocks
    def allocate_block(self, path: str, client_vm,
                       favored: Optional[Sequence[str]] = None) -> Block:
        """Add a new under-construction block to ``path`` with replica targets."""
        meta = self.file(path)
        if meta.complete:
            raise HdfsError(f"file is complete: {path!r}")
        if meta.blocks and not meta.blocks[-1].committed:
            raise HdfsError(
                f"previous block of {path!r} is still under construction")
        block = Block(self._next_block_id, path, index=len(meta.blocks),
                      offset=meta.length)
        self._next_block_id += 1
        block.locations = self.policy.choose_targets(
            client_vm, meta.replication, favored, spread=meta.spread,
            hot=meta.hot)
        meta.blocks.append(block)
        self._blocks[block.name] = block
        return block

    def commit_block(self, block: Block) -> None:
        """Finalize a block; fan out commit notifications per replica."""
        if block.committed:
            raise HdfsError(f"{block.name} already committed")
        block.committed = True
        for dn_id in block.locations:
            self._notify("commit", block, dn_id)

    def complete_file(self, path: str) -> None:
        meta = self.file(path)
        if meta.blocks and not meta.blocks[-1].committed:
            raise HdfsError(f"last block of {path!r} not committed")
        meta.complete = True

    def block_by_name(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise HdfsError(f"unknown block {name!r}")

    def get_blocks(self, path: str) -> List[Block]:
        return list(self.file(path).blocks)

    def blocks_in_range(self, path: str, offset: int,
                        length: int) -> List[Block]:
        """Blocks overlapping [offset, offset+length) — getRangeBlock()."""
        if offset < 0 or length < 0:
            raise HdfsError(f"negative range ({offset}, {length})")
        end = offset + length
        return [block for block in self.file(path).blocks
                if block.size > 0 and block.offset < end
                and block.end_offset > offset]

    def __repr__(self) -> str:
        return (f"<Namenode files={len(self._files)} "
                f"blocks={len(self._blocks)} datanodes={len(self._datanodes)}>")
