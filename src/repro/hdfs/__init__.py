"""HDFS: namenode, datanodes, and the DFSClient (Hadoop 1.2.1 semantics).

This is a working distributed filesystem over the simulated substrate:
files are split into blocks (64 MB default), blocks live as regular files
under the same data directory in each datanode VM's filesystem, a namenode
tracks file->block and block->location metadata, and clients stream block
data from datanodes over (virtual) TCP — the full vanilla data path the
paper measures against.

Key fidelity points:

* **write-once blocks**: appends go to the block under construction; a
  committed block is immutable and its commit notifies the namenode, which
  fans out to observers (vRead daemons hook this to refresh loop mounts).
* **replica choice** prefers a co-located datanode VM (the HVE-style
  virtualization-aware topology the paper assumes), then falls back to a
  remote replica.
* the client read interfaces mirror ``DFSInputStream``: sequential
  :meth:`~repro.hdfs.client.DfsInputStream.read` (the paper's ``read1``) and
  positional :meth:`~repro.hdfs.client.DfsInputStream.pread` (``read2``),
  both of which vRead overrides in :mod:`repro.core.integration`.
"""

from repro.hdfs.block import Block, BlockId
from repro.hdfs.client import DfsClient, DfsInputStream, DfsOutputStream
from repro.hdfs.config import HdfsConfig
from repro.hdfs.datanode import Datanode
from repro.hdfs.editlog import EditLog, JournaledNamenode, replay_into
from repro.hdfs.fsck import FsckReport, fsck
from repro.hdfs.namenode import Namenode
from repro.hdfs.replication import ReplicationMonitor
from repro.hdfs.topology import PlacementPolicy

__all__ = [
    "Block",
    "BlockId",
    "Datanode",
    "DfsClient",
    "DfsInputStream",
    "DfsOutputStream",
    "EditLog",
    "FsckReport",
    "HdfsConfig",
    "fsck",
    "JournaledNamenode",
    "Namenode",
    "PlacementPolicy",
    "ReplicationMonitor",
    "replay_into",
]
