"""Wire messages of the datanode streaming protocol (DataTransferProtocol)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.storage.content import ByteSource


@dataclass
class OpReadBlock:
    """Client -> datanode: stream ``length`` bytes of a block."""
    block_name: str
    offset: int
    length: int


@dataclass
class OpWriteBlock:
    """Client/upstream -> datanode: open a write pipeline for a block.

    ``downstream`` lists the datanode ids the receiver must forward to.
    """
    block_name: str
    downstream: List[str] = field(default_factory=list)


@dataclass
class WritePacket:
    """One packet of block data flowing down a write pipeline."""
    payload: ByteSource
    last: bool = False


@dataclass
class Ack:
    """Datanode -> upstream: pipeline acknowledgement."""
    block_name: str
    ok: bool = True
    message: str = ""


@dataclass
class ErrorResponse:
    """Datanode -> client: the request failed."""
    message: str


class HdfsProtocolError(Exception):
    """Raised on protocol violations or remote errors."""
