"""Datanode block scanner: background integrity verification.

Real datanodes run a low-priority scanner that periodically re-reads block
files and verifies their checksums, reporting corrupt replicas to the
namenode.  Here, each datanode stores the expected SHA-256 of every block
at write time (the checksum sidecar file); the scanner re-reads blocks on a
cycle, charges verification CPU, and on a mismatch tells the namenode to
drop the replica — which the :class:`~repro.hdfs.replication
.ReplicationMonitor`'s machinery (or a re-read from another replica) then
covers.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.hdfs.datanode import Datanode
from repro.metrics.accounting import OTHERS
from repro.storage.filesystem import FsError


class BlockScanner:
    """Periodic integrity scanning for one datanode."""

    def __init__(self, datanode: Datanode, scan_interval: float = 5.0,
                 verify_cycles_per_byte: float = 0.3):
        self.datanode = datanode
        self.scan_interval = scan_interval
        self.verify_cycles_per_byte = verify_cycles_per_byte
        #: block name -> expected digest, recorded at write/commit time.
        self._expected: Dict[str, str] = {}
        self.scans = 0
        self.corruptions_found: List[str] = []
        self._running = False
        datanode.namenode.add_observer(self._on_event)

    # ------------------------------------------------------------- recording
    def _on_event(self, event: str, block, datanode_id: str) -> None:
        if datanode_id != self.datanode.datanode_id:
            return
        if event == "commit":
            path = self.datanode.block_path(block.name)
            try:
                data = self.datanode.vm.guest_fs.read(path)
            except FsError:
                return
            self._expected[block.name] = hashlib.sha256(data).hexdigest()
        elif event == "delete":
            self._expected.pop(block.name, None)

    # -------------------------------------------------------------- scanning
    def start(self) -> None:
        if self._running:
            raise RuntimeError("scanner already running")
        self._running = True
        self.datanode.vm.sim.process(self._scan_loop())

    def stop(self) -> None:
        self._running = False

    def _scan_loop(self):
        sim = self.datanode.vm.sim
        while self._running:
            yield sim.timeout(self.scan_interval)
            if not self._running:
                return
            yield from self.scan_once()

    def scan_once(self):
        """Generator: verify every tracked block once."""
        vm = self.datanode.vm
        for block_name, expected in list(self._expected.items()):
            if not self._running and self.scans > 0:
                return
            path = self.datanode.block_path(block_name)
            try:
                source = yield from vm.read_file(path)
            except FsError:
                self._report_corrupt(block_name, "missing")
                continue
            yield from vm.vcpu.run(
                self.verify_cycles_per_byte * source.size, OTHERS)
            actual = hashlib.sha256(
                source.read(0, source.size)).hexdigest()
            if actual != expected:
                self._report_corrupt(block_name, "checksum mismatch")
        self.scans += 1

    def _report_corrupt(self, block_name: str, reason: str) -> None:
        """Drop this replica from the namenode's location list."""
        self.corruptions_found.append(block_name)
        self._expected.pop(block_name, None)
        try:
            block = self.datanode.namenode.block_by_name(block_name)
        except Exception:
            return
        if self.datanode.datanode_id in block.locations:
            block.locations.remove(self.datanode.datanode_id)

    def __repr__(self) -> str:
        return (f"<BlockScanner {self.datanode.datanode_id} "
                f"tracked={len(self._expected)} scans={self.scans} "
                f"corrupt={len(self.corruptions_found)}>")
