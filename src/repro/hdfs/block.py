"""HDFS blocks: identity, naming, and location metadata."""

from __future__ import annotations

from typing import List, Optional

BlockId = int


class Block:
    """One HDFS block: a chunk of a file stored as a plain file on datanodes.

    ``name`` follows Hadoop's ``blk_<id>`` convention; the block file lives
    at ``<data_dir>/<name>`` inside every replica datanode's filesystem.
    """

    __slots__ = ("block_id", "file_path", "index", "offset", "size",
                 "locations", "committed")

    def __init__(self, block_id: BlockId, file_path: str, index: int,
                 offset: int):
        self.block_id = block_id
        #: HDFS path of the file this block belongs to.
        self.file_path = file_path
        #: Position of this block within the file (0-based).
        self.index = index
        #: Byte offset of the block's first byte within the file.
        self.offset = offset
        #: Bytes currently in the block (grows while under construction).
        self.size = 0
        #: Datanode ids holding a replica.
        self.locations: List[str] = []
        #: True once finalized; committed blocks are immutable.
        self.committed = False

    @property
    def name(self) -> str:
        return f"blk_{self.block_id}"

    @property
    def end_offset(self) -> int:
        """File offset one past the block's last byte."""
        return self.offset + self.size

    def contains(self, file_offset: int) -> bool:
        return self.offset <= file_offset < self.end_offset

    def __repr__(self) -> str:
        state = "committed" if self.committed else "under-construction"
        return (f"<Block {self.name} of {self.file_path}[{self.index}] "
                f"{self.size}B @ {self.locations} {state}>")
