"""Virtualization-aware block placement and replica selection.

Models VMware HVE-style topology awareness (upstreamed into Hadoop 1.2.0+,
and the deployment style the paper assumes): the cluster knows which
physical host each datanode VM runs on, prefers a **co-located datanode VM**
(same host, different VM) for reads, and spreads replicas across hosts for
writes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class PlacementPolicy:
    """Chooses datanodes for new blocks and replicas for reads."""

    def __init__(self, namenode):
        self.namenode = namenode
        self._write_cursor = 0

    # ----------------------------------------------------------------- writes
    def choose_targets(self, client_vm, replication: int,
                       favored: Optional[Sequence[str]] = None,
                       spread: bool = False) -> List[str]:
        """Datanode ids for a new block's replica pipeline.

        Order of preference: explicitly favored datanodes, then a co-located
        datanode (same physical host as the writer), then remaining
        datanodes round-robin across hosts.  With ``spread=True`` the
        co-located preference is skipped and first replicas round-robin over
        all datanodes — how the paper's *hybrid* datasets (read from both
        the co-located and the remote datanode) are laid out.
        """
        datanodes = [dn_id for dn_id in self.namenode.datanode_ids()
                     if dn_id not in self.namenode.excluded_datanodes]
        if not datanodes:
            raise RuntimeError("no placement-eligible datanodes")
        if replication > len(datanodes):
            raise RuntimeError(
                f"replication {replication} exceeds {len(datanodes)} datanodes")
        chosen: List[str] = []
        if favored:
            for dn_id in favored:
                if dn_id not in datanodes:
                    raise RuntimeError(f"unknown favored datanode {dn_id!r}")
                if dn_id not in chosen:
                    chosen.append(dn_id)
                if len(chosen) == replication:
                    return chosen
        if not spread:
            local = self._co_located(client_vm, datanodes)
            if local is not None and local not in chosen:
                chosen.append(local)
        # Fill remaining slots round-robin for even spread.
        ordered = datanodes[self._write_cursor:] + datanodes[:self._write_cursor]
        self._write_cursor = (self._write_cursor + 1) % len(datanodes)
        for dn_id in ordered:
            if len(chosen) == replication:
                break
            if dn_id not in chosen:
                chosen.append(dn_id)
        return chosen[:replication]

    # ------------------------------------------------------------------ reads
    def choose_read_replica(self, client_vm, locations: Sequence[str]) -> str:
        """Pick the replica to read: co-located VM first, then any remote."""
        return self.rank_read_replicas(client_vm, locations)[0]

    def rank_read_replicas(self, client_vm,
                           locations: Sequence[str]) -> List[str]:
        """All replicas in preference order (co-located first).

        Clients walk this list on read failures: if the preferred replica's
        datanode is down or lost the block, the next one is tried.
        """
        if not locations:
            raise RuntimeError("block has no locations")
        local = [dn_id for dn_id in locations
                 if self.namenode.datanode(dn_id).vm.host is client_vm.host]
        remote = [dn_id for dn_id in locations if dn_id not in local]
        return local + remote

    # ---------------------------------------------------------------- helpers
    def _co_located(self, client_vm, datanodes: Sequence[str]) -> Optional[str]:
        for dn_id in datanodes:
            datanode = self.namenode.datanode(dn_id)
            if (datanode.vm.host is client_vm.host
                    and datanode.vm is not client_vm):
                return dn_id
        return None
