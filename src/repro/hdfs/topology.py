"""Virtualization- and rack-aware block placement and replica selection.

Models VMware HVE-style topology awareness (upstreamed into Hadoop 1.2.0+,
and the deployment style the paper assumes) extended with HDFS's default
rack-aware placement rule:

* **reads** rank replicas by network distance — a co-located datanode VM
  (same physical host, different VM) first, then same-rack datanodes, then
  cross-rack ones;
* **writes** place replica 1 local (the co-located datanode when one
  exists), replica 2 on a *different* rack, replica 3 on the *same* remote
  rack as replica 2 but a different node, and any further replicas
  round-robin — so three replicas always span exactly two racks, the
  write pipeline crosses the aggregation fabric once, and the loss of a
  whole rack never loses a block.

On a single-rack topology (the paper's Figure 10 testbed) the rack rule
degenerates to the previous behaviour byte-for-byte: co-located replica
first, remaining replicas round-robin across hosts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.lan import host_distance


class PlacementPolicy:
    """Chooses datanodes for new blocks and replicas for reads."""

    def __init__(self, namenode):
        self.namenode = namenode
        self._write_cursor = 0
        #: Optional FaultCounters sink (wired by the cluster builder):
        #: placement decisions are counted as ``placement.*`` events, which
        #: makes the rack-aware rule observable in the trace.
        self.counters = None

    # ----------------------------------------------------------------- writes
    def choose_targets(self, client_vm, replication: int,
                       favored: Optional[Sequence[str]] = None,
                       spread: bool = False, hot: bool = False) -> List[str]:
        """Datanode ids for a new block's replica pipeline.

        Order of preference: explicitly favored datanodes, then a co-located
        datanode (same physical host as the writer), then — when the
        datanodes span more than one rack — the rack-aware fill described
        in the module docstring, falling back to round-robin across hosts.
        With ``spread=True`` the co-located preference is skipped and first
        replicas round-robin over all datanodes — how the paper's *hybrid*
        datasets (read from both the co-located and the remote datanode)
        are laid out.

        ``hot=True`` enables tier-aware placement on a mixed-media cluster:
        replicas fill fastest storage tiers first (stable round-robin
        within a tier), and the co-located preference only holds when the
        co-located datanode sits on the fastest tier.  On a homogeneous
        cluster ``hot`` is a no-op, so single-tier layouts are unchanged.
        """
        datanodes = [dn_id for dn_id in self.namenode.datanode_ids()
                     if dn_id not in self.namenode.excluded_datanodes]
        if not datanodes:
            raise RuntimeError("no placement-eligible datanodes")
        if replication > len(datanodes):
            raise RuntimeError(
                f"replication {replication} exceeds {len(datanodes)} datanodes")
        ranks = {dn: self._tier_rank(dn) for dn in datanodes} if hot else {}
        tiered = hot and len(set(ranks.values())) > 1
        fastest = max(ranks.values()) if tiered else None
        chosen: List[str] = []
        if favored:
            for dn_id in favored:
                if dn_id not in datanodes:
                    raise RuntimeError(f"unknown favored datanode {dn_id!r}")
                if dn_id not in chosen:
                    chosen.append(dn_id)
                if len(chosen) == replication:
                    return chosen
        if not spread:
            local = self._co_located(client_vm, datanodes)
            if tiered and local is not None and ranks[local] != fastest:
                local = None  # hot data skips a slow co-located datanode
            if local is not None and local not in chosen:
                chosen.append(local)
        # Remaining slots fill from a round-robin rotation for even spread.
        ordered = datanodes[self._write_cursor:] + datanodes[:self._write_cursor]
        self._write_cursor = (self._write_cursor + 1) % len(datanodes)
        if tiered:
            # Fast media first; sort stability keeps the round-robin order
            # within each tier, so load still spreads across same-tier nodes.
            ordered = sorted(ordered, key=lambda dn: -ranks[dn])
        elif not spread and len({self._rack_of(dn) for dn in datanodes}) > 1:
            self._rack_aware_fill(chosen, ordered, replication)
        for dn_id in ordered:
            if len(chosen) == replication:
                break
            if dn_id not in chosen:
                chosen.append(dn_id)
        chosen = chosen[:replication]
        if tiered and self.counters is not None:
            self.counters.count(
                "placement.hot", replicas=len(chosen),
                fast=sum(1 for dn in chosen if ranks[dn] == fastest))
        self._count_placement(chosen, replication)
        return chosen

    def _rack_aware_fill(self, chosen: List[str], ordered: Sequence[str],
                         replication: int) -> None:
        """HDFS's default rule: replica 2 off-rack, replica 3 beside it."""
        if not chosen and ordered:
            chosen.append(ordered[0])  # replica 1: writer-preferred node
        if not chosen or len(chosen) >= replication:
            return
        first_rack = self._rack_of(chosen[0])
        remote = next((dn for dn in ordered
                       if dn not in chosen
                       and self._rack_of(dn) != first_rack), None)
        if remote is None:
            return
        chosen.append(remote)  # replica 2: a different rack
        if len(chosen) >= replication:
            return
        remote_rack = self._rack_of(remote)
        sibling = next((dn for dn in ordered
                        if dn not in chosen
                        and self._rack_of(dn) == remote_rack), None)
        if sibling is not None:
            chosen.append(sibling)  # replica 3: same remote rack, new node

    def _count_placement(self, chosen: Sequence[str], replication: int) -> None:
        if self.counters is None or not chosen:
            return
        racks = [self._rack_of(dn) for dn in chosen]
        self.counters.count(
            "placement.block",
            replicas=len(chosen), racks=len(set(racks)),
            layout=",".join(f"{dn}@{rack}"
                            for dn, rack in zip(chosen, racks)))
        if len(set(racks)) > 1:
            self.counters.count("placement.cross-rack")

    # ------------------------------------------------------------------ reads
    def choose_read_replica(self, client_vm, locations: Sequence[str]) -> str:
        """Pick the replica to read: the nearest one by network distance."""
        return self.rank_read_replicas(client_vm, locations)[0]

    def rank_read_replicas(self, client_vm,
                           locations: Sequence[str]) -> List[str]:
        """All replicas ordered by network distance from the reader.

        Co-located VM (distance 0) first, then same-rack datanodes
        (distance 2), then cross-rack ones (distance 4); ties keep the
        namenode's location order.  Clients walk this list on read
        failures: if the preferred replica's datanode is down or lost the
        block, the next one is tried.
        """
        if not locations:
            raise RuntimeError("block has no locations")
        return sorted(locations, key=lambda dn_id: host_distance(
            client_vm.host, self.namenode.datanode(dn_id).vm.host))

    # ---------------------------------------------------------------- helpers
    def _rack_of(self, dn_id: str) -> Optional[str]:
        return getattr(self.namenode.datanode(dn_id).vm.host, "rack", None)

    def _tier_rank(self, dn_id: str) -> int:
        """Speed rank of the storage backing a datanode (higher = faster)."""
        storage = getattr(self.namenode.datanode(dn_id).vm.host,
                          "storage", None)
        return storage.profile.rank if storage is not None else 0

    def _co_located(self, client_vm, datanodes: Sequence[str]) -> Optional[str]:
        for dn_id in datanodes:
            datanode = self.namenode.datanode(dn_id)
            if (datanode.vm.host is client_vm.host
                    and datanode.vm is not client_vm):
                return dn_id
        return None
