"""Namenode edit log + fsimage checkpointing.

HDFS journals every namespace mutation to an edit log and periodically
folds it into an fsimage checkpoint; on restart the namenode replays
``fsimage + edits``.  This module gives the simulated namenode the same
durability story: an in-order journal of namespace operations, checkpoint
snapshots, and a replay that reconstructs files, blocks, locations and
commit states exactly.

(The journal records *metadata* only — block contents live on datanodes,
as in real HDFS.)
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.hdfs.config import HdfsConfig
from repro.hdfs.namenode import FileMeta, HdfsError, Namenode


@dataclass(frozen=True)
class EditLogEntry:
    """One journaled namespace mutation."""
    txid: int
    op: str            # 'create' | 'add_block' | 'commit' | 'complete' | 'delete'
    path: str
    payload: Tuple = ()


class EditLog:
    """An append-only journal attached to a namenode via its observer hook
    plus explicit journal calls from :class:`JournaledNamenode`."""

    def __init__(self) -> None:
        self.entries: List[EditLogEntry] = []
        self._next_txid = 1
        #: fsimage checkpoints: (last txid folded in, snapshot)
        self.checkpoints: List[Tuple[int, dict]] = []

    @property
    def last_txid(self) -> int:
        return self.entries[-1].txid if self.entries else 0

    def append(self, op: str, path: str, payload: Tuple = ()) -> EditLogEntry:
        entry = EditLogEntry(self._next_txid, op, path, payload)
        self._next_txid += 1
        self.entries.append(entry)
        return entry

    def entries_after(self, txid: int) -> List[EditLogEntry]:
        return [entry for entry in self.entries if entry.txid > txid]


class JournaledNamenode(Namenode):
    """A namenode that journals namespace mutations to an :class:`EditLog`."""

    def __init__(self, config: Optional[HdfsConfig] = None, vm=None):
        super().__init__(config, vm)
        self.edit_log = EditLog()

    # ------------------------------------------------------------- mutations
    def create_file(self, path, replication=None, spread=False, hot=False):
        meta = super().create_file(path, replication, spread, hot)
        self.edit_log.append("create", path,
                             (meta.replication, meta.spread, meta.hot))
        return meta

    def allocate_block(self, path, client_vm, favored=None):
        block = super().allocate_block(path, client_vm, favored)
        self.edit_log.append("add_block", path,
                             (block.block_id, tuple(block.locations)))
        return block

    def commit_block(self, block):
        super().commit_block(block)
        self.edit_log.append("commit", block.file_path,
                             (block.block_id, block.size))

    def complete_file(self, path):
        super().complete_file(path)
        self.edit_log.append("complete", path)

    def delete_file(self, path):
        blocks = super().delete_file(path)
        self.edit_log.append("delete", path)
        return blocks

    # ------------------------------------------------------------ checkpoints
    def checkpoint(self) -> int:
        """Fold the log into an fsimage snapshot; returns its txid."""
        snapshot = {
            "files": {
                path: {
                    "replication": meta.replication,
                    "spread": meta.spread,
                    "hot": meta.hot,
                    "complete": meta.complete,
                    "blocks": [
                        {"block_id": b.block_id, "index": b.index,
                         "offset": b.offset, "size": b.size,
                         "locations": list(b.locations),
                         "committed": b.committed}
                        for b in meta.blocks],
                }
                for path, meta in self._files.items()
            },
            "next_block_id": self._next_block_id,
        }
        txid = self.edit_log.last_txid
        self.edit_log.checkpoints.append((txid, snapshot))
        return txid


def replay_into(namenode: Namenode, source: JournaledNamenode) -> None:
    """Rebuild ``namenode``'s namespace from ``source``'s fsimage + edits.

    ``namenode`` must be freshly constructed with the same datanodes
    registered (HDFS restarts rediscover replicas via block reports; here
    the journal carries locations, which is equivalent for write-once
    blocks).
    """
    from repro.hdfs.block import Block

    if namenode._files:
        raise HdfsError("replay target must be empty")
    checkpoint = (source.edit_log.checkpoints[-1]
                  if source.edit_log.checkpoints else (0, {"files": {},
                                                           "next_block_id":
                                                           1000}))
    base_txid, snapshot = checkpoint
    # --- restore the fsimage.
    for path, file_state in snapshot["files"].items():
        meta = FileMeta(path, file_state["replication"],
                        file_state["spread"],
                        file_state.get("hot", False))
        meta.complete = file_state["complete"]
        for block_state in file_state["blocks"]:
            block = Block(block_state["block_id"], path,
                          block_state["index"], block_state["offset"])
            block.size = block_state["size"]
            block.locations = list(block_state["locations"])
            block.committed = block_state["committed"]
            meta.blocks.append(block)
            namenode._blocks[block.name] = block
        namenode._files[path] = meta
    namenode._next_block_id = snapshot["next_block_id"]
    # --- replay edits after the checkpoint.
    for entry in source.edit_log.entries_after(base_txid):
        if entry.op == "create":
            # Pre-tiering journals used a 2-tuple payload without ``hot``.
            replication, spread = entry.payload[:2]
            hot = entry.payload[2] if len(entry.payload) > 2 else False
            namenode._files[entry.path] = FileMeta(entry.path, replication,
                                                   spread, hot)
        elif entry.op == "add_block":
            block_id, locations = entry.payload
            meta = namenode._files[entry.path]
            block = Block(block_id, entry.path, index=len(meta.blocks),
                          offset=meta.length)
            block.locations = list(locations)
            meta.blocks.append(block)
            namenode._blocks[block.name] = block
            namenode._next_block_id = max(namenode._next_block_id,
                                          block_id + 1)
        elif entry.op == "commit":
            block_id, size = entry.payload
            block = namenode._blocks[f"blk_{block_id}"]
            block.size = size
            block.committed = True
        elif entry.op == "complete":
            namenode._files[entry.path].complete = True
        elif entry.op == "delete":
            meta = namenode._files.pop(entry.path)
            for block in meta.blocks:
                namenode._blocks.pop(block.name, None)
        else:
            raise HdfsError(f"unknown edit op {entry.op!r}")
