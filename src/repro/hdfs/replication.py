"""Replication monitoring: heartbeats, dead-node detection, re-replication.

Models the namenode-side machinery HDFS uses to keep replication factors
honest: datanodes heartbeat periodically; when one misses enough beats the
namenode marks it dead, drops it from block locations, and schedules
re-replication of under-replicated blocks — a live datanode holding a
replica streams the block to a new target through the ordinary write
pipeline (so vRead's mount-refresh path sees the new block files too).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.hdfs.block import Block
from repro.hdfs.namenode import Namenode
from repro.hdfs.protocol import Ack, OpWriteBlock, WritePacket
from repro.metrics.accounting import OTHERS
from repro.net.tcp import VmNetwork
from repro.storage.filesystem import FsError, InodeRangeSource


class ReplicationMonitor:
    """Heartbeat tracking + re-replication scheduling for one namenode."""

    def __init__(self, namenode: Namenode, network: VmNetwork,
                 heartbeat_interval: float = 3.0,
                 dead_after_missed: int = 2):
        self.namenode = namenode
        self.network = network
        self.heartbeat_interval = heartbeat_interval
        self.dead_after_missed = dead_after_missed
        self._last_heartbeat: Dict[str, float] = {}
        self._dead: Set[str] = set()
        #: Blocks with a repair in flight (prevents duplicate copies).
        self._repairing: Set[str] = set()
        #: Datanodes being drained (still serve reads; no new placements).
        self._decommissioning: Set[str] = set()
        self.re_replications = 0
        self.re_replication_bytes = 0
        self.rebalance_moves = 0
        self._running = False
        self._sim = None

    # -------------------------------------------------------------- lifecycle
    def start(self, sim) -> None:
        """Begin heartbeating and monitoring (call once after cluster build)."""
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        self._sim = sim
        for dn_id in self.namenode.datanode_ids():
            self._last_heartbeat[dn_id] = sim.now
            sim.process(self._heartbeat_loop(dn_id))
        sim.process(self._monitor_loop())

    def stop(self) -> None:
        """Stop all loops (lets ``sim.run()`` drain)."""
        self._running = False

    def note_datanode_added(self, dn_id: str) -> None:
        """Start heartbeating a datanode registered after :meth:`start`."""
        self.namenode.datanode(dn_id)  # validate
        if dn_id in self._last_heartbeat:
            return
        self._last_heartbeat[dn_id] = self._sim.now if self._sim else 0.0
        if self._running:
            self._sim.process(self._heartbeat_loop(dn_id))

    def forget_datanode(self, dn_id: str) -> None:
        """Drop all state for a datanode removed from the cluster.

        Its heartbeat loop (if any) exits on the next tick because the
        namenode no longer knows the id.
        """
        self._last_heartbeat.pop(dn_id, None)
        self._dead.discard(dn_id)
        self._decommissioning.discard(dn_id)

    def is_dead(self, dn_id: str) -> bool:
        return dn_id in self._dead

    # --------------------------------------------------------- decommission
    def decommission(self, dn_id: str) -> None:
        """Start draining a datanode gracefully.

        The node keeps serving reads, but is excluded from new placements
        and the sweep copies every block it holds elsewhere.  Once
        :meth:`is_drained` turns true the node can be stopped safely.
        """
        self.namenode.datanode(dn_id)  # validate
        self._decommissioning.add(dn_id)
        self.namenode.excluded_datanodes.add(dn_id)

    def is_drained(self, dn_id: str) -> bool:
        """True when no block's *only* replicas remain on ``dn_id``."""
        for block in self.namenode._blocks.values():
            if not block.committed:
                continue
            if dn_id in block.locations:
                others = [loc for loc in block.locations if loc != dn_id]
                if not others:
                    return False
        return True

    def finalize_decommission(self, dn_id: str) -> None:
        """Drop the drained node's replicas from all block locations."""
        if not self.is_drained(dn_id):
            raise RuntimeError(f"{dn_id!r} still holds sole replicas")
        for block in self.namenode._blocks.values():
            if dn_id in block.locations:
                block.locations.remove(dn_id)
        self._decommissioning.discard(dn_id)

    # ------------------------------------------------------------- heartbeats
    def _heartbeat_loop(self, dn_id: str):
        while self._running:
            yield self._sim.timeout(self.heartbeat_interval)
            if not self._running:
                return
            if dn_id not in self._last_heartbeat:
                return  # datanode left the cluster (forget_datanode)
            # Resolved per tick: the node may detach between heartbeats
            # (a same-instant decommission can even beat the first one).
            datanode = self.namenode.datanode(dn_id)
            if not datanode.stopped:
                # A tiny metadata message; CPU cost on the datanode vCPU.
                yield from datanode.vm.vcpu.run(
                    datanode.vm.costs.syscall_cycles, OTHERS)
                self._last_heartbeat[dn_id] = self._sim.now
                if dn_id in self._dead:
                    # Node came back; blocks it reports become readable again
                    # on the next block report (not modeled further).
                    self._dead.discard(dn_id)

    def _monitor_loop(self):
        while self._running:
            yield self._sim.timeout(self.heartbeat_interval)
            if not self._running:
                return
            deadline = (self.heartbeat_interval * self.dead_after_missed)
            for dn_id, last in self._last_heartbeat.items():
                if dn_id in self._dead:
                    continue
                if self._sim.now - last > deadline:
                    self._declare_dead(dn_id)
            # Sweep for blocks that became under-replicated by other means
            # (block-scanner drops, manual decommissions, ...).
            for block in list(self.namenode._blocks.values()):
                if not block.committed or not block.locations:
                    continue
                if block.name in self._repairing:
                    continue
                meta = self.namenode.file(block.file_path)
                effective = [loc for loc in block.locations
                             if loc not in self._decommissioning]
                if len(effective) < meta.replication:
                    self._sim.process(self._re_replicate(block))

    # --------------------------------------------------------- re-replication
    def _declare_dead(self, dn_id: str) -> None:
        self._dead.add(dn_id)
        for block in list(self.namenode._blocks.values()):
            if dn_id in block.locations:
                block.locations.remove(dn_id)
                meta = self.namenode.file(block.file_path)
                if block.locations and len(block.locations) < meta.replication:
                    self._sim.process(self._re_replicate(block))

    def _live_targets(self, block: Block) -> List[str]:
        """Eligible copy targets, in registration order (deterministic)."""
        return [dn_id for dn_id in self.namenode.datanode_ids()
                if dn_id not in self._dead
                and dn_id not in self._decommissioning
                and dn_id not in block.locations]

    def _copy_block(self, block: Block, source_dn, target_dn):
        """Generator: stream one block replica through the write pipeline.

        On success the target joins ``block.locations`` and a commit
        notification fires (so vRead mounts on the target refresh).
        Returns True on success.
        """
        source_path = source_dn.block_path(block.name)
        try:
            payload = yield from source_dn.vm.read_file(source_path)
        except FsError:
            return False
        connection = yield from self.network.connect(
            source_dn.vm, target_dn.vm,
            self.namenode.config.datanode_port)
        yield from connection.send(
            source_dn.vm, OpWriteBlock(block.name, []))
        yield from connection.send(
            source_dn.vm, WritePacket(payload, last=True),
            size=payload.size)
        ack = yield from connection.recv(source_dn.vm)
        if not (isinstance(ack, Ack) and ack.ok):
            return False
        block.locations.append(target_dn.datanode_id)
        self.re_replication_bytes += payload.size
        self.namenode._notify("commit", block, target_dn.datanode_id)
        return True

    def _re_replicate(self, block: Block):
        """Stream the block from a surviving replica to a fresh datanode."""
        if block.name in self._repairing:
            return
        self._repairing.add(block.name)
        try:
            live = self._live_targets(block)
            if not live or not block.locations:
                return
            source_dn = self.namenode.datanode(block.locations[0])
            target_dn = self.namenode.datanode(live[0])
            ok = yield from self._copy_block(block, source_dn, target_dn)
            if ok:
                self.re_replications += 1
        finally:
            self._repairing.discard(block.name)

    # -------------------------------------------------------------- rebalance
    def _replica_counts(self) -> Dict[str, int]:
        """Committed replicas per eligible datanode (registration order)."""
        counts = {dn_id: 0 for dn_id in self.namenode.datanode_ids()
                  if dn_id not in self._dead
                  and dn_id not in self._decommissioning}
        for block in self.namenode._blocks.values():
            if not block.committed:
                continue
            for dn_id in block.locations:
                if dn_id in counts:
                    counts[dn_id] += 1
        return counts

    def rebalance(self, max_moves: Optional[int] = None):
        """Generator: even out replica counts across live datanodes.

        A deterministic single pass of the HDFS balancer idea: while the
        fullest live datanode holds at least two more replicas than the
        emptiest, move one block between them (copy through the ordinary
        write pipeline, then drop the source replica).  Ties break by
        registration order; block choice is by ascending block name.
        Returns the number of replicas moved.
        """
        moved = 0
        while max_moves is None or moved < max_moves:
            counts = self._replica_counts()
            if len(counts) < 2:
                break
            donor = max(counts, key=lambda dn: (counts[dn],
                                                -self._rank(dn)))
            taker = min(counts, key=lambda dn: (counts[dn],
                                                self._rank(dn)))
            if counts[donor] - counts[taker] < 2:
                break
            candidates = sorted(
                block.name for block in self.namenode._blocks.values()
                if block.committed and donor in block.locations
                and taker not in block.locations
                and block.name not in self._repairing)
            if not candidates:
                break
            block = self.namenode.block_by_name(candidates[0])
            source_dn = self.namenode.datanode(donor)
            target_dn = self.namenode.datanode(taker)
            ok = yield from self._copy_block(block, source_dn, target_dn)
            if not ok:
                break
            block.locations.remove(donor)
            # Unlink the donor's copy directly: a namenode-level "delete"
            # notification would drop the block's stream-layer mapping,
            # but the block itself lives on (on the other replicas).
            try:
                source_dn.vm.guest_fs.unlink(
                    source_dn.block_path(block.name))
            except FsError:
                pass
            self.rebalance_moves += 1
            moved += 1
        return moved

    def _rank(self, dn_id: str) -> int:
        return self.namenode.datanode_ids().index(dn_id)

    def __repr__(self) -> str:
        return (f"<ReplicationMonitor dead={sorted(self._dead)} "
                f"re_replications={self.re_replications}>")
