"""The HDFS datanode: serves block reads and write pipelines from a VM.

Block files are plain files under ``config.data_dir`` in the datanode VM's
guest filesystem — which is what lets vRead read them straight off the disk
image.  The read path here is the **vanilla** path the paper measures: the
datanode process reads the block from its (virtual) disk and sends it back
over a TCP socket, paying every copy along the way.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hdfs.config import HdfsConfig
from repro.hdfs.namenode import Namenode
from repro.hdfs.protocol import (
    Ack,
    ErrorResponse,
    OpReadBlock,
    OpWriteBlock,
    WritePacket,
)
from repro.metrics.accounting import OTHERS
from repro.net.tcp import VmNetwork
from repro.sim import Interrupt
from repro.storage.device import DiskError
from repro.storage.filesystem import FsError
from repro.virt.vm import VirtualMachine


class Datanode:
    """A datanode process running inside a VM."""

    def __init__(self, datanode_id: str, vm: VirtualMachine,
                 namenode: Namenode, network: VmNetwork,
                 config: Optional[HdfsConfig] = None):
        self.datanode_id = datanode_id
        self.vm = vm
        self.namenode = namenode
        self.network = network
        self.config = config or namenode.config
        vm.guest_fs.mkdir(self.config.data_dir, parents=True)
        namenode.register_datanode(self)
        namenode.add_observer(self._on_namenode_event)
        self._listener = network.listen(vm, self.config.datanode_port)
        self.blocks_served = 0
        self.bytes_served = 0
        #: Failure injection: a stopped datanode refuses all requests.
        self.stopped = False
        self._handlers: List = []
        self._serve_proc = vm.sim.process(self._serve())

    def stop(self) -> None:
        """Take the datanode down (crash/decommission injection).

        Kills in-flight transfer handlers mid-stream — clients blocked on
        a half-received block hit their attempt timeout and fail over —
        and refuses new requests with an error response.
        """
        self.stopped = True
        for handler in self._handlers:
            if handler.is_alive:
                handler.interrupt("datanode crash")
        self._handlers.clear()

    def start(self) -> None:
        """Bring a stopped datanode back."""
        self.stopped = False

    def shutdown(self) -> None:
        """Tear the datanode down for good (decommission detach).

        Unlike :meth:`stop` this also kills the accept loop and releases
        the listen port, so the VM (or its name) can be retired or reused.
        """
        self.stop()
        if self._serve_proc.is_alive:
            self._serve_proc.interrupt("datanode shutdown")
        self.network.unlisten(self.vm, self.config.datanode_port)

    # ----------------------------------------------------------------- paths
    def block_path(self, block_name: str) -> str:
        return f"{self.config.data_dir}/{block_name}"

    def has_block(self, block_name: str) -> bool:
        return self.vm.guest_fs.exists(self.block_path(block_name))

    # ------------------------------------------------------------- namenode
    def _on_namenode_event(self, event: str, block, datanode_id: str) -> None:
        """Datanode-side cleanup when the namenode deletes a block."""
        if event == "delete" and datanode_id == self.datanode_id:
            path = self.block_path(block.name)
            try:
                self.vm.guest_fs.unlink(path)
            except FsError:
                pass

    # ------------------------------------------------------------------ serve
    def _serve(self):
        """Accept loop: one handler process per incoming connection."""
        while True:
            try:
                connection = yield from self._listener.accept()
            except Interrupt:
                # Shutdown: stop accepting for good.
                return
            self._handlers = [h for h in self._handlers if h.is_alive]
            self._handlers.append(self.vm.sim.process(self._handle(connection)))

    def _handle(self, connection):
        """Serve sequential requests on one connection."""
        while True:
            try:
                request = yield from connection.recv(self.vm)
                if self.stopped:
                    yield from connection.send(
                        self.vm,
                        ErrorResponse(f"datanode {self.datanode_id} is down"))
                    continue
                if isinstance(request, OpReadBlock):
                    yield from self._handle_read(connection, request)
                elif isinstance(request, OpWriteBlock):
                    yield from self._handle_write(connection, request)
                else:
                    yield from connection.send(
                        self.vm, ErrorResponse(f"bad request {request!r}"))
            except Interrupt:
                # Injected crash: drop the connection where it stood.
                return

    def _handle_read(self, connection, request: OpReadBlock):
        """Stream the requested range as a pipeline of data packets.

        Per-packet disk reads + sends let the disk, datanode CPU, vhost
        threads and client CPU overlap — the streaming behaviour of the
        real DataXceiver.
        """
        costs = self.vm.costs
        path = self.block_path(request.block_name)
        if not self.vm.guest_fs.exists(path):
            yield from connection.send(
                self.vm, ErrorResponse(f"no such block file: {path}"))
            return
        packet_bytes = self.config.packet_bytes
        sent = 0
        while sent < request.length:
            take = min(packet_bytes, request.length - sent)
            try:
                piece = yield from self.vm.read_file(
                    path, request.offset + sent, take, copy_category=OTHERS)
            except (FsError, DiskError) as exc:
                # Injected/modelled I/O error: report it like a failed
                # DataXceiver so the client fails over to another replica.
                yield from connection.send(self.vm, ErrorResponse(str(exc)))
                return
            # Checksum the outgoing packet (CRC32 of the packet stream).
            yield from self.vm.vcpu.run(
                costs.hdfs_checksum_cycles_per_byte * piece.size, OTHERS)
            yield from connection.send(self.vm, piece, copy_category=OTHERS)
            sent += take
        self.blocks_served += 1
        self.bytes_served += request.length

    def _handle_write(self, connection, request: OpWriteBlock):
        costs = self.vm.costs
        path = self.block_path(request.block_name)
        # A write pipeline builds the block from scratch (real datanodes
        # write to a tmp file and rename); any stale/corrupt leftover copy
        # is discarded, which matters for re-replication repairs.
        if self.vm.guest_fs.exists(path):
            inode = self.vm.guest_fs.lookup(path)
            self.vm.guest_cache.invalidate(self.vm.image.cache_key(inode))
            inode.truncate()
        downstream_conn = None
        if request.downstream:
            next_dn = self.namenode.datanode(request.downstream[0])
            downstream_conn = yield from self.network.connect(
                self.vm, next_dn.vm, self.config.datanode_port)
            yield from downstream_conn.send(
                self.vm, OpWriteBlock(request.block_name,
                                      request.downstream[1:]))
        while True:
            packet = yield from connection.recv(self.vm)
            if not isinstance(packet, WritePacket):
                yield from connection.send(
                    self.vm, ErrorResponse(f"expected packet, got {packet!r}"))
                return
            if downstream_conn is not None:
                yield from downstream_conn.send(
                    self.vm, packet, copy_category=OTHERS)
            if packet.payload.size > 0:
                yield from self.vm.vcpu.run(
                    costs.hdfs_checksum_cycles_per_byte * packet.payload.size,
                    OTHERS)
                yield from self.vm.write_file(path, packet.payload,
                                              copy_category=OTHERS)
            if packet.last:
                break
        if downstream_conn is not None:
            ack = yield from downstream_conn.recv(self.vm)
            if not (isinstance(ack, Ack) and ack.ok):
                yield from connection.send(
                    self.vm, ErrorResponse("downstream pipeline failed"))
                return
        yield from connection.send(self.vm, Ack(request.block_name))

    def __repr__(self) -> str:
        return f"<Datanode {self.datanode_id} vm={self.vm.name}>"
