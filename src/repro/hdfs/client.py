"""DFSClient: the HDFS client library (DFSInputStream / DFSOutputStream).

The read interfaces mirror Hadoop 1.2.1's ``DFSInputStream``:

* :meth:`DfsInputStream.read` — the paper's ``read1``: sequential reads of
  at most one block per call, via a cached block connection.
* :meth:`DfsInputStream.pread` — the paper's ``read2``: positional reads
  that may span blocks (``getRangeBlock`` + per-block fetch).

``_read_block_data`` is the seam both call into; the vanilla implementation
streams from the chosen datanode over TCP.  vRead subclasses the stream in
:mod:`repro.core.integration` and overrides exactly this seam with
Algorithms 1 and 2, falling back to this implementation when no vRead
descriptor can be obtained.

Resilience (:mod:`repro.faults`): block fetches run under a per-read
deadline; each replica conversation has its own attempt budget; failed
replicas are blacklisted on the client for a while (Hadoop's dead-node
list) and passes over the replica list are separated by seeded, jittered
exponential backoff from the client's :class:`~repro.faults.retry.RetryPolicy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.faults.retry import (DeadlineExceeded, RetryPolicy,
                                call_with_deadline)
from repro.hdfs.block import Block
from repro.hdfs.config import HdfsConfig
from repro.hdfs.namenode import HdfsError, Namenode
from repro.hdfs.protocol import (
    Ack,
    ErrorResponse,
    HdfsProtocolError,
    OpReadBlock,
    OpWriteBlock,
    WritePacket,
)
from repro.metrics.accounting import CLIENT_APPLICATION, OTHERS
from repro.net.tcp import VmNetwork
from repro.storage.content import ByteSource, ConcatSource, LiteralSource, SliceSource
from repro.virt.vm import VirtualMachine

#: Packet size for write pipelines.
WRITE_PACKET_BYTES = 1 << 20


class DfsClient:
    """An HDFS client bound to one VM."""

    def __init__(self, vm: VirtualMachine, namenode: Namenode,
                 network: VmNetwork,
                 retry_policy: Optional[RetryPolicy] = None,
                 counters=None, retry_rng=None):
        self.vm = vm
        self.namenode = namenode
        self.network = network
        self.config: HdfsConfig = namenode.config
        self.retry_policy = retry_policy or RetryPolicy()
        #: Optional FaultCounters sink (wired by the cluster builder).
        self.counters = counters
        #: Seeded random.Random for backoff jitter; None = no jitter.
        self.retry_rng = retry_rng
        #: Hadoop's dead-node list: datanode id -> blacklist expiry time.
        self.dead_datanodes: Dict[str, float] = {}

    # -------------------------------------------------------------- resilience
    def blacklist(self, dn_id: str) -> None:
        """Mark a datanode dead for ``retry_policy.blacklist_seconds``."""
        self.dead_datanodes[dn_id] = (self.vm.sim.now
                                      + self.retry_policy.blacklist_seconds)

    def is_blacklisted(self, dn_id: str) -> bool:
        expiry = self.dead_datanodes.get(dn_id)
        if expiry is None:
            return False
        if self.vm.sim.now >= expiry:
            del self.dead_datanodes[dn_id]
            return False
        return True

    def count_recovery(self, name: str, **fields) -> None:
        if self.counters is not None:
            self.counters.count(name, vm=self.vm.name, **fields)

    # ------------------------------------------------------------------ files
    def open(self, path: str):
        """Generator: open ``path`` for reading; returns a DfsInputStream."""
        yield from self.namenode.rpc(self.vm)
        blocks = self.namenode.get_blocks(path)
        return self._input_stream(path, blocks)

    def _input_stream(self, path: str, blocks: List[Block]) -> "DfsInputStream":
        """Stream factory — overridden by the vRead-enabled client."""
        return DfsInputStream(self, path, blocks)

    def create(self, path: str, replication: Optional[int] = None,
               favored: Optional[Sequence[str]] = None,
               spread: bool = False, hot: bool = False):
        """Generator: create ``path`` for writing; returns a DfsOutputStream.

        ``spread=True`` lays blocks out round-robin across datanodes (the
        paper's hybrid scenario) instead of preferring the co-located one.
        ``hot=True`` marks the file as hot data: on a mixed-tier cluster
        the placement policy steers its blocks onto the fastest media.
        """
        yield from self.namenode.rpc(self.vm)
        self.namenode.create_file(path, replication, spread, hot)
        return DfsOutputStream(self, path, favored)

    def delete(self, path: str):
        """Generator: delete a file (metadata + replica block files)."""
        yield from self.namenode.rpc(self.vm)
        self.namenode.delete_file(path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def file_length(self, path: str) -> int:
        return self.namenode.file_length(path)

    # ------------------------------------------------------------ conveniences
    def write_file(self, path: str, content: Union[bytes, ByteSource],
                   replication: Optional[int] = None,
                   favored: Optional[Sequence[str]] = None,
                   spread: bool = False, hot: bool = False):
        """Generator: create ``path`` and write ``content`` in one shot."""
        stream = yield from self.create(path, replication, favored, spread,
                                        hot)
        yield from stream.write(content)
        yield from stream.close()

    def read_file(self, path: str, request_bytes: int = 1 << 20):
        """Generator: sequentially read all of ``path``; returns a ByteSource."""
        stream = yield from self.open(path)
        pieces = []
        while True:
            piece = yield from stream.read(request_bytes)
            if piece is None:
                break
            pieces.append(piece)
        stream.close()
        return ConcatSource(pieces)


class DfsInputStream:
    """Sequential + positional reads over one HDFS file."""

    def __init__(self, client: DfsClient, path: str, blocks: List[Block]):
        self.client = client
        self.path = path
        self.blocks = blocks
        self.position = 0
        self.closed = False
        self._connections: Dict[str, object] = {}

    # ------------------------------------------------------------- geometry
    @property
    def length(self) -> int:
        return sum(block.size for block in self.blocks)

    def _block_at(self, offset: int) -> Optional[Block]:
        for block in self.blocks:
            if block.contains(offset):
                return block
        return None

    # -------------------------------------------------------------- read1
    def read(self, length: int):
        """Generator (read1): read up to ``length`` bytes at the current
        position, never crossing a block boundary.

        Returns a ByteSource, or None at EOF.
        """
        self._check_open()
        if length <= 0:
            raise HdfsProtocolError(f"read length must be positive: {length}")
        block = self._block_at(self.position)
        if block is None:
            return None
        block_offset = self.position - block.offset
        to_read = min(length, block.size - block_offset)
        data = yield from self._read_block_data(block, block_offset, to_read)
        self.position += data.size
        return data

    # -------------------------------------------------------------- read2
    def pread(self, position: int, length: int):
        """Generator (read2): positional read spanning blocks; does not move
        the stream position.  Returns a ByteSource (possibly short at EOF).
        """
        self._check_open()
        yield from self.client.namenode.rpc(self.client.vm)
        blocks = self.client.namenode.blocks_in_range(
            self.path, position, length)
        pieces = []
        remaining = length
        cursor = position
        for block in blocks:
            if remaining == 0:
                break
            start = cursor - block.offset
            bytes_to_read = min(remaining, block.size - start)
            piece = yield from self._read_block_data(block, start, bytes_to_read)
            pieces.append(piece)
            remaining -= bytes_to_read
            cursor += bytes_to_read
        return ConcatSource(pieces)

    def seek(self, position: int) -> int:
        self._check_open()
        if position < 0:
            raise HdfsProtocolError(f"negative seek {position}")
        self.position = position
        return self.position

    def skip(self, nbytes: int) -> int:
        return self.seek(self.position + nbytes)

    # ------------------------------------------------------------- data path
    def _read_block_data(self, block: Block, offset: int, length: int):
        """Generator: fetch ``length`` bytes of ``block`` — the vRead seam.

        The vanilla implementation is Hadoop's ``read_buffer``/``fetchBlock``:
        pick a replica (co-located VM preferred), stream over TCP.
        """
        return (yield from self._fetch_from_datanode(block, offset, length))

    def _fetch_from_datanode(self, block: Block, offset: int, length: int):
        """Generator: the vanilla TCP block fetch with replica failover.

        Replicas are tried in topology-preference order; a dead datanode,
        missing block file, or hung conversation fails over to the next
        replica, like Hadoop's dead-node tracking in DFSInputStream.  The
        whole fetch is bounded by the retry policy's ``read_deadline``.
        """
        return (yield from call_with_deadline(
            self.client.vm.sim,
            self._fetch_with_retries(block, offset, length),
            self.client.retry_policy.read_deadline))

    def _fetch_with_retries(self, block: Block, offset: int, length: int):
        """Generator: retry passes over the replica list with backoff."""
        client = self.client
        policy = client.retry_policy
        sim = client.vm.sim
        last_error: Optional[Exception] = None
        failures = 0
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                delay = policy.backoff(attempt - 1, client.retry_rng)
                if delay > 0:
                    yield sim.timeout(delay)
            ranked = client.namenode.policy.rank_read_replicas(
                client.vm, block.locations)
            replicas = [dn for dn in ranked
                        if not client.is_blacklisted(dn)]
            if not replicas:
                # Everything blacklisted: a retry pass against the ranked
                # list beats giving up (a node may have come back).
                replicas = ranked
            for dn_id in replicas:
                try:
                    result = yield from call_with_deadline(
                        sim, self._fetch_from_one(dn_id, block, offset,
                                                  length),
                        policy.attempt_timeout)
                except (HdfsProtocolError, DeadlineExceeded) as exc:
                    last_error = exc
                    failures += 1
                    client.blacklist(dn_id)
                    # A failed/abandoned conversation poisons the cached
                    # connection; reconnect on the next attempt.
                    self._drop_connection(dn_id)
                    continue
                if failures:
                    client.count_recovery("recovery.replica-failover",
                                          block=block.name, datanode=dn_id,
                                          failures=failures)
                return result
        raise HdfsProtocolError(
            f"all replicas of {block.name} failed: {last_error}")

    def _fetch_from_one(self, dn_id: str, block: Block, offset: int,
                        length: int):
        """Generator: stream one replica's packets."""
        client = self.client
        connection = yield from self._connection(dn_id)
        yield from connection.send(
            client.vm, OpReadBlock(block.name, offset, length))
        costs = client.vm.costs
        pieces = []
        received = 0
        while received < length:
            response = yield from connection.recv(
                client.vm, copy_category=CLIENT_APPLICATION)
            if isinstance(response, ErrorResponse):
                raise HdfsProtocolError(response.message)
            # Verify this packet's checksums client-side.
            yield from client.vm.vcpu.run(
                costs.hdfs_checksum_cycles_per_byte * response.size,
                CLIENT_APPLICATION)
            pieces.append(response)
            received += response.size
        return ConcatSource(pieces)

    def _connection(self, dn_id: str):
        """Generator: per-stream cached connection to a datanode."""
        connection = self._connections.get(dn_id)
        if connection is None:
            datanode = self.client.namenode.datanode(dn_id)
            connection = yield from self.client.network.connect(
                self.client.vm, datanode.vm, self.client.config.datanode_port)
            self._connections[dn_id] = connection
        return connection

    def _drop_connection(self, dn_id: str) -> None:
        connection = self._connections.pop(dn_id, None)
        if connection is not None:
            connection.close()

    def close(self) -> None:
        self.closed = True
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()

    def _check_open(self) -> None:
        if self.closed:
            raise HdfsProtocolError("stream is closed")


class DfsOutputStream:
    """Block-granular append-only writer (Hadoop's write-once discipline)."""

    def __init__(self, client: DfsClient, path: str,
                 favored: Optional[Sequence[str]] = None):
        self.client = client
        self.path = path
        self.favored = list(favored) if favored else None
        self.closed = False
        self._block: Optional[Block] = None
        self._pipeline_connection = None
        self.on_block_committed = None  # vRead hooks vRead_update here

    def write(self, content: Union[bytes, ByteSource]):
        """Generator: append ``content``, spilling into new blocks as needed."""
        self._check_open()
        source = (LiteralSource(content)
                  if isinstance(content, (bytes, bytearray)) else content)
        written = 0
        block_size = self.client.config.block_size
        while written < source.size:
            if self._block is None:
                yield from self._start_block()
            room = block_size - self._block.size
            chunk = min(room, source.size - written,
                        WRITE_PACKET_BYTES)
            payload = SliceSource(source, written, chunk)
            yield from self._send_packet(payload, last=False)
            self._block.size += chunk
            written += chunk
            if self._block.size == block_size:
                yield from self._finish_block()
        return written

    def close(self):
        """Generator: flush the final partial block and complete the file."""
        self._check_open()
        if self._block is not None:
            yield from self._finish_block()
        self.client.namenode.complete_file(self.path)
        self.closed = True

    # -------------------------------------------------------------- pipeline
    def _start_block(self):
        client = self.client
        yield from client.namenode.rpc(client.vm)
        self._block = client.namenode.allocate_block(
            self.path, client.vm, self.favored)
        first = client.namenode.datanode(self._block.locations[0])
        self._pipeline_connection = yield from client.network.connect(
            client.vm, first.vm, client.config.datanode_port)
        yield from self._pipeline_connection.send(
            client.vm,
            OpWriteBlock(self._block.name, self._block.locations[1:]))

    def _send_packet(self, payload: ByteSource, last: bool):
        yield from self._pipeline_connection.send(
            self.client.vm, WritePacket(payload, last),
            size=payload.size, copy_category=CLIENT_APPLICATION)

    def _finish_block(self):
        client = self.client
        # Empty terminal packet closes the pipeline.
        yield from self._send_packet(LiteralSource(b""), last=True)
        ack = yield from self._pipeline_connection.recv(client.vm)
        if not (isinstance(ack, Ack) and ack.ok):
            raise HdfsProtocolError(f"pipeline failed: {ack!r}")
        yield from client.namenode.rpc(client.vm)
        block = self._block
        client.namenode.commit_block(block)
        self._pipeline_connection.close()
        self._pipeline_connection = None
        self._block = None
        if self.on_block_committed is not None:
            yield from self.on_block_committed(block)

    def _check_open(self) -> None:
        if self.closed:
            raise HdfsProtocolError("stream is closed")
