"""Figure 2: HDFS-in-a-VM read delay vs local-filesystem read delay.

A Java-app-style reader in one VM reads a file (a) from its own local
filesystem and (b) from HDFS served by a co-located datanode VM, with
request sizes 64KB / 1MB / 4MB, both cold ("read without cache") and warm
("read with cache").  The paper's point: the inter-VM path is much slower
in all cases because of device-virtualization copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import (
    FigureResult, load_dataset)
from repro.storage.content import PatternSource
from repro.workloads.filereader import FileReadBenchmark

REQUEST_SIZES = (64 * 1024, 1 << 20, 4 << 20)
SIZE_LABELS = {64 * 1024: "64KB", 1 << 20: "1MB", 4 << 20: "4MB"}


@dataclass
class Fig02Result:
    """Structured result of this experiment (render() for the table)."""
    no_cache: FigureResult
    cache: FigureResult

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        return self.no_cache.render() + "\n\n" + self.cache.render()


def _measure(file_bytes: int, request_bytes: int, cached: bool):
    """Returns (inter-VM, local) per-request delay sinks (SummaryStats)."""
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20))
    payload = PatternSource(file_bytes, seed=2)
    load_dataset(cluster, "/fig2/data", payload, favored=["dn1"])
    cluster.client_vm.guest_fs.mkdir("/data", parents=True)
    cluster.client_vm.guest_fs.create("/data/file", payload)

    def run_local():
        bench = FileReadBenchmark(request_bytes)
        yield from bench.read_local(cluster.client_vm, "/data/file")
        return bench.delays

    def run_hdfs():
        bench = FileReadBenchmark(request_bytes)
        yield from bench.read_hdfs(cluster.clients.get(mode="vanilla"), "/fig2/data")
        return bench.delays

    results = []
    for runner in (run_hdfs, run_local):
        if cached:
            cluster.run(cluster.sim.process(runner()))   # warm-up pass
        else:
            cluster.drop_all_caches()
        results.append(cluster.run(cluster.sim.process(runner())))
    inter_vm, local = results
    return inter_vm, local


def run(file_bytes: int = 16 << 20,
        request_sizes: Sequence[int] = REQUEST_SIZES) -> Fig02Result:
    """Run the Figure 2 experiment; delays are in milliseconds."""
    figures = {}
    for cached, tag, paper_panel in ((False, "no_cache", "Fig 2(a)"),
                                     (True, "cache", "Fig 2(b)")):
        inter_vm, local = [], []
        for request_bytes in request_sizes:
            iv, lc = _measure(file_bytes, request_bytes, cached)
            inter_vm.append(iv)
            local.append(lc)
        figures[tag] = FigureResult.from_sinks(
            figure=paper_panel,
            title=("Virtual HDFS data access delay "
                   + ("with cache" if cached else "without cache")),
            x_label="size of request",
            x_values=[SIZE_LABELS.get(s, str(s)) for s in request_sizes],
            series={"inter-VM": inter_vm, "local": local},
            reduce=lambda delays: delays.mean * 1e3,
            unit="ms",
            notes=f"file={file_bytes >> 20}MB, quad-core @2.0GHz",
        )
    return Fig02Result(figures["no_cache"], figures["cache"])
