"""Ablation: mounted host-FS reads vs "direct read bypassing the host FS".

Paper Section 6 weighs the alternative design where the daemon reads the
raw virtual disk directly: no mounts, no dentry refreshes — but no host
page cache either (every read hits the SSD) and a manual address
translation per read.  This experiment quantifies that trade-off: the
bypass mode should roughly tie on cold reads and lose badly on re-reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import load_dataset
from repro.metrics.report import Table
from repro.storage.content import PatternSource


@dataclass
class DirectReadResult:
    #: mode -> (cold MBps, warm MBps, refreshes performed)
    """Structured result of this experiment (render() for the table)."""
    modes: Dict[str, Tuple[float, float, int]]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["daemon mode", "cold read MB/s", "re-read MB/s",
                       "mount refreshes"],
                      title="Ablation (paper §6): mounted host FS vs "
                            "direct read bypassing it")
        for mode, (cold, warm, refreshes) in self.modes.items():
            table.add_row(mode, f"{cold:.0f}", f"{warm:.0f}", refreshes)
        return table.render()

    @property
    def warm_penalty_pct(self) -> float:
        """How much re-read throughput the bypass mode gives up."""
        mounted = self.modes["mounted host FS"][1]
        bypass = self.modes["bypass host FS"][1]
        return (mounted - bypass) / mounted * 100.0


def _measure(bypass: bool, file_bytes: int) -> Tuple[float, float, int]:
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=True,
                                   vread_bypass_host_fs=bypass)
    load_dataset(cluster, "/abl/data", PatternSource(file_bytes, seed=61),
                 favored=["dn1"])
    client = cluster.clients.get()
    cluster.drop_all_caches()

    def read():
        start = cluster.sim.now
        yield from client.read_file("/abl/data", 1 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    cold = cluster.run(cluster.sim.process(read()))
    warm = cluster.run(cluster.sim.process(read()))
    refreshes = cluster.vread_manager.service_for(cluster.hosts[0]).refreshes
    return cold, warm, refreshes


def run(file_bytes: int = 32 << 20) -> DirectReadResult:
    """Run the experiment; see the module docstring for the setup."""
    mounted = _measure(False, file_bytes)
    bypass = _measure(True, file_bytes)
    return DirectReadResult({"mounted host FS": mounted,
                             "bypass host FS": bypass})
