"""The experiment registry: one :class:`ExperimentSpec` per paper result.

Every experiment the reproduction can run is registered here with its CLI
name, the paper figure/table it reproduces, its parameter grid per size
profile (``quick`` / ``default`` / ``paper``), and a lazily-imported
builder function.  The CLI (``python -m repro run <name>``), the full
report (:mod:`repro.experiments.run_all`) and the parallel runner
(:mod:`repro.experiments.runner`) are all thin clients of this table; it
is the only entry point (the old per-module ``main()`` shims are gone).

Sweep-shaped experiments additionally register a :class:`Fanout`: a way to
decompose the run into independent *points* (one simulated cluster each)
that the runner may execute across worker processes.  Each point receives a
seed derived deterministically from ``(root_seed, point)``, so serial and
parallel runs are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Size profiles accepted by :meth:`ExperimentSpec.params`.
PROFILES = ("quick", "default", "paper")

_MB = 1 << 20


def _sizes(profile: str) -> Dict[str, int]:
    """The shared dataset-size knobs per profile (see EXPERIMENTS.md)."""
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r}; expected one of "
                       f"{', '.join(PROFILES)}")
    if profile == "paper":
        return {"file_bytes": 1024 * _MB, "delay_bytes": 1024 * _MB}
    if profile == "quick":
        return {"file_bytes": 8 * _MB, "delay_bytes": 8 * _MB}
    return {"file_bytes": 32 * _MB, "delay_bytes": 16 * _MB}


@dataclass(frozen=True)
class Fanout:
    """Decomposition of an experiment into independent sweep points.

    ``points(kwargs)`` lists the points (hashable tuples) in serial order;
    ``run_point(point, seed, kwargs)`` measures one point in isolation
    (called in a worker process — it must depend only on its arguments);
    ``assemble(results, kwargs, build)`` combines the ordered
    ``[(point, result), ...]`` list into the experiment's final result,
    typically by seeding a module-level memo cache and calling ``build``.
    """

    points: Callable[[Dict[str, Any]], List[Tuple]]
    run_point: Callable[[Tuple, int, Dict[str, Any]], Any]
    assemble: Callable[[List[Tuple[Tuple, Any]], Dict[str, Any],
                        Callable[..., Any]], Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: identity, parameters, builder, fan-out."""

    name: str                                  # CLI name, e.g. "fig11"
    figure: str                                # report heading, e.g. "Fig 11"
    title: str                                 # one-line description
    module: str                                # module under repro.experiments
    func: str = "run"                          # builder attribute in module
    #: profile -> builder kwargs (the parameter grid).
    params: Callable[[str], Dict[str, Any]] = field(default=lambda p: {})
    fanout: Optional[Fanout] = None
    #: result -> headline lines for the report (paper-comparison numbers).
    headline: Optional[Callable[[Any], List[str]]] = None
    #: report group: "paper" always runs; "ablation"/"extension" run with
    #: --ablations; "other" is CLI-only.
    group: str = "paper"

    def resolve(self) -> Callable[..., Any]:
        """Import and return the builder function."""
        return getattr(import_module(f"repro.experiments.{self.module}"),
                       self.func)

    def build(self, profile: str = "default", **overrides) -> Any:
        """Run the experiment serially with the profile's parameters."""
        kwargs = dict(self.params(profile))
        kwargs.update(overrides)
        return self.resolve()(**kwargs)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        from difflib import get_close_matches
        known = ", ".join(sorted(_REGISTRY))
        hint = ""
        close = get_close_matches(name, _REGISTRY, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise KeyError(f"unknown experiment {name!r}{hint}; known: {known}")


def names() -> List[str]:
    """Registered experiment names, in registration (report) order."""
    return list(_REGISTRY)


def specs(groups: Optional[Sequence[str]] = None) -> List[ExperimentSpec]:
    """Registered specs, optionally filtered by group, in report order."""
    if groups is None:
        return list(_REGISTRY.values())
    return [spec for spec in _REGISTRY.values() if spec.group in groups]


# --------------------------------------------------------------------- fanouts
def _dfsio_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    from repro.experiments.dfsio_sweep import MODES, SCENARIOS, VM_COUNTS
    from repro.hostmodel.frequency import PAPER_FREQUENCIES
    frequencies = kwargs.get("frequencies", PAPER_FREQUENCIES)
    return [(scenario, frequency, vms, mode)
            for scenario in SCENARIOS
            for frequency in frequencies
            for vms in VM_COUNTS
            for mode in MODES]


def _dfsio_points_single_frequency(kwargs: Dict[str, Any]) -> List[Tuple]:
    # Figure 13 sweeps scenarios at one frequency with 2 VMs per host.
    from repro.experiments.dfsio_sweep import MODES, SCENARIOS
    from repro.hostmodel.frequency import GHZ_2_0
    frequency = kwargs.get("frequency_hz", GHZ_2_0)
    return [(scenario, frequency, 2, mode)
            for scenario in SCENARIOS for mode in MODES]


def _dfsio_run_point(point: Tuple, seed: int,
                     kwargs: Dict[str, Any]) -> Any:
    # The dfsio cells are seed-free (fully deterministic given the grid);
    # the derived seed is accepted for interface uniformity.
    from repro.experiments.dfsio_sweep import run_cell
    scenario, frequency, vms, mode = point
    return run_cell(scenario, frequency, vms, mode,
                    file_bytes=kwargs.get("file_bytes", 32 << 20),
                    n_files=kwargs.get("n_files", 2))


def _dfsio_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    # Install the worker-computed cells into the sweep memo, then let the
    # figure builder run serially — every run_cell call is now a cache hit.
    from repro.experiments import dfsio_sweep
    file_bytes = kwargs.get("file_bytes", 32 << 20)
    n_files = kwargs.get("n_files", 2)
    for (scenario, frequency, vms, mode), cell in results:
        key = (scenario, frequency, vms, mode, file_bytes, n_files, 1 << 20)
        dfsio_sweep._cache[key] = cell
    return build(**kwargs)


_DFSIO_FANOUT = Fanout(points=_dfsio_points, run_point=_dfsio_run_point,
                       assemble=_dfsio_assemble)
_DFSIO_FANOUT_SINGLE = Fanout(points=_dfsio_points_single_frequency,
                              run_point=_dfsio_run_point,
                              assemble=_dfsio_assemble)


def _chaos_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    return [("case", index) for index in range(kwargs.get("cases", 6))]


def _chaos_run_point(point: Tuple, seed: int, kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.chaos_sweep import run_case
    return run_case(plan_seed=seed,
                    file_bytes=kwargs.get("file_bytes", 4 << 20),
                    faults=kwargs.get("faults", 3),
                    horizon=kwargs.get("horizon", 0.002))


def _chaos_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    from repro.experiments.chaos_sweep import assemble
    return assemble([case for _, case in results],
                    file_bytes=kwargs.get("file_bytes", 4 << 20))


_CHAOS_FANOUT = Fanout(points=_chaos_points, run_point=_chaos_run_point,
                       assemble=_chaos_assemble)


def _scale_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    return [(mode, n_clients)
            for n_clients in kwargs.get("client_counts", (1, 2, 4))
            for mode in ("vanilla", "vRead")]


def _scale_run_point(point: Tuple, seed: int, kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.scale_clients import _measure
    mode, n_clients = point
    return _measure(mode == "vRead", n_clients,
                    kwargs.get("file_bytes", 16 << 20))


def _scale_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    from repro.experiments.scale_clients import assemble
    values = {point: mbps for point, mbps in results}
    return assemble(values,
                    client_counts=kwargs.get("client_counts", (1, 2, 4)),
                    file_bytes=kwargs.get("file_bytes", 16 << 20))


_SCALE_FANOUT = Fanout(points=_scale_points, run_point=_scale_run_point,
                       assemble=_scale_assemble)


def _racks_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    return [(mode, n_racks)
            for n_racks in kwargs.get("rack_counts", (1, 2, 3))
            for mode in ("vanilla", "vRead")]


def _racks_run_point(point: Tuple, seed: int, kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.scale_racks import _measure
    mode, n_racks = point
    return _measure(mode == "vRead", n_racks,
                    kwargs.get("file_bytes", 4 << 20))


def _racks_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    from repro.experiments.scale_racks import assemble
    values = {point: rack_point for point, rack_point in results}
    return assemble(values,
                    rack_counts=kwargs.get("rack_counts", (1, 2, 3)),
                    file_bytes=kwargs.get("file_bytes", 4 << 20))


_RACKS_FANOUT = Fanout(points=_racks_points, run_point=_racks_run_point,
                       assemble=_racks_assemble)


def _churn_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    from repro.experiments.scale_churn import CHURN_LEVELS, MODES
    return [(mode, churn) for mode in MODES
            for churn in kwargs.get("churn_levels", CHURN_LEVELS)]


def _churn_run_point(point: Tuple, seed: int, kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.scale_churn import _measure
    mode, churn = point
    return _measure(mode == "vRead", churn,
                    kwargs.get("file_bytes", 2 << 20),
                    kwargs.get("duration", 2.0), seed)


def _churn_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    from repro.experiments.scale_churn import CHURN_LEVELS, assemble
    values = {point: churn_point for point, churn_point in results}
    return assemble(values,
                    churn_levels=kwargs.get("churn_levels", CHURN_LEVELS),
                    file_bytes=kwargs.get("file_bytes", 2 << 20),
                    duration=kwargs.get("duration", 2.0))


_CHURN_FANOUT = Fanout(points=_churn_points, run_point=_churn_run_point,
                       assemble=_churn_assemble)


def _load_sweep_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    from repro.experiments.load_sweep import HEALTH, MODES
    return [(mode, health, rate)
            for mode in MODES for health in HEALTH
            for rate in kwargs.get("rates", (20.0, 60.0, 120.0))]


def _load_sweep_run_point(point: Tuple, seed: int,
                          kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.load_sweep import _measure
    mode, health, rate = point
    return _measure(mode == "vRead", health == "chaos", rate, seed,
                    kwargs.get("duration", 2.5),
                    kwargs.get("n_tenants", 2),
                    kwargs.get("request_bytes", 256 << 10),
                    kwargs.get("deadline_ms", 2.0) * 1e-3,
                    kwargs.get("arrival_kind", "bursty"))


def _load_sweep_assemble(results: List[Tuple[Tuple, Any]],
                         kwargs: Dict[str, Any],
                         build: Callable[..., Any]) -> Any:
    from repro.experiments.load_sweep import assemble
    return assemble({point: report for point, report in results}, **kwargs)


_LOAD_SWEEP_FANOUT = Fanout(points=_load_sweep_points,
                            run_point=_load_sweep_run_point,
                            assemble=_load_sweep_assemble)


def _tenants_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    from repro.experiments.scale_tenants import MODES
    return [(mode, n_tenants)
            for mode in MODES
            for n_tenants in kwargs.get("tenant_counts", (1, 2, 4))]


def _tenants_run_point(point: Tuple, seed: int,
                       kwargs: Dict[str, Any]) -> Any:
    from repro.experiments.scale_tenants import _measure
    mode, n_tenants = point
    return _measure(mode == "vRead", n_tenants, seed,
                    kwargs.get("duration", 2.5),
                    kwargs.get("rate", 40.0),
                    kwargs.get("request_bytes", 256 << 10),
                    kwargs.get("deadline_ms", 2.0) * 1e-3,
                    kwargs.get("arrival_kind", "bursty"))


def _tenants_assemble(results: List[Tuple[Tuple, Any]],
                      kwargs: Dict[str, Any],
                      build: Callable[..., Any]) -> Any:
    from repro.experiments.scale_tenants import assemble
    return assemble({point: report for point, report in results}, **kwargs)


_TENANTS_FANOUT = Fanout(points=_tenants_points,
                         run_point=_tenants_run_point,
                         assemble=_tenants_assemble)


def _tiers_points(kwargs: Dict[str, Any]) -> List[Tuple]:
    from repro.experiments.ablation_storage_tiers import MODES, TIERS
    return [(tier, mode) for tier in TIERS for mode in MODES]


def _tiers_run_point(point: Tuple, seed: int, kwargs: Dict[str, Any]) -> Any:
    # Tier cells are seed-free (fully deterministic given the grid); the
    # derived seed is accepted for interface uniformity.
    from repro.experiments.ablation_storage_tiers import run_cell
    tier, mode = point
    return run_cell(tier, mode, kwargs.get("file_bytes", 32 << 20))


def _tiers_assemble(results: List[Tuple[Tuple, Any]],
                    kwargs: Dict[str, Any], build: Callable[..., Any]) -> Any:
    from repro.experiments import ablation_storage_tiers
    file_bytes = kwargs.get("file_bytes", 32 << 20)
    for (tier, mode), cell in results:
        ablation_storage_tiers._cache[(tier, mode, file_bytes)] = cell
    return build(**kwargs)


_TIERS_FANOUT = Fanout(points=_tiers_points, run_point=_tiers_run_point,
                       assemble=_tiers_assemble)


# ------------------------------------------------------------------- headlines
def _headline_breakdown(paper_client: str, paper_serving: str):
    def headline(result) -> List[str]:
        return [f"-> client CPU saving {result.client_saving_pct():.1f}% "
                f"({paper_client}), datanode-side "
                f"{result.serving_saving_pct():.1f}% ({paper_serving})"]
    return headline


def _headline_fig09(result) -> List[str]:
    lines = []
    for vms, paper in (("2vms", 40), ("4vms", 50)):
        best = max(result.reduction_pct(vms, cached, size)
                   for cached in (False, True)
                   for size in result.no_cache.x_values)
        lines.append(f"-> max delay reduction {vms}: {best:.1f}% "
                     f"(paper: up to {paper}%)")
    return lines


def _headline_fig11(result) -> List[str]:
    best_reread = max(
        result.improvement_pct(scenario, "reread", freq, vms)
        for scenario in ("colocated", "remote", "hybrid")
        for freq in ("1.6GHz", "2.0GHz", "3.2GHz")
        for vms in (2, 4))
    return [
        f"-> co-located read improvement: "
        f"{result.improvement_pct('colocated', 'read', '3.2GHz', 2):.1f}% "
        f"@3.2GHz (paper ~20%), "
        f"{result.improvement_pct('colocated', 'read', '1.6GHz', 2):.1f}% "
        f"@1.6GHz (paper ~41%)",
        f"-> best re-read improvement: {best_reread:.1f}% "
        f"(paper: up to 150%)",
    ]


def _headline_fig12(result) -> List[str]:
    return [f"-> co-located read CPU saving @2.0GHz 2vms: "
            f"{result.cpu_saving_pct('colocated', 'read', '2.0GHz', 2):.1f}%"]


def _headline_table3(result) -> List[str]:
    return [f"-> Hive -{result.hive_reduction_pct:.1f}% (paper -21.3%), "
            f"Sqoop -{result.sqoop_reduction_pct:.1f}% (paper -11.3%)"]


# ---------------------------------------------------------------- registration
register(ExperimentSpec(
    name="fig02", figure="Fig 2",
    title="HDFS-in-VM vs local read delay (motivation)",
    module="fig02_motivation_delay",
    params=lambda p: {"file_bytes": _sizes(p)["delay_bytes"]}))

register(ExperimentSpec(
    name="fig03", figure="Fig 3",
    title="netperf TCP_RR under I/O-thread contention",
    module="fig03_iothread_sync",
    params=lambda p: {"duration": 0.1 if p == "quick" else 0.3}))

register(ExperimentSpec(
    name="fig06", figure="Fig 6",
    title="CPU breakdown, co-located read",
    module="cpu_breakdowns", func="run_fig06",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    headline=_headline_breakdown("paper ~40%", "paper ~65%")))

register(ExperimentSpec(
    name="fig07", figure="Fig 7",
    title="CPU breakdown, remote read (RDMA)",
    module="cpu_breakdowns", func="run_fig07",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    headline=_headline_breakdown("paper ~45%", "paper >50%")))

register(ExperimentSpec(
    name="fig08", figure="Fig 8",
    title="CPU breakdown, remote read (TCP daemons)",
    module="cpu_breakdowns", func="run_fig08",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    headline=_headline_breakdown(
        "paper: totals still below vanilla", "same")))

register(ExperimentSpec(
    name="fig09", figure="Fig 9",
    title="data access delay, vanilla vs vRead",
    module="fig09_vread_delay",
    params=lambda p: {"file_bytes": _sizes(p)["delay_bytes"]},
    headline=_headline_fig09))

register(ExperimentSpec(
    name="fig11", figure="Fig 11",
    title="TestDFSIO throughput (6 panels x 3 frequencies)",
    module="fig11_dfsio_throughput",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    fanout=_DFSIO_FANOUT,
    headline=_headline_fig11))

register(ExperimentSpec(
    name="fig12", figure="Fig 12",
    title="TestDFSIO CPU running time",
    module="fig12_dfsio_cputime",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    fanout=_DFSIO_FANOUT,
    headline=_headline_fig12))

register(ExperimentSpec(
    name="fig13", figure="Fig 13",
    title="TestDFSIO-write throughput (vRead_update overhead)",
    module="fig13_write_throughput",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    fanout=_DFSIO_FANOUT_SINGLE))

register(ExperimentSpec(
    name="table2", figure="Table 2",
    title="HBase scan / sequential / random read",
    module="table2_hbase",
    params=lambda p: {"n_rows": 8_192 if p == "quick" else 32_768}))

register(ExperimentSpec(
    name="table3", figure="Table 3",
    title="Hive select + Sqoop export",
    module="table3_hive_sqoop",
    params=lambda p: {"n_rows": 65_536 if p == "quick" else 262_144},
    headline=_headline_table3))

register(ExperimentSpec(
    name="ablation-direct-read", figure="Ablation: direct read (§6)",
    title="mounted host FS vs direct-read bypass (§6)",
    module="ablation_direct_read", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]}))

register(ExperimentSpec(
    name="ablation-transport", figure="Ablation: transport",
    title="RDMA vs TCP daemon transports",
    module="ablation_transport", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]}))

register(ExperimentSpec(
    name="ablation-ring", figure="Ablation: ring geometry",
    title="shared-ring geometry sweep",
    module="ablation_ring", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]}))

register(ExperimentSpec(
    name="ablation-packet-size", figure="Ablation: packet size",
    title="HDFS packet-size sweep",
    module="ablation_packet_size", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]}))

register(ExperimentSpec(
    name="ablation-cache-size", figure="Ablation: cache size",
    title="host page-cache size vs re-read speed",
    module="ablation_cache_size", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]}))


def _headline_tiers(result) -> List[str]:
    from repro.experiments.common import pct_improvement
    hdd = pct_improvement(result.value("vanilla cold", "hdd"),
                          result.value("vRead cold", "hdd"))
    nvme = pct_improvement(result.value("vanilla cold", "nvme"),
                           result.value("vRead cold", "nvme"))
    return [f"-> cold-read gain {hdd:.1f}% on HDD vs {nvme:.1f}% on NVMe "
            f"(fast media shifts the bottleneck to CPU, where vRead wins)"]


register(ExperimentSpec(
    name="ablation-storage-tiers", figure="Ablation: storage tiers",
    title="HDD / SSD / NVMe device sweep, vanilla vs vRead",
    module="ablation_storage_tiers", group="ablation",
    params=lambda p: {"file_bytes": _sizes(p)["file_bytes"]},
    fanout=_TIERS_FANOUT,
    headline=_headline_tiers))

register(ExperimentSpec(
    name="scale-clients", figure="Extension: client scale-out",
    title="multi-client scale-out (extension)",
    module="scale_clients", group="extension",
    params=lambda p: {"file_bytes": (4 if p == "quick" else 16) * _MB},
    fanout=_SCALE_FANOUT))

register(ExperimentSpec(
    name="scale-racks", figure="Extension: rack scale-out",
    title="multi-rack scale-out over the leaf-spine fabric (extension)",
    module="scale_racks", group="extension",
    params=lambda p: {"rack_counts": (1, 2) if p == "quick" else (1, 2, 3),
                      "file_bytes": (2 if p == "quick" else 4) * _MB},
    fanout=_RACKS_FANOUT))


def _headline_churn(result) -> List[str]:
    top = result.x_values[-1]
    return [
        f"-> churn={top!r} p99: vanilla "
        f"{result.value('vanilla p99', top):.2f}ms vs vRead "
        f"{result.value('vRead p99', top):.2f}ms "
        f"(degraded {result.value('vRead degraded %', top):.1f}% of the "
        f"window before re-probe recovered the fast path)",
    ]


register(ExperimentSpec(
    name="scale-churn", figure="Extension: cluster churn",
    title="elastic membership churn under read load (extension)",
    module="scale_churn", group="extension",
    params=lambda p: {
        "churn_levels": (("none", "migrate") if p == "quick"
                         else ("none", "migrate", "full")),
        "file_bytes": (1 if p == "quick" else 2) * _MB,
        "duration": {"quick": 1.0, "default": 2.0, "paper": 3.0}[p]},
    fanout=_CHURN_FANOUT,
    headline=_headline_churn))

def _headline_load_sweep(result) -> List[str]:
    top = result.x_values[-1]
    return [
        f"-> @{top:g} req/s/tenant healthy p99: "
        f"vanilla {result.report('vanilla', 'healthy', top).worst_p99_ms():.2f}ms "
        f"vs vRead {result.report('vRead', 'healthy', top).worst_p99_ms():.2f}ms",
        f"-> chaos violation time @{top:g}: vanilla "
        f"{result.report('vanilla', 'chaos', top).violation_time_fraction() * 100:.0f}% "
        f"vs vRead "
        f"{result.report('vRead', 'chaos', top).violation_time_fraction() * 100:.0f}%",
    ]


register(ExperimentSpec(
    name="load-sweep", figure="Extension: open-loop load sweep",
    title="multi-tenant open-loop SLO sweep, healthy vs chaos (extension)",
    module="load_sweep", group="extension",
    params=lambda p: {
        "rates": {"quick": (20.0, 60.0),
                  "default": (20.0, 60.0, 120.0),
                  "paper": (20.0, 60.0, 120.0, 200.0)}[p],
        "duration": {"quick": 1.5, "default": 2.5, "paper": 4.0}[p],
        "n_tenants": 2,
        "request_bytes": (128 if p == "quick" else 256) << 10,
        "deadline_ms": 2.0,
        "arrival_kind": "bursty"},
    fanout=_LOAD_SWEEP_FANOUT,
    headline=_headline_load_sweep))

register(ExperimentSpec(
    name="scale-tenants", figure="Extension: tenant scale-out",
    title="worst-tenant SLO vs tenant count (extension)",
    module="scale_tenants", group="extension",
    params=lambda p: {
        "tenant_counts": (1, 2) if p == "quick" else (1, 2, 4),
        "rate": 40.0,
        "duration": {"quick": 1.5, "default": 2.5, "paper": 4.0}[p],
        "request_bytes": (128 if p == "quick" else 256) << 10,
        "deadline_ms": 2.0,
        "arrival_kind": "bursty"},
    fanout=_TENANTS_FANOUT))

register(ExperimentSpec(
    name="chaos-sweep", figure="Extension: chaos sweep",
    title="verified reads under seeded fault storms (extension)",
    module="chaos_sweep", group="extension",
    params=lambda p: {"cases": 4 if p == "quick" else 6,
                      "file_bytes": (2 if p == "quick" else 4) * _MB},
    fanout=_CHAOS_FANOUT))

register(ExperimentSpec(
    name="sensitivity", figure="Sensitivity",
    title="cost-model perturbation robustness",
    module="sensitivity", group="other",
    params=lambda p: {"file_bytes": (4 if p == "quick" else 16) * _MB}))
