"""Run every experiment and print the full paper-comparison report.

Usage::

    python -m repro.experiments.run_all [--quick]

``--quick`` shrinks dataset sizes (used in CI); the default sizes are the
ones recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig02_motivation_delay,
    fig03_iothread_sync,
    fig09_vread_delay,
    fig11_dfsio_throughput,
    fig12_dfsio_cputime,
    fig13_write_throughput,
    table2_hbase,
    table3_hive_sqoop,
)
from repro.experiments.cpu_breakdowns import run_fig06, run_fig07, run_fig08


def main(argv=None) -> int:
    """Entry point: run the experiment and print the rendered result."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller datasets (CI-sized)")
    parser.add_argument("--paper", action="store_true",
                        help="paper-sized datasets (1 GB files; the "
                             "application tables stay scaled — see "
                             "EXPERIMENTS.md)")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the ablation/extension studies")
    args = parser.parse_args(argv)
    if args.quick and args.paper:
        parser.error("--quick and --paper are mutually exclusive")

    mb = (1 << 20)
    if args.paper:
        file_bytes = 1024 * mb
        delay_bytes = 1024 * mb
    else:
        file_bytes = 8 * mb if args.quick else 32 * mb
        delay_bytes = 8 * mb if args.quick else 16 * mb

    stages = [
        ("Fig 2", lambda: fig02_motivation_delay.run(file_bytes=delay_bytes)),
        ("Fig 3", lambda: fig03_iothread_sync.run(
            duration=0.1 if args.quick else 0.3)),
        ("Fig 6", lambda: run_fig06(file_bytes=file_bytes)),
        ("Fig 7", lambda: run_fig07(file_bytes=file_bytes)),
        ("Fig 8", lambda: run_fig08(file_bytes=file_bytes)),
        ("Fig 9", lambda: fig09_vread_delay.run(file_bytes=delay_bytes)),
        ("Fig 11", lambda: fig11_dfsio_throughput.run(file_bytes=file_bytes)),
        ("Fig 12", lambda: fig12_dfsio_cputime.run(file_bytes=file_bytes)),
        ("Fig 13", lambda: fig13_write_throughput.run(file_bytes=file_bytes)),
        ("Table 2", lambda: table2_hbase.run(
            n_rows=8_192 if args.quick else 32_768)),
        ("Table 3", lambda: table3_hive_sqoop.run(
            n_rows=65_536 if args.quick else 262_144)),
    ]
    if args.ablations:
        from repro.experiments import (
            ablation_cache_size,
            ablation_direct_read,
            ablation_packet_size,
            ablation_ring,
            ablation_transport,
            scale_clients,
        )
        stages += [
            ("Ablation: direct read (§6)",
             lambda: ablation_direct_read.run(file_bytes=file_bytes)),
            ("Ablation: transport",
             lambda: ablation_transport.run(file_bytes=file_bytes)),
            ("Ablation: ring geometry",
             lambda: ablation_ring.run(file_bytes=file_bytes)),
            ("Ablation: packet size",
             lambda: ablation_packet_size.run(file_bytes=file_bytes)),
            ("Ablation: cache size",
             lambda: ablation_cache_size.run(file_bytes=file_bytes)),
            ("Extension: client scale-out",
             lambda: scale_clients.run(
                 file_bytes=4 * mb if args.quick else 16 * mb)),
        ]
    # Legitimate wall-clock use: this times how long the *experiment runner*
    # takes on the host machine (reported as "wall time"), not anything
    # inside the simulation — simulated time comes only from Simulator.now.
    for name, runner in stages:
        started = time.time()  # simlint: disable=no-wallclock
        result = runner()
        elapsed = time.time() - started  # simlint: disable=no-wallclock
        print(f"\n{'=' * 72}\n{name}  (wall time {elapsed:.1f}s)\n{'=' * 72}")
        print(result.render())
        _print_headlines(name, result)
    return 0


def _print_headlines(name: str, result) -> None:
    if name == "Fig 6":
        print(f"  -> client CPU saving {result.client_saving_pct():.1f}% "
              f"(paper ~40%), datanode-side "
              f"{result.serving_saving_pct():.1f}% (paper ~65%)")
    elif name == "Fig 7":
        print(f"  -> client CPU saving {result.client_saving_pct():.1f}% "
              f"(paper ~45%), datanode-side "
              f"{result.serving_saving_pct():.1f}% (paper >50%)")
    elif name == "Fig 8":
        print(f"  -> client CPU saving {result.client_saving_pct():.1f}%, "
              f"datanode-side {result.serving_saving_pct():.1f}% "
              f"(paper: totals still below vanilla)")
    elif name == "Fig 9":
        for vms, paper in (("2vms", 40), ("4vms", 50)):
            best = max(result.reduction_pct(vms, cached, size)
                       for cached in (False, True)
                       for size in result.no_cache.x_values)
            print(f"  -> max delay reduction {vms}: {best:.1f}% "
                  f"(paper: up to {paper}%)")
    elif name == "Fig 11":
        print(f"  -> co-located read improvement: "
              f"{result.improvement_pct('colocated', 'read', '3.2GHz', 2):.1f}% "
              f"@3.2GHz (paper ~20%), "
              f"{result.improvement_pct('colocated', 'read', '1.6GHz', 2):.1f}% "
              f"@1.6GHz (paper ~41%)")
        print(f"  -> best re-read improvement: "
              f"{max(result.improvement_pct(s, 'reread', f, v) for s in ('colocated', 'remote', 'hybrid') for f in ('1.6GHz', '2.0GHz', '3.2GHz') for v in (2, 4)):.1f}% "
              f"(paper: up to 150%)")
    elif name == "Fig 12":
        print(f"  -> co-located read CPU saving @2.0GHz 2vms: "
              f"{result.cpu_saving_pct('colocated', 'read', '2.0GHz', 2):.1f}%")
    elif name == "Table 3":
        print(f"  -> Hive -{result.hive_reduction_pct:.1f}% (paper -21.3%), "
              f"Sqoop -{result.sqoop_reduction_pct:.1f}% (paper -11.3%)")


if __name__ == "__main__":
    sys.exit(main())
