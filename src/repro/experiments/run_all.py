"""Run every experiment and print the full paper-comparison report.

Usage::

    python -m repro.experiments.run_all [--quick|--paper] [--ablations]
                                        [--jobs N]

``--quick`` shrinks dataset sizes (used in CI); the default sizes are the
ones recorded in EXPERIMENTS.md.  ``--jobs`` fans sweep-shaped experiments
(those with a registered fan-out) across worker processes; the report is
byte-identical for any job count.

The experiment table lives in :mod:`repro.experiments.registry`; this
module just iterates it in report order.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import registry, runner


def main(argv=None) -> int:
    """Entry point: run the report and print each rendered result."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller datasets (CI-sized)")
    parser.add_argument("--paper", action="store_true",
                        help="paper-sized datasets (1 GB files; the "
                             "application tables stay scaled — see "
                             "EXPERIMENTS.md)")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the ablation/extension studies")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep fan-out "
                             "(default: 1 = serial)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="root seed for seeded sweeps (default: 0)")
    args = parser.parse_args(argv)
    if args.quick and args.paper:
        parser.error("--quick and --paper are mutually exclusive")
    profile = "paper" if args.paper else ("quick" if args.quick else
                                          "default")

    groups = ("paper", "ablation", "extension") if args.ablations \
        else ("paper",)
    # Legitimate wall-clock use: this times how long the *experiment runner*
    # takes on the host machine (reported as "wall time"), not anything
    # inside the simulation — simulated time comes only from Simulator.now.
    for spec in registry.specs(groups):
        started = time.time()  # simlint: disable=no-wallclock
        result = runner.run_experiment(spec.name, profile=profile,
                                       jobs=args.jobs, seed=args.seed)
        elapsed = time.time() - started  # simlint: disable=no-wallclock
        print(f"\n{'=' * 72}\n{spec.figure}  (wall time {elapsed:.1f}s)\n"
              f"{'=' * 72}")
        print(result.render())
        if spec.headline is not None:
            for line in spec.headline(result):
                print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
