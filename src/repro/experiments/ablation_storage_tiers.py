"""Ablation: storage device tiers (HDD / SSD / NVMe) x vanilla vs vRead.

vRead removes per-byte CPU work (virtio exits, guest FS, TCP loopback,
checksum copies) from the read path; what it cannot remove is device
time.  Sweeping the same co-located read workload across the three
:mod:`repro.storage.device` profiles locates the crossover: on HDD the
spindle dominates the cold read and both paths converge, while on NVMe
almost every remaining microsecond is CPU, so the vRead advantage peaks.
Re-reads come from the host page cache on either path and show the
CPU-only gap regardless of tier.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import FigureResult, load_dataset
from repro.storage.content import PatternSource

#: Device classes swept, slowest first (the x-axis).
TIERS = ("hdd", "ssd", "nvme")
MODES = ("vanilla", "vRead")

#: Memoized cells: (tier, mode, file_bytes) -> (cold MBps, re-read MBps).
#: The parallel runner seeds this from worker results before assembling.
_cache: Dict[Tuple, Tuple[float, float]] = {}


def run_cell(tier: str, mode: str, file_bytes: int) -> Tuple[float, float]:
    """One sweep cell (memoized): throughput on ``tier`` under ``mode``."""
    key = (tier, mode, file_bytes)
    if key not in _cache:
        _cache[key] = _measure(tier, mode == "vRead", file_bytes)
    return _cache[key]


def _measure(tier: str, vread: bool, file_bytes: int) -> Tuple[float, float]:
    """Cold and cache-warm co-located read MB/s on a ``tier`` cluster."""
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=vread, storage=tier)
    load_dataset(cluster, "/tiers/data", PatternSource(file_bytes, seed=81),
                 favored=["dn1"])  # co-located datanode
    client = cluster.clients.get()
    cluster.drop_all_caches()

    def read():
        start = cluster.sim.now
        yield from client.read_file("/tiers/data", 1 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    cold = cluster.run(cluster.sim.process(read()))
    warm = cluster.run(cluster.sim.process(read()))
    return cold, warm


def assemble(values: Dict[Tuple[str, str], Tuple[float, float]],
             file_bytes: int = 32 << 20) -> FigureResult:
    """Build the figure from ``(tier, mode) -> (cold, warm)`` cells."""
    series = {f"{mode} cold": [values[(tier, mode)][0] for tier in TIERS]
              for mode in MODES}
    for mode in MODES:
        series[f"{mode} re-read"] = [values[(tier, mode)][1]
                                     for tier in TIERS]
    return FigureResult(
        figure="Ablation (storage tiers)",
        title="Co-located read throughput vs storage device class",
        x_label="device",
        x_values=list(TIERS),
        series=series,
        unit="MBps",
        notes=f"{file_bytes >> 20}MB file; cold = after "
              "drop_all_caches, re-read = host page cache warm",
    )


def run(file_bytes: int = 32 << 20) -> FigureResult:
    """Run the experiment; see the module docstring for the setup."""
    values = {(tier, mode): run_cell(tier, mode, file_bytes)
              for tier in TIERS for mode in MODES}
    return assemble(values, file_bytes=file_bytes)
