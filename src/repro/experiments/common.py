"""Shared experiment machinery: results, measurement windows, breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cluster import VirtualHadoopCluster
from repro.metrics.accounting import UtilizationBreakdown
from repro.metrics.report import Table, format_figure_series


def _pct(q: float) -> Callable:
    """Percentile reducer over either stats or raw-sketch sinks."""
    def reduce(sink):
        if hasattr(sink, "percentile"):
            return sink.percentile(q)
        return sink.quantile(q)
    return reduce


#: Named reducers for :meth:`FigureResult.from_sinks`: how one sink (a
#: ``SummaryStats`` or ``LogHistogram``) collapses to one figure value.
_SINK_REDUCERS: Dict[str, Callable] = {
    "mean": lambda sink: sink.mean,
    "median": _pct(50),
    "total": lambda sink: sink.total,
    "min": lambda sink: sink.minimum,
    "max": lambda sink: sink.maximum,
    "p50": _pct(50),
    "p90": _pct(90),
    "p99": _pct(99),
    "p99.9": _pct(99.9),
}


def _csv_field(value) -> str:
    """One RFC-4180 CSV field: quote when it contains , " or a newline."""
    text = value if isinstance(value, str) else str(value)
    if any(ch in text for ch in ',"\r\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def _csv_row(fields) -> str:
    return ",".join(_csv_field(item) for item in fields)


@dataclass
class FigureResult:
    """A figure's worth of series, renderable like the paper's chart."""

    figure: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]]
    unit: str = ""
    notes: str = ""

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        text = format_figure_series(f"{self.figure}: {self.title}",
                                    self.x_label, self.x_values,
                                    self.series, unit=self.unit)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def value(self, series: str, x) -> float:
        """Look up one series value by x-position.

        Unknown names raise errors that list what *is* available, so a
        typo'd lookup in an experiment script reads as a diagnosis rather
        than a bare ``KeyError: 'vRaed'``.
        """
        if series not in self.series:
            raise KeyError(
                f"{self.figure} has no series {series!r}; available series: "
                f"{sorted(self.series)}")
        if x not in self.x_values:
            raise ValueError(
                f"{self.figure} series {series!r} has no x-value {x!r}; "
                f"available {self.x_label} values: {self.x_values}")
        return self.series[series][self.x_values.index(x)]

    def to_csv(self) -> str:
        """The series as CSV (header row: x_label + series names).

        Fields are RFC-4180 quoted, so series names like
        ``"re-read, cached"`` survive a round-trip through csv readers.
        """
        lines = [_csv_row([self.x_label] + list(self.series))]
        for i, x in enumerate(self.x_values):
            row = [str(x)] + [repr(values[i])
                              for values in self.series.values()]
            lines.append(_csv_row(row))
        return "\n".join(lines)

    @classmethod
    def from_sinks(cls, figure: str, title: str, x_label: str,
                   x_values: List,
                   series: Mapping[str, Sequence],
                   reduce: Union[str, Callable] = "mean",
                   unit: str = "", notes: str = "") -> "FigureResult":
        """Build a figure from per-x metric sinks instead of raw floats.

        Each series maps to a list of sinks (``SummaryStats`` or
        ``LogHistogram``), one per x-value; ``reduce`` — a name from
        ``{mean, median, total, min, max, p50, p90, p99, p99.9}`` or a
        callable — collapses each sink to the plotted value.  Plain
        numbers pass through unchanged, so a series can mix measured
        sinks with precomputed values.  The result is an ordinary
        :class:`FigureResult` (same fields, same serialized form), which
        is what keeps the pre-sink regression pins byte-identical.
        """
        if callable(reduce):
            reducer = reduce
        else:
            try:
                reducer = _SINK_REDUCERS[reduce]
            except KeyError:
                raise ValueError(
                    f"unknown sink reducer {reduce!r}; available: "
                    f"{sorted(_SINK_REDUCERS)} (or pass a callable)")
        reduced: Dict[str, List[float]] = {}
        for name, sinks in series.items():
            if len(sinks) != len(x_values):
                raise ValueError(
                    f"series {name!r} has {len(sinks)} entries for "
                    f"{len(x_values)} x-values")
            reduced[name] = [
                float(sink) if isinstance(sink, (int, float))
                else float(reducer(sink))
                for sink in sinks]
        return cls(figure=figure, title=title, x_label=x_label,
                   x_values=x_values, series=reduced, unit=unit,
                   notes=notes)


@dataclass
class BreakdownResult:
    """A CPU-utilization breakdown figure (paper Figs 6-8)."""

    figure: str
    title: str
    #: bar label -> breakdown (e.g. 'vRead' / 'vanilla').
    bars: Dict[str, UtilizationBreakdown]
    notes: str = ""

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        categories: List[str] = []
        for breakdown in self.bars.values():
            for name, _ in breakdown.rows():
                if name not in categories:
                    categories.append(name)
        table = Table(["bar"] + categories + ["total"],
                      title=f"{self.figure}: {self.title} (CPU utilization)")
        for label, breakdown in self.bars.items():
            cells = [f"{breakdown.get(c) * 100:.1f}%" for c in categories]
            table.add_row(label, *cells, f"{breakdown.total * 100:.1f}%")
        text = table.render()
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def to_csv(self) -> str:
        """The bars as CSV (header row: bar + categories + total)."""
        categories: List[str] = []
        for breakdown in self.bars.values():
            for name, _ in breakdown.rows():
                if name not in categories:
                    categories.append(name)
        lines = [_csv_row(["bar"] + categories + ["total"])]
        for label, breakdown in self.bars.items():
            cells = [repr(breakdown.get(c)) for c in categories]
            lines.append(_csv_row([label] + cells + [repr(breakdown.total)]))
        return "\n".join(lines)

    @classmethod
    def from_sinks(cls, figure: str, title: str,
                   bars: Mapping[str, Sequence[UtilizationBreakdown]],
                   notes: str = "") -> "BreakdownResult":
        """Build a breakdown figure from per-window measurement sinks.

        Each bar maps to one or more :class:`UtilizationBreakdown`
        windows (e.g. one per fanout point); windows are merged
        capacity-weighted via :meth:`UtilizationBreakdown.merge` into the
        single breakdown the bar displays.  A bar given a single
        breakdown passes through untouched, so migrated single-window
        experiments serialize exactly as before.
        """
        merged: Dict[str, UtilizationBreakdown] = {}
        for label, windows in bars.items():
            if isinstance(windows, UtilizationBreakdown):
                windows = [windows]
            if not windows:
                raise ValueError(
                    f"bar {label!r}: no measurement windows to merge")
            combined = windows[0]
            for window in windows[1:]:
                combined = combined.merge(window)
            merged[label] = combined
        return cls(figure=figure, title=title, bars=merged, notes=notes)


class BreakdownViews:
    """Measure per-component CPU breakdowns over a window.

    Views are named groups of threads (the paper's "client side",
    "datanode side", "vRead-daemon" bars).
    """

    def __init__(self, cluster: VirtualHadoopCluster):
        self.cluster = cluster
        self._marks = None
        self._start = None

    def mark(self) -> None:
        """Start a measurement window (snapshot all hosts' accounting)."""
        self._marks = [host.accounting.snapshot()
                       for host in self.cluster.hosts]
        self._start = self.cluster.sim.now

    def collect(self, views: Mapping[str, Sequence[str]]
                ) -> Dict[str, UtilizationBreakdown]:
        """Return one breakdown per view over the window since mark()."""
        if self._marks is None:
            raise RuntimeError("mark() must be called before collect()")
        elapsed = self.cluster.sim.now - self._start
        out = {}
        for name, thread_names in views.items():
            busy: Dict[str, float] = {}
            for host, mark in zip(self.cluster.hosts, self._marks):
                window = host.accounting.since(mark)
                for category, seconds in window.by_category(
                        threads=thread_names).items():
                    busy[category] = busy.get(category, 0.0) + seconds
            # Normalized per core-equivalent, like the paper's stacked bars
            # (a component view spans a handful of threads, not the host).
            out[name] = UtilizationBreakdown(busy, elapsed, cores=1)
        return out


# --------------------------------------------------------------- thread views
def client_view(cluster: VirtualHadoopCluster) -> List[str]:
    """Threads of the client VM (vCPU + its I/O threads)."""
    return list(cluster.client_vm.thread_names())


def datanode_view(cluster: VirtualHadoopCluster, index: int = 0) -> List[str]:
    """Threads of a datanode VM."""
    return list(cluster.datanode_vms[index].thread_names())


def daemon_view(cluster: VirtualHadoopCluster,
                host_index: Optional[int] = None) -> List[str]:
    """vRead daemon threads (per-VM daemon + per-host services).

    With ``host_index`` the view is restricted to one host — e.g. the
    requester-side daemons belong on the paper's *client* chart while the
    remote host's service belongs on the *datanode-side* chart (Fig 7).
    """
    hosts = (cluster.hosts if host_index is None
             else [cluster.hosts[host_index]])
    names = []
    for host in hosts:
        names.append(f"{host.name}.vread-hostd")
        for vm in host.vms:
            names.append(f"{host.name}.vread-daemon.{vm.name}")
    return names


# ------------------------------------------------------------------- helpers
def read_file_timed(cluster: VirtualHadoopCluster, client, path: str,
                    request_bytes: int):
    """Generator: read ``path`` fully; returns (elapsed, bytes)."""
    sim = cluster.sim
    start = sim.now
    source = yield from client.read_file(path, request_bytes)
    return sim.now - start, source.size


def warm_caches(cluster: VirtualHadoopCluster, client, path: str,
                request_bytes: int = 1 << 20) -> None:
    """Prime all caches by reading ``path`` once (re-read preparation)."""
    def proc():
        yield from client.read_file(path, request_bytes)

    cluster.run(cluster.sim.process(proc()))


def load_dataset(cluster: VirtualHadoopCluster, path: str, source,
                 favored=None, spread: bool = False) -> None:
    """Write a dataset through the vanilla path and settle refreshes."""
    def proc():
        yield from cluster.write_dataset(path, source, favored=favored,
                                         spread=spread)

    cluster.run(cluster.sim.process(proc()))
    if not cluster.lookbusy:
        cluster.settle()


def pct_improvement(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    A zero (or denormal-tiny) baseline has no meaningful percentage and
    would silently return ``inf``/``nan`` into a report table; raise a
    diagnosis instead so the caller fixes the measurement.
    """
    if abs(baseline) < 1e-12:
        raise ValueError(
            f"pct_improvement: baseline {baseline!r} is zero or near zero; "
            f"a percentage improvement over it is undefined "
            f"(improved={improved!r})")
    return (improved - baseline) / baseline * 100.0
