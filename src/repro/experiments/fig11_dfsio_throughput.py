"""Figure 11: TestDFSIO read/re-read throughput, 6 panels.

Panels (a)-(c): cold read throughput for co-located / remote / hybrid;
panels (d)-(f): warm re-read.  Each panel sweeps CPU frequency
(1.6/2.0/3.2 GHz) with four bars: vanilla/vRead x 2 VMs/4 VMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.common import FigureResult
from repro.experiments.dfsio_sweep import MODES, SCENARIOS, VM_COUNTS, run_sweep
from repro.hostmodel.frequency import PAPER_FREQUENCIES, frequency_label

PANELS = (
    ("colocated", "read", "(a)"), ("remote", "read", "(b)"),
    ("hybrid", "read", "(c)"), ("colocated", "reread", "(d)"),
    ("remote", "reread", "(e)"), ("hybrid", "reread", "(f)"),
)


@dataclass
class Fig11Result:
    """Structured result of this experiment (render() for the table)."""
    panels: Dict[Tuple[str, str], FigureResult]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        return "\n\n".join(panel.render() for panel in self.panels.values())

    def improvement_pct(self, scenario: str, phase: str, freq_label: str,
                        vms: int) -> float:
        """vRead-over-vanilla improvement (%) for one cell."""
        panel = self.panels[(scenario, phase)]
        vanilla = panel.value(f"vanilla-{vms}vms", freq_label)
        vread = panel.value(f"vRead-{vms}vms", freq_label)
        return (vread - vanilla) / vanilla * 100.0


def run(frequencies: Sequence[float] = PAPER_FREQUENCIES,
        file_bytes: int = 32 << 20, n_files: int = 2) -> Fig11Result:
    """Run the experiment; see the module docstring for the setup."""
    cells = run_sweep(frequencies=frequencies, file_bytes=file_bytes,
                      n_files=n_files)
    labels = [frequency_label(f) for f in frequencies]
    panels = {}
    for scenario, phase, letter in PANELS:
        series = {}
        for mode in MODES:
            for vms in VM_COUNTS:
                values = []
                for frequency in frequencies:
                    cell = cells[(scenario, frequency, vms, mode)]
                    values.append(cell.read_mbps if phase == "read"
                                  else cell.reread_mbps)
                series[f"{mode}-{vms}vms"] = values
        panels[(scenario, phase)] = FigureResult(
            figure=f"Fig 11{letter}",
            title=f"DFSIO throughput for {scenario} "
                  f"{'re-read' if phase == 'reread' else 'read'}",
            x_label="CPU frequency",
            x_values=labels,
            series=series,
            unit="MBps",
            notes=f"{n_files} x {file_bytes >> 20}MB files, 1MB buffer",
        )
    return Fig11Result(panels)
