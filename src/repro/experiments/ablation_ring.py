"""Ablation: shared-ring geometry and response chunking.

The paper fixes the ivshmem object at 1024 x 4 KiB slots.  This experiment
sweeps the response-chunk size (how much the daemon copies into the ring
per doorbell) and the ring capacity, showing the pipelining trade-off:
tiny chunks pay per-chunk eventfd/virq overheads; chunks as large as the
ring serialize the daemon and the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import load_dataset
from repro.metrics.report import Table
from repro.storage.content import PatternSource

CHUNK_SIZES = (64 * 1024, 256 * 1024, 1 << 20, 4 << 20)
RING_SLOTS = (256, 1024)


@dataclass
class RingResult:
    #: (slots, chunk_bytes) -> warm-read MBps
    """Structured result of this experiment (render() for the table)."""
    cells: Dict[Tuple[int, int], float]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["ring slots", "chunk size", "re-read MB/s"],
                      title="Ablation: vRead ring geometry / chunking")
        for (slots, chunk), mbps in self.cells.items():
            table.add_row(slots, f"{chunk >> 10}KB", f"{mbps:.0f}")
        return table.render()

    def best(self) -> Tuple[Tuple[int, int], float]:
        """The best-performing (slots, chunk) cell."""
        key = max(self.cells, key=self.cells.get)
        return key, self.cells[key]


def _measure(slots: int, chunk_bytes: int, file_bytes: int) -> float:
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=True, vread_ring_slots=slots,
                                   vread_chunk_bytes=chunk_bytes)
    load_dataset(cluster, "/abl/data", PatternSource(file_bytes, seed=63),
                 favored=["dn1"])
    client = cluster.clients.get()

    def read():
        start = cluster.sim.now
        yield from client.read_file("/abl/data", 4 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    cluster.run(cluster.sim.process(read()))  # warm up
    return cluster.run(cluster.sim.process(read()))


def run(file_bytes: int = 32 << 20,
        chunk_sizes: Sequence[int] = CHUNK_SIZES,
        ring_slots: Sequence[int] = RING_SLOTS) -> RingResult:
    """Run the experiment; see the module docstring for the setup."""
    cells = {}
    for slots in ring_slots:
        for chunk in chunk_sizes:
            cells[(slots, chunk)] = _measure(slots, chunk, file_bytes)
    return RingResult(cells)
