"""Table 2: HBase PerformanceEvaluation — scan / sequential / random read.

HBase-0.94-style store over HDFS, hybrid 4-VM setup @2.0 GHz (the paper's
configuration).  Caches are dropped before every operation so reads hit the
data path, not a warm cache.  Paper: +27.3% / +23.6% / +17.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments import paper_data
from repro.hostmodel.frequency import GHZ_2_0
from repro.metrics.report import Table
from repro.workloads.hbase import HBaseTable

OPERATIONS = ("scan", "sequential-read", "random-read")


@dataclass
class Table2Result:
    #: operation -> (vanilla MB/s, vRead MB/s)
    """Structured result of this experiment (render() for the table)."""
    rows: Dict[str, Tuple[float, float]]

    def improvement_pct(self, operation: str) -> float:
        """vRead-over-vanilla improvement (%) for one cell."""
        vanilla, vread = self.rows[operation]
        return (vread - vanilla) / vanilla * 100.0

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["operation", "Vanilla (MB/s)", "vRead (MB/s)",
                       "% improvement", "paper %"],
                      title="Table 2: Performance improvement for HBase")
        for operation in OPERATIONS:
            vanilla, vread = self.rows[operation]
            paper = paper_data.TABLE2_HBASE[operation][2]
            table.add_row(operation, f"{vanilla:.2f}", f"{vread:.2f}",
                          f"{self.improvement_pct(operation):.1f}",
                          f"{paper:.1f}")
        return table.render()


def _measure(vread: bool, n_rows: int, row_bytes: int,
             rows_per_region: int) -> Dict[str, float]:
    cluster = VirtualHadoopCluster(block_size=64 << 20, vread=vread,
                                   total_vms_per_host=4,
                                   frequency_hz=GHZ_2_0)
    client = cluster.clients.get()
    table = HBaseTable(client, row_bytes=row_bytes,
                       rows_per_region=rows_per_region)

    def load():
        yield from table.load(n_rows, spread=True)

    cluster.run(cluster.sim.process(load()))

    throughput = {}

    def scan():
        return (yield from table.scan())

    def sequential():
        return (yield from table.sequential_read(min(n_rows, n_rows // 2)))

    def random():
        return (yield from table.random_read(min(n_rows, n_rows // 4)))

    for name, op in (("scan", scan), ("sequential-read", sequential),
                     ("random-read", random)):
        cluster.drop_all_caches()
        result = cluster.run(cluster.sim.process(op()))
        throughput[name] = result.throughput_mbps
    table.close()
    cluster.stop_background()
    return throughput


def run(n_rows: int = 32_768, row_bytes: int = 1024,
        rows_per_region: int = 8_192) -> Table2Result:
    """Run the experiment; see the module docstring for the setup."""
    vanilla = _measure(False, n_rows, row_bytes, rows_per_region)
    vread = _measure(True, n_rows, row_bytes, rows_per_region)
    return Table2Result({op: (vanilla[op], vread[op]) for op in OPERATIONS})
