"""Experiment drivers: one module per table/figure in the paper.

Every module exposes ``run(...)`` returning a structured result with a
``render()`` method that prints the same rows/series the paper reports, and
a ``main()`` so it can be run directly::

    python -m repro.experiments.fig09_vread_delay

Modules (see DESIGN.md section 3 for the full index):

========  ====================================================
fig02     HDFS-in-VM vs local-FS read delay (motivation)
fig03     netperf TCP_RR under I/O-thread contention
fig06     CPU breakdown, co-located read
fig07     CPU breakdown, remote read, RDMA daemons
fig08     CPU breakdown, remote read, TCP daemons
fig09     data access delay, vanilla vs vRead, 2/4 VMs
fig11     TestDFSIO throughput (6 panels x 3 frequencies)
fig12     TestDFSIO CPU running time (same panels)
fig13     TestDFSIO-write throughput (vRead_update overhead)
table2    HBase scan / sequential read / random read
table3    Hive query + Sqoop export
========  ====================================================
"""

from repro.experiments.common import (
    BreakdownViews,
    FigureResult,
    read_file_timed,
    warm_caches,
)

__all__ = [
    "BreakdownViews",
    "FigureResult",
    "read_file_timed",
    "warm_caches",
]
