"""Ablation: RDMA vs TCP daemon transports for remote vRead reads.

The paper's footnote 2 says the TCP prototype "consumes more CPU cycles for
remote reads"; this experiment quantifies throughput and daemon CPU for
both transports on the same remote-read workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import (
    daemon_view, load_dataset)
from repro.metrics.report import Table
from repro.storage.content import PatternSource


@dataclass
class TransportResult:
    #: transport -> (cold MBps, warm MBps, daemon CPU ms)
    """Structured result of this experiment (render() for the table)."""
    transports: Dict[str, Tuple[float, float, float]]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["transport", "cold read MB/s", "re-read MB/s",
                       "daemon CPU (ms)"],
                      title="Ablation: remote-read daemon transport "
                            "(paper footnote 2 / Figs 7-8)")
        for transport, (cold, warm, cpu) in self.transports.items():
            table.add_row(transport, f"{cold:.0f}", f"{warm:.0f}",
                          f"{cpu:.1f}")
        return table.render()

    @property
    def cpu_ratio(self) -> float:
        """daemon CPU: TCP / RDMA (how much the TCP fallback overpays)."""
        return self.transports["tcp"][2] / self.transports["rdma"][2]


def _measure(transport: str, file_bytes: int) -> Tuple[float, float, float]:
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=True, vread_transport=transport)
    load_dataset(cluster, "/abl/data", PatternSource(file_bytes, seed=62),
                 favored=["dn2"])  # remote datanode
    client = cluster.clients.get()
    cluster.drop_all_caches()
    marks = [host.accounting.snapshot() for host in cluster.hosts]

    def read():
        start = cluster.sim.now
        yield from client.read_file("/abl/data", 1 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    cold = cluster.run(cluster.sim.process(read()))
    warm = cluster.run(cluster.sim.process(read()))
    daemon_threads = set(daemon_view(cluster))
    daemon_cpu = 0.0
    for host, mark in zip(cluster.hosts, marks):
        window = host.accounting.since(mark)
        for thread, seconds in window.by_thread().items():
            if thread in daemon_threads:
                daemon_cpu += seconds
    return cold, warm, daemon_cpu * 1e3


def run(file_bytes: int = 32 << 20) -> TransportResult:
    """Run the experiment; see the module docstring for the setup."""
    return TransportResult({
        "rdma": _measure("rdma", file_bytes),
        "tcp": _measure("tcp", file_bytes),
    })
