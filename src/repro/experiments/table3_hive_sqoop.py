"""Table 3: Hive range query and Sqoop export, vanilla vs vRead.

* Hive: ``select * from test where id >= x and id <= y`` over a user table
  on HDFS (hybrid 4-VM setup @2.0 GHz).  Paper: 21.3% time reduction.
* Sqoop: export the same table into MySQL on a third physical machine.
  The insert/commit side bounds the benefit.  Paper: 11.3% reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments import paper_data
from repro.hostmodel.frequency import GHZ_2_0
from repro.metrics.report import Table
from repro.virt.vm import VirtualMachine
from repro.workloads.hive import HiveTable
from repro.workloads.sqoop import MySqlServer, SqoopExport


@dataclass
class Table3Result:
    #: (vanilla seconds, vRead seconds)
    """Structured result of this experiment (render() for the table)."""
    hive_select: Tuple[float, float]
    sqoop_export: Tuple[float, float]

    @staticmethod
    def _reduction(pair: Tuple[float, float]) -> float:
        vanilla, vread = pair
        return (vanilla - vread) / vanilla * 100.0

    @property
    def hive_reduction_pct(self) -> float:
        """Hive query-time reduction (%)."""
        return self._reduction(self.hive_select)

    @property
    def sqoop_reduction_pct(self) -> float:
        """Sqoop export-time reduction (%)."""
        return self._reduction(self.sqoop_export)

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["workload", "Vanilla (s)", "vRead (s)",
                       "% reduction", "paper %"],
                      title="Table 3: Hive select and Sqoop export")
        table.add_row("Select Sql for Hive", f"{self.hive_select[0]:.3f}",
                      f"{self.hive_select[1]:.3f}",
                      f"{self.hive_reduction_pct:.1f}",
                      f"{paper_data.TABLE3_HIVE_SELECT[2]:.1f}")
        table.add_row("Sqoop Export", f"{self.sqoop_export[0]:.3f}",
                      f"{self.sqoop_export[1]:.3f}",
                      f"{self.sqoop_reduction_pct:.1f}",
                      f"{paper_data.TABLE3_SQOOP_EXPORT[2]:.1f}")
        return table.render()


def _hive_time(vread: bool, n_rows: int, row_bytes: int,
               rows_per_file: int) -> float:
    cluster = VirtualHadoopCluster(block_size=64 << 20, vread=vread,
                                   total_vms_per_host=4,
                                   frequency_hz=GHZ_2_0)
    client = cluster.clients.get()
    table = HiveTable(client, row_bytes=row_bytes, rows_per_file=rows_per_file)

    def load():
        yield from table.load(n_rows, spread=True)

    cluster.run(cluster.sim.process(load()))
    cluster.drop_all_caches()

    def query():
        result = yield from table.select_where_id_between(
            n_rows // 4, n_rows // 2)
        return result

    result = cluster.run(cluster.sim.process(query()))
    cluster.stop_background()
    assert result.scanned_rows == n_rows
    return result.elapsed_seconds


def _sqoop_time(vread: bool, n_rows: int, row_bytes: int,
                rows_per_file: int) -> float:
    cluster = VirtualHadoopCluster(n_hosts=3, n_datanodes=2,
                                   block_size=64 << 20, vread=vread,
                                   total_vms_per_host=4,
                                   frequency_hz=GHZ_2_0)
    mysql_vm = VirtualMachine(cluster.hosts[2], "mysql")
    mysql = MySqlServer(mysql_vm, cluster.network)
    client = cluster.clients.get()
    table = HiveTable(client, row_bytes=row_bytes, rows_per_file=rows_per_file)
    export = SqoopExport(client, mysql, cluster.network)

    def load():
        yield from table.load(n_rows, spread=True)

    cluster.run(cluster.sim.process(load()))
    cluster.drop_all_caches()

    def run_export():
        return (yield from export.export_table(table))

    result = cluster.run(cluster.sim.process(run_export()))
    cluster.stop_background()
    assert result.rows == n_rows
    return result.elapsed_seconds


def run(n_rows: int = 262_144, row_bytes: int = 128,
        rows_per_file: int = 131_072) -> Table3Result:
    """Run the experiment; see the module docstring for the setup."""
    hive = (_hive_time(False, n_rows, row_bytes, rows_per_file),
            _hive_time(True, n_rows, row_bytes, rows_per_file))
    sqoop = (_sqoop_time(False, n_rows, row_bytes, rows_per_file),
             _sqoop_time(True, n_rows, row_bytes, rows_per_file))
    return Table3Result(hive, sqoop)
