"""The parallel experiment runner: deterministic sweep fan-out.

Sweep-shaped experiments (those whose :class:`~repro.experiments.registry.
ExperimentSpec` carries a ``fanout``) decompose into independent points,
each simulating its own cluster.  This module shards those points across
worker processes with :mod:`multiprocessing` and reassembles the results
in the serial point order, so ``jobs=1`` and ``jobs=N`` produce
byte-identical output.

Determinism contract:

* every point's seed is :func:`derive_seed`\\ ``(root_seed, point)`` — a
  SHA-256 of the root seed and the point key, independent of scheduling;
* workers receive only ``(experiment name, point, seed, kwargs)`` and
  resolve the spec from the registry in their own interpreter, so results
  depend only on those arguments;
* results are reassembled in ``Fanout.points`` order (``Pool.map``
  preserves order), never in completion order.

Experiments without a fanout simply run serially via their builder.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
from typing import Any, Dict, Optional

from repro.experiments import registry


def derive_seed(root_seed: int, point: Any) -> int:
    """Deterministic per-point seed from ``(root_seed, point)``.

    Stable across processes and Python invocations (no ``hash()``
    randomization), so parallel and serial runs agree byte-for-byte.
    """
    digest = hashlib.sha256(f"{root_seed}:{point!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _worker(task) -> Any:
    """Measure one sweep point (runs inside a worker process)."""
    name, point, seed, kwargs = task
    spec = registry.get(name)
    return spec.fanout.run_point(point, seed, dict(kwargs))


def run_experiment(name: str, profile: str = "default", jobs: int = 1,
                   seed: int = 0,
                   params: Optional[Dict[str, Any]] = None) -> Any:
    """Run one registered experiment; fan sweep points out over ``jobs``.

    ``params`` overrides the profile's parameter grid entirely when given.
    Experiments without a registered fan-out ignore ``jobs`` and ``seed``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    spec = registry.get(name)
    kwargs = dict(spec.params(profile)) if params is None else dict(params)
    build = spec.resolve()
    if spec.fanout is None:
        return build(**kwargs)
    points = spec.fanout.points(kwargs)
    tasks = [(name, point, derive_seed(seed, point), kwargs)
             for point in points]
    if jobs == 1 or len(tasks) <= 1:
        outputs = [_worker(task) for task in tasks]
    else:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            outputs = pool.map(_worker, tasks)
    return spec.fanout.assemble(list(zip(points, outputs)), kwargs, build)


# ----------------------------------------------------------------- JSON export
def jsonable(obj: Any) -> Any:
    """Convert an experiment result into JSON-serializable data.

    Dataclasses become dicts, tuples become lists, non-string dict keys
    become their ``str()`` (e.g. a ``('colocated', 'read')`` panel key
    serializes as ``"('colocated', 'read')"``).  Combined with
    :func:`canonical_json` this gives a stable byte representation for
    determinism checks.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {field.name: jsonable(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {(key if isinstance(key, str) else str(key)): jsonable(value)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    return repr(obj)


def canonical_json(result: Any) -> str:
    """Canonical JSON text of a result (sorted keys, fixed separators)."""
    return json.dumps(jsonable(result), sort_keys=True,
                      separators=(",", ":"))


def write_json(result: Any, path: str) -> None:
    """Write a result as indented JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(jsonable(result), handle, sort_keys=True, indent=2)
        handle.write("\n")
