"""Extension experiment: open-loop load sweep with streaming SLO metrics.

Multi-tenant client VMs drive seeded open-loop (bursty by default)
arrivals against a shared datanode, sweeping the per-tenant arrival
rate.  Each ``(mode, health, rate)`` sweep point simulates its own
cluster; the report contrasts vanilla vs vRead tail latency and
SLO-violation time, both *healthy* and under a *chaos* fault plan (a
host page-cache drop followed by a disk latency spike, armed at
measurement start) — the SLO degradation curve the paper's throughput
tables cannot show.

Every point streams its requests through the
:class:`~repro.load.slo.TenantSlo` sinks, so memory stays bounded no
matter how far the rate axis is pushed, and every report row carries a
latency-sketch digest, which is what the ``--jobs N`` byte-identity
gates compare.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster, paper_fig10
from repro.faults import (DiskLatencySpike, FaultPlan, GuestCacheDrop,
                          HostCacheDrop)
from repro.load import LoadGenerator, SloReport, default_tenants
from repro.metrics.report import Table

MODES = ("vanilla", "vRead")
HEALTH = ("healthy", "chaos")


def chaos_plan(duration: float) -> FaultPlan:
    """The under-load fault schedule (times relative to arming).

    A host+guest page-cache drop a quarter of the way in turns the warm
    working set cold; halfway through, a second drop lands together with
    a disk latency spike, so the re-warming reads pay the full 8x disk
    penalty regardless of how quickly the first drop was absorbed.  All
    faults target the first host — where the shared datanode lives in
    the ``paper_fig10`` layout — and its datanode VM's guest cache.
    """
    return (FaultPlan()
            .at(0.25 * duration, HostCacheDrop())
            .at(0.25 * duration, GuestCacheDrop("dn1"))
            .at(0.50 * duration, HostCacheDrop())
            .at(0.50 * duration, GuestCacheDrop("dn1"))
            .at(0.50 * duration,
                DiskLatencySpike(factor=8.0, duration=0.25 * duration)))


def _key(mode: str, health: str, x: float) -> str:
    return f"{mode}/{health}@{x:g}"


@dataclass(frozen=True)
class LoadSweepResult:
    """SLO curves over a swept axis, one :class:`SloReport` per point."""

    figure: str
    title: str
    x_label: str
    x_values: List[float]
    #: ``"mode/health@x"`` -> the point's full SLO report.
    reports: Dict[str, SloReport] = field(default_factory=dict)
    notes: str = ""

    def report(self, mode: str, health: str, x: float) -> SloReport:
        key = _key(mode, health, x)
        try:
            return self.reports[key]
        except KeyError:
            raise KeyError(f"no sweep point {key!r}; have "
                           f"{sorted(self.reports)}")

    def p99_series(self, mode: str, health: str = "healthy") -> List[float]:
        """Worst-tenant p99 latency (ms) along the swept axis."""
        return [self.report(mode, health, x).worst_p99_ms()
                for x in self.x_values]

    def violation_series(self, mode: str,
                         health: str = "healthy") -> List[float]:
        """Mean SLO-violation time fraction along the swept axis."""
        return [self.report(mode, health, x).violation_time_fraction()
                for x in self.x_values]

    def goodput_series(self, mode: str,
                       health: str = "healthy") -> List[float]:
        """Aggregate goodput (requests/s) along the swept axis."""
        return [self.report(mode, health, x).total_goodput_rps()
                for x in self.x_values]

    def digest(self) -> str:
        """Combined sketch digest over every sweep point (determinism)."""
        feed = ";".join(f"{key}:{self.reports[key].digest()}"
                        for key in sorted(self.reports))
        return hashlib.sha256(feed.encode("ascii")).hexdigest()

    def render(self) -> str:
        healths = sorted({key.split("/", 1)[1].split("@", 1)[0]
                          for key in self.reports})
        blocks = []
        for health in healths:
            table = Table([self.x_label]
                          + [f"{mode} p99" for mode in MODES]
                          + [f"{mode} viol" for mode in MODES],
                          title=f"{self.title} — {health}")
            for x in self.x_values:
                cells: List[str] = [f"{x:g}"]
                for mode in MODES:
                    report = self.report(mode, health, x)
                    cells.append(f"{report.worst_p99_ms():.2f}ms")
                for mode in MODES:
                    report = self.report(mode, health, x)
                    fraction = report.violation_time_fraction()
                    cells.append(f"{fraction * 100:.1f}%")
                table.add_row(*cells)
            blocks.append(table.render())
        text = "\n\n".join(blocks)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


def _measure(vread: bool, chaos: bool, rate: float, seed: int,
             duration: float, n_tenants: int, request_bytes: int,
             deadline_seconds: float, arrival_kind: str) -> SloReport:
    """One sweep point: its own cluster, generator and SLO report."""
    cluster = VirtualHadoopCluster(
        block_size=max(request_bytes, 1 << 20),
        vread=vread,
        topology=paper_fig10(clients=n_tenants),
        seed=seed,
        faults=chaos_plan(duration) if chaos else None)
    tenants = default_tenants(n_tenants, rate,
                              deadline_seconds=deadline_seconds,
                              arrival_kind=arrival_kind,
                              request_bytes=request_bytes,
                              n_keys=4)
    generator = LoadGenerator(tenants, seed=seed)
    mode = "vRead" if vread else "vanilla"
    health = "chaos" if chaos else "healthy"
    return generator.run_cluster(
        cluster, duration, arm_faults=chaos,
        title=f"{mode} {health} @ {rate:g} req/s/tenant")


def assemble(values: Dict[Tuple[str, str, float], SloReport],
             rates: Sequence[float] = (20.0, 60.0, 120.0),
             duration: float = 2.5, n_tenants: int = 2,
             deadline_ms: float = 2.0,
             arrival_kind: str = "bursty", **_ignored) -> LoadSweepResult:
    """Build the sweep result from measured ``(mode, health, rate)`` points."""
    return LoadSweepResult(
        figure="Extension (load sweep)",
        title="Open-loop SLO sweep: worst-tenant p99 / violation time",
        x_label="req/s/tenant",
        x_values=list(rates),
        reports={_key(mode, health, rate): values[(mode, health, rate)]
                 for mode in MODES for health in HEALTH for rate in rates},
        notes=(f"{n_tenants} tenants, {arrival_kind} arrivals, "
               f"{duration:g}s window, {deadline_ms:g}ms deadline; chaos = "
               f"cache drop + 8x disk latency spike under load"))


def run(rates: Sequence[float] = (20.0, 60.0, 120.0),
        duration: float = 2.5, n_tenants: int = 2,
        request_bytes: int = 256 << 10, deadline_ms: float = 2.0,
        arrival_kind: str = "bursty", seed: int = 0) -> LoadSweepResult:
    """Run the sweep serially (the registry fan-out parallelizes this)."""
    from repro.experiments.runner import derive_seed
    values = {}
    for mode in MODES:
        for health in HEALTH:
            for rate in rates:
                point = (mode, health, rate)
                values[point] = _measure(
                    mode == "vRead", health == "chaos", rate,
                    derive_seed(seed, point), duration, n_tenants,
                    request_bytes, deadline_ms * 1e-3, arrival_kind)
    return assemble(values, rates=rates, duration=duration,
                    n_tenants=n_tenants, deadline_ms=deadline_ms,
                    arrival_kind=arrival_kind)
