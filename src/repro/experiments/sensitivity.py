"""Sensitivity analysis: how robust are the headline results to calibration?

Every simulation-based reproduction stands on its cost constants.  This
experiment perturbs the most influential ones (halving and doubling each in
isolation) and re-measures the co-located read/re-read improvement.  The
claim being defended: **vRead's win is structural** — it comes from removing
copies and thread handoffs, not from any single lucky constant — so the
improvement stays positive under every perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import load_dataset
from repro.hostmodel.costs import CostModel
from repro.metrics.report import Table
from repro.storage.content import PatternSource

#: The constants whose calibration most affects the headline shapes.
DEFAULT_KNOBS = (
    "hdfs_checksum_cycles_per_byte",
    "vhost_copy_cycles_per_byte",
    "virtio_blk_copy_cycles_per_byte",
    "vread_copy_cycles_per_byte",
    "vread_guest_copy_cycles_per_byte",
    "wakeup_stacking_delay_seconds",
)

SCALES = (0.5, 1.0, 2.0)


@dataclass
class SensitivityResult:
    #: (knob, scale) -> (cold improvement %, warm improvement %)
    """Structured result of this experiment (render() for the table)."""
    cells: Dict[Tuple[str, float], Tuple[float, float]]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["constant", "scale", "cold read Δ%", "re-read Δ%"],
                      title="Sensitivity: co-located vRead improvement "
                            "under cost-model perturbations")
        for (knob, scale), (cold, warm) in self.cells.items():
            table.add_row(knob, f"x{scale}", f"{cold:+.1f}", f"{warm:+.1f}")
        return table.render()

    def always_positive(self) -> bool:
        """True if vRead wins under every perturbation."""
        return all(cold > 0 and warm > 0
                   for cold, warm in self.cells.values())

    def spread(self, knob: str) -> float:
        """Max-min cold improvement across this knob's scales."""
        values = [cold for (k, _), (cold, _) in self.cells.items()
                  if k == knob]
        return max(values) - min(values)


def _improvements(costs: CostModel, file_bytes: int) -> Tuple[float, float]:
    """(cold %, warm %) improvement of vRead over vanilla."""
    throughput = {}
    for mode in ("vanilla", "vRead"):
        cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                       vread=(mode == "vRead"), costs=costs)
        load_dataset(cluster, "/sens/data",
                     PatternSource(file_bytes, seed=55), favored=["dn1"])
        client = cluster.clients.get()
        cluster.drop_all_caches()

        def read():
            start = cluster.sim.now
            yield from client.read_file("/sens/data", 1 << 20)
            return file_bytes / 1e6 / (cluster.sim.now - start)

        cold = cluster.run(cluster.sim.process(read()))
        warm = cluster.run(cluster.sim.process(read()))
        throughput[mode] = (cold, warm)
    cold_gain = (throughput["vRead"][0] / throughput["vanilla"][0] - 1) * 100
    warm_gain = (throughput["vRead"][1] / throughput["vanilla"][1] - 1) * 100
    return cold_gain, warm_gain


def run(knobs: Sequence[str] = DEFAULT_KNOBS,
        scales: Sequence[float] = SCALES,
        file_bytes: int = 16 << 20) -> SensitivityResult:
    """Run the experiment; see the module docstring for the setup."""
    base = CostModel()
    cells = {}
    baseline = _improvements(base, file_bytes)
    for knob in knobs:
        for scale in scales:
            if scale == 1.0:
                cells[(knob, scale)] = baseline
                continue
            costs = base.with_overrides(
                **{knob: getattr(base, knob) * scale})
            cells[(knob, scale)] = _improvements(costs, file_bytes)
    return SensitivityResult(cells)
