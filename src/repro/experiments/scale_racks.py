"""Extension experiment: multi-rack scale-out over the leaf-spine fabric.

The paper's testbed is two hosts behind one switch.  This extension asks
what vRead buys once a virtualized Hadoop cluster spans racks: every host
runs a client VM and a datanode VM, blocks are placed with HDFS's
rack-aware rule (replica 2 on a remote rack), and all clients read their
files concurrently.  Cross-rack traffic crosses an oversubscribed
ToR->aggregation uplink, and the vRead transports pick RDMA inside a rack
but user-space TCP across racks — so the aggregate-throughput curve bends
where the fabric, not the host CPU, becomes the bottleneck.

Every read is checksum-verified against its written payload, and the
rack-aware placement decisions are visible in the cluster trace as
``placement.*`` counter events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster, rack_cluster
from repro.experiments.common import FigureResult
from repro.metrics.report import GroupedTotals
from repro.sim import AllOf
from repro.storage.content import PatternSource

#: Hosts behind each top-of-rack switch in the sweep layouts.
HOSTS_PER_RACK = 2


@dataclass
class RackPoint:
    """One (mode, n_racks) measurement: aggregate and per-rack/-host MB/s."""
    aggregate_mbps: float
    per_rack_mbps: Dict[str, float]
    per_host_mbps: Dict[str, float]
    #: Blocks whose replicas span more than one rack (from the trace).
    cross_rack_blocks: int


def _measure(vread: bool, n_racks: int, file_bytes: int,
             hosts_per_rack: int = HOSTS_PER_RACK) -> RackPoint:
    """Concurrent per-host client reads on an ``n_racks``-rack cluster."""
    topology = rack_cluster(n_racks, hosts_per_rack,
                            clients=n_racks * hosts_per_rack)
    n_datanodes = topology.counts()["datanode"]
    replication = min(3, n_datanodes)
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   replication=replication,
                                   vread=vread, topology=topology)
    payloads = [PatternSource(file_bytes, seed=80 + i)
                for i in range(len(cluster.client_vms))]

    def load():
        for i, payload in enumerate(payloads):
            yield from cluster.write_dataset(f"/racks/f{i}", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    clients = [cluster.clients.get(vm=vm) for vm in cluster.client_vms]

    def reader(client, index):
        source = yield from client.read_file(f"/racks/f{index}", 1 << 20)
        if source.checksum() != payloads[index].checksum():
            raise RuntimeError(
                f"checksum mismatch reading /racks/f{index} "
                f"on {client.vm.name}")

    def job():
        readers = [cluster.sim.process(reader(client, i))
                   for i, client in enumerate(clients)]
        yield AllOf(cluster.sim, readers)

    # Warm pass first, measured pass second (as in scale_clients): caches
    # are warm, so host CPU and the shared fabric set the aggregate.
    cluster.run(cluster.sim.process(job()))
    start = cluster.sim.now
    cluster.run(cluster.sim.process(job()))
    elapsed = cluster.sim.now - start

    per_client = file_bytes / 1e6 / elapsed
    racks = GroupedTotals("rack", unit="MB/s")
    for vm in cluster.client_vms:
        racks.add(vm.host.rack, per_client, host=vm.host.name)
    return RackPoint(
        aggregate_mbps=len(clients) * file_bytes / 1e6 / elapsed,
        per_rack_mbps=racks.totals(),
        per_host_mbps=racks.by_host(),
        cross_rack_blocks=int(
            cluster.fault_counters.total("placement.cross-rack")))


def assemble(values: Dict[Tuple[str, int], RackPoint],
             rack_counts: Sequence[int] = (1, 2, 3),
             file_bytes: int = 4 << 20) -> FigureResult:
    """Build the figure from measured ``(mode, n_racks) -> RackPoint``."""
    series: Dict[str, List[float]] = {
        "vanilla": [values[("vanilla", n)].aggregate_mbps
                    for n in rack_counts],
        "vRead": [values[("vRead", n)].aggregate_mbps for n in rack_counts],
    }
    widest = values[("vRead", max(rack_counts))]
    per_rack = ", ".join(f"{rack}={mbps:.0f}"
                         for rack, mbps in widest.per_rack_mbps.items())
    return FigureResult(
        figure="Extension (rack scale-out)",
        title="Aggregate warm-read throughput vs rack count",
        x_label="racks",
        x_values=list(rack_counts),
        series=series,
        unit="MBps",
        notes=(f"{file_bytes >> 20}MB per client, {HOSTS_PER_RACK} "
               f"hosts/rack, rack-aware replicas "
               f"({widest.cross_rack_blocks} cross-rack blocks at "
               f"{max(rack_counts)} racks; vRead MB/s {per_rack})"),
    )


def run(rack_counts: Sequence[int] = (1, 2, 3),
        file_bytes: int = 4 << 20) -> FigureResult:
    """Run the sweep; see the module docstring for the setup."""
    values = {(mode, n): _measure(mode == "vRead", n, file_bytes)
              for n in rack_counts for mode in ("vanilla", "vRead")}
    return assemble(values, rack_counts=rack_counts, file_bytes=file_bytes)
