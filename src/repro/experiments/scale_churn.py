"""Extension experiment: read SLOs under cluster churn, vanilla vs vRead.

The paper's evaluation holds the cluster still; this extension churns it
while clients read.  On a two-rack, four-host cluster (replication 2),
two clients run closed-loop reads for a fixed window while the
membership controller plays a churn script against them:

* ``none`` — static cluster (the control: both modes at steady state);
* ``migrate`` — the vRead daemon serving client 1 crashes, ``datanode2``
  live-migrates across racks, and the daemon restarts — the Section 6
  recovery story: the library degrades to the vanilla path on daemon
  timeout, the migrated node's hash-table entries are rebound on every
  host, and the restarted daemon is re-probed until the library recovers;
* ``full`` — ``migrate`` plus a graceful decommission of ``dn4`` (drain,
  detach, background re-replication to restore the replication factor)
  and a fresh datanode joining on the vacated host, followed by a
  rebalancer pass.

Reported per (mode, churn) point: read latency (mean / p99), the
fraction of the window any library spent degraded to the vanilla path,
re-probe and recovery counts, re-replication traffic, and the final
membership version.  Every step is driven by named streams and the
membership controller's deterministic bookkeeping, so sweep fan-out
across worker processes is byte-identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster, rack_cluster
from repro.experiments.common import FigureResult
from repro.faults.retry import VReadClientPolicy
from repro.sim import AllOf
from repro.storage.content import PatternSource

MODES = ("vanilla", "vRead")
CHURN_LEVELS = ("none", "migrate", "full")


@dataclass
class ChurnPoint:
    """One (mode, churn) measurement."""

    reads: int
    mean_ms: float
    p99_ms: float
    #: Fraction of the window any vRead library spent degraded (0.0 for
    #: vanilla mode).
    degraded_fraction: float
    reprobes: int
    recoveries: int
    #: Mean degrade->recover latency over observed recoveries (ms).
    recovery_ms: float
    re_replications: int
    re_replication_bytes: int
    rebalance_moves: int
    membership_version: int


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _measure(vread: bool, churn: str, file_bytes: int, duration: float,
             seed: int = 0) -> ChurnPoint:
    """Closed-loop reads under one churn script; see the module docstring."""
    if churn not in CHURN_LEVELS:
        raise ValueError(
            f"unknown churn level {churn!r}; expected one of {CHURN_LEVELS}")
    topology = rack_cluster(2, 2, clients=2)
    cluster = VirtualHadoopCluster(
        block_size=max(file_bytes // 2, 256 << 10), replication=2,
        vread=vread, topology=topology, seed=seed)
    sim = cluster.sim
    controller = cluster.membership
    if vread:
        # Scale the library's conversation timeouts to the measurement
        # window: the defaults (0.25s open / 5s read / 1s re-probe)
        # assume long-lived clusters, so a daemon crash mid-read would
        # park the reader well past ``t_end``.  Must be set before the
        # first ``clients.get`` — libraries bind their policy then.
        cluster.vread_manager.client_policy = VReadClientPolicy(
            open_timeout=duration / 50, read_timeout=duration / 10,
            reprobe_interval=duration / 10)
    payloads = [PatternSource(file_bytes, seed=90 + i) for i in range(2)]

    def load():
        for i, payload in enumerate(payloads):
            yield from cluster.write_dataset(f"/churn/f{i}", payload)

    cluster.run(sim.process(load()))
    cluster.settle()
    clients = [cluster.clients.get(vm=vm) for vm in cluster.client_vms]

    def warm(index):
        yield from clients[index].read_file(f"/churn/f{index}", 1 << 20)

    cluster.run_all([sim.process(warm(i)) for i in range(2)])

    # The controller's monitor drives drain + re-replication; a short
    # heartbeat keeps the repair sweep inside the measured window.
    if churn == "full":
        controller.ensure_monitor(heartbeat_interval=duration / 20)

    t_end = sim.now + duration
    latencies: List[float] = []
    degraded_time = [0.0]
    recovery_latencies: List[float] = []

    think = duration / 400

    def reader(index):
        while sim.now < t_end:
            start = sim.now
            source = yield from clients[index].read_file(
                f"/churn/f{index}", 1 << 20)
            if source.checksum() != payloads[index].checksum():
                raise RuntimeError(
                    f"checksum mismatch reading /churn/f{index}")
            latencies.append(sim.now - start)
            yield sim.timeout(think)

    def sampler():
        """Accumulate degraded wall-time and degrade->recover latencies."""
        manager = cluster.vread_manager
        interval = duration / 200
        previous: Dict[str, float] = {}
        while sim.now < t_end:
            yield sim.timeout(interval)
            if manager is None:
                continue
            now_degraded: Dict[str, float] = {}
            for name, library in manager._libraries.items():
                if library.degraded_since is not None:
                    now_degraded[name] = library.degraded_since
            if now_degraded:
                degraded_time[0] += interval
            for name, since in previous.items():
                if name not in now_degraded:
                    recovery_latencies.append(sim.now - since)
            previous = now_degraded

    def churn_script():
        if churn == "none":
            return
        # Targets resolved from the runtime view: the second datanode
        # moves to the first host of the far rack; the last datanode
        # drains and a fresh one joins on its vacated host.
        mover = cluster.datanodes[1].vm
        far_host = cluster.hosts[len(cluster.hosts) // 2]
        last_dn = cluster.datanodes[-1].datanode_id
        vacated = cluster.datanodes[-1].vm.host
        # -- migrate leg: crash the daemon serving client 1 so its
        # library degrades, move a datanode across racks while the
        # daemon is down, then restart it and let the re-probe recover.
        daemon = None
        if vread:
            daemon = cluster.vread_manager.daemon_of(cluster.client_vms[1])
        yield sim.timeout(0.15 * duration)
        if daemon is not None:
            daemon.crash()
        # Small guest RAM keeps the pre-copy inside the measurement
        # window (the 2GB default takes ~6s on a contended LAN).
        yield from controller.migrate(mover, far_host, ram_bytes=64 << 20)
        yield sim.timeout(0.1 * duration)
        if daemon is not None:
            # The library degraded on the crashed daemon's timeout; once
            # the daemon is back, its periodic re-probe recovers the fast
            # path (reprobe_interval after the degrade).
            daemon.restart()
        if churn == "full":
            yield sim.timeout(0.1 * duration)
            yield from controller.decommission_datanode(
                last_dn, poll_interval=duration / 50)
            controller.add_datanode(vacated)
            yield sim.timeout(0.2 * duration)
            yield from controller.monitor.rebalance(max_moves=4)

    processes = [sim.process(reader(i)) for i in range(2)]
    processes.append(sim.process(sampler()))
    processes.append(sim.process(churn_script()))

    def whole_run():
        yield AllOf(sim, processes)

    cluster.run(sim.process(whole_run()))
    controller.stop_monitor()
    cluster.settle()

    manager = cluster.vread_manager
    reprobes = recoveries = 0
    if manager is not None:
        reprobes = sum(lib.reprobes for lib in manager._libraries.values())
        recoveries = sum(lib.recoveries
                         for lib in manager._libraries.values())
    monitor = controller.monitor
    return ChurnPoint(
        reads=len(latencies),
        mean_ms=1e3 * sum(latencies) / max(1, len(latencies)),
        p99_ms=1e3 * (_percentile(latencies, 0.99) if latencies else 0.0),
        degraded_fraction=degraded_time[0] / duration,
        reprobes=reprobes,
        recoveries=recoveries,
        recovery_ms=(1e3 * sum(recovery_latencies) / len(recovery_latencies)
                     if recovery_latencies else 0.0),
        re_replications=monitor.re_replications if monitor else 0,
        re_replication_bytes=monitor.re_replication_bytes if monitor else 0,
        rebalance_moves=monitor.rebalance_moves if monitor else 0,
        membership_version=controller.version,
    )


def assemble(values: Dict[Tuple[str, str], ChurnPoint],
             churn_levels: Sequence[str] = CHURN_LEVELS,
             file_bytes: int = 2 << 20,
             duration: float = 2.0) -> FigureResult:
    """Build the figure from measured ``(mode, churn) -> ChurnPoint``."""
    series: Dict[str, List[float]] = {}
    for mode in MODES:
        series[f"{mode} p99"] = [values[(mode, c)].p99_ms
                                 for c in churn_levels]
    series["vRead degraded %"] = [
        100.0 * values[("vRead", c)].degraded_fraction
        for c in churn_levels]
    worst = values[("vRead", churn_levels[-1])]
    return FigureResult(
        figure="Extension (cluster churn)",
        title="read p99 and vRead degradation vs churn level",
        x_label="churn",
        x_values=list(churn_levels),
        series=series,
        unit="ms / %",
        notes=(f"{file_bytes >> 20}MB per client over {duration:g}s; at "
               f"churn={churn_levels[-1]!r} vRead saw {worst.reprobes} "
               f"re-probes, {worst.recoveries} recoveries "
               f"(mean {worst.recovery_ms:.2f}ms back to the fast path), "
               f"{worst.re_replications} re-replications "
               f"({worst.re_replication_bytes >> 20}MB) and "
               f"{worst.rebalance_moves} rebalance moves; membership "
               f"version {worst.membership_version}"),
    )


def run(churn_levels: Sequence[str] = CHURN_LEVELS,
        file_bytes: int = 2 << 20, duration: float = 2.0,
        seed: int = 0) -> FigureResult:
    """Run the sweep; see the module docstring for the setup."""
    values = {(mode, churn): _measure(mode == "vRead", churn, file_bytes,
                                      duration, seed)
              for mode in MODES for churn in churn_levels}
    return assemble(values, churn_levels=churn_levels,
                    file_bytes=file_bytes, duration=duration)
