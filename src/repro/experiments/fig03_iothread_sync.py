"""Figure 3: I/O-thread synchronization overhead (netperf TCP_RR).

netperf server and client in two co-located VMs on a quad-core host.  With
no other load the transaction rate is high; with 2 extra VMs running 85%
lookbusy, vCPU/I/O-thread wakeups queue behind busy cores and the rate
drops (the paper measures ~20%).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import FigureResult
from repro.workloads.netperf import NetperfRR

REQUEST_SIZES = (32 * 1024, 64 * 1024, 128 * 1024)
SIZE_LABELS = {32 * 1024: "32KB", 64 * 1024: "64KB", 128 * 1024: "128KB"}


def _measure(request_bytes: int, total_vms: int, duration: float) -> float:
    cluster = VirtualHadoopCluster(block_size=1 << 20,
                                   total_vms_per_host=total_vms)
    rr = NetperfRR(cluster.network, cluster.client_vm,
                   cluster.datanode_vms[0], request_bytes=request_bytes)

    def proc():
        return (yield from rr.run(duration))

    rate = cluster.run(cluster.sim.process(proc()))
    cluster.stop_background()
    return rate


def run(request_sizes: Sequence[int] = REQUEST_SIZES,
        duration: float = 0.3) -> FigureResult:
    """Run the Figure 3 experiment; rates are transactions/second."""
    series = {"2vms": [], "4vms": []}
    for request_bytes in request_sizes:
        series["2vms"].append(_measure(request_bytes, 2, duration))
        series["4vms"].append(_measure(request_bytes, 4, duration))
    return FigureResult(
        figure="Fig 3",
        title="I/O threads synchronization overhead (netperf TCP_RR)",
        x_label="request size",
        x_values=[SIZE_LABELS.get(s, str(s)) for s in request_sizes],
        series=series,
        unit="tx/s",
        notes=f"duration={duration}s per point, quad-core, lookbusy 85%",
    )
