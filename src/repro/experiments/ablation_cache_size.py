"""Ablation: host page-cache size vs vRead re-read performance.

vRead's re-read advantage rides entirely on the *host* page cache (the
daemon reads through the mount).  This sweep bounds the host cache and
shows the cliff: once the working set outgrows the cache, re-reads decay
to cold-read speed — quantifying how much of vRead's 150%-class re-read
win is cache-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import load_dataset
from repro.hostmodel.costs import CostModel
from repro.metrics.report import Table
from repro.storage.content import PatternSource


@dataclass
class CacheSizeResult:
    #: host cache bytes -> re-read MBps (vRead)
    """Structured result of this experiment (render() for the table)."""
    cells: Dict[float, float]
    file_bytes: int

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["host page cache", "vRead re-read MB/s"],
                      title=f"Ablation: host cache size "
                            f"(working set {self.file_bytes >> 20}MB)")
        for cache_bytes, mbps in self.cells.items():
            label = ("unbounded" if cache_bytes == float("inf")
                     else f"{int(cache_bytes) >> 20}MB")
            table.add_row(label, f"{mbps:.0f}")
        return table.render()


def _measure(cache_bytes: float, file_bytes: int) -> float:
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=True)
    for host in cluster.hosts:
        # Rebind the host cache with a bound (same LRU semantics).
        from repro.storage.pagecache import PageCache
        host.page_cache = PageCache(cache_bytes,
                                    name=f"{host.name}.pagecache")
    load_dataset(cluster, "/abl/data", PatternSource(file_bytes, seed=65),
                 favored=["dn1"])
    client = cluster.clients.get()
    cluster.drop_all_caches()

    def read():
        start = cluster.sim.now
        yield from client.read_file("/abl/data", 1 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    cluster.run(cluster.sim.process(read()))           # cold pass
    cluster.client_vm.drop_guest_cache()               # isolate host cache
    return cluster.run(cluster.sim.process(read()))    # measured re-read


def run(file_bytes: int = 32 << 20,
        cache_sizes: Sequence[float] = (4 << 20, 16 << 20, 64 << 20,
                                        float("inf"))) -> CacheSizeResult:
    """Run the experiment; see the module docstring for the setup."""
    cells = {size: _measure(size, file_bytes) for size in cache_sizes}
    return CacheSizeResult(cells, file_bytes)
