"""Chaos sweep: resilient reads under seeded random fault storms.

Each *case* builds a fresh 3-host vRead cluster, generates a random fault
plan from the case seed, compressed to a few-millisecond horizon so the
storm breaks mid-read (:func:`repro.faults.chaos.random_plan`), arms it
under a replicated multi-block read, and verifies the data byte-for-byte.
The sweep reports per-case read latency and fault/recovery activity — the
figure is an extension (the paper has no chaos experiment), but it doubles
as the reproduction's end-to-end resilience regression and as the
parallel-runner determinism workload: cases are independent, their plan
seeds are derived from the root seed, so ``--jobs 1`` and ``--jobs N`` must
produce identical output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import FigureResult
from repro.faults import VReadClientPolicy
from repro.faults.chaos import random_plan
from repro.storage.content import PatternSource


@dataclass
class ChaosCase:
    """One seeded fault storm's outcome."""
    plan_seed: int
    read_ms: float
    verified: bool
    fault_events: int
    recovery_events: int


def run_case(plan_seed: int, file_bytes: int = 4 << 20,
             faults: int = 3, horizon: float = 0.002) -> ChaosCase:
    """Run one chaos case: seeded storm under a verified replicated read."""
    plan = random_plan(seed=plan_seed, faults=faults, horizon=horizon)
    cluster = VirtualHadoopCluster(n_hosts=3, block_size=1 << 20,
                                   replication=2, vread=True,
                                   seed=plan_seed, faults=plan)
    cluster.vread_manager.client_policy = VReadClientPolicy(
        open_timeout=0.05, read_timeout=0.1, reprobe_interval=0.5)
    payload = PatternSource(file_bytes, seed=plan_seed)

    def load():
        yield from cluster.write_dataset("/chaos/data", payload)

    cluster.run(cluster.sim.process(load()))
    cluster.settle()

    client = cluster.clients.get()
    cluster.faults.arm()
    start = cluster.sim.now

    def read():
        source = yield from client.read_file("/chaos/data")
        return source

    source = cluster.run(cluster.sim.process(read()))
    elapsed = cluster.sim.now - start
    verified = source.checksum() == payload.checksum()
    case = ChaosCase(
        plan_seed=plan_seed,
        read_ms=elapsed * 1e3,
        verified=verified,
        fault_events=cluster.fault_counters.total("fault."),
        recovery_events=cluster.fault_counters.total("recovery."),
    )
    cluster.stop_background()
    return case


def assemble(cases: Sequence[ChaosCase], file_bytes: int = 4 << 20,
             **_ignored) -> FigureResult:
    """Build the sweep figure from already-computed cases."""
    series: Dict[str, List[float]] = {
        "read ms": [round(case.read_ms, 3) for case in cases],
        "faults": [float(case.fault_events) for case in cases],
        "recoveries": [float(case.recovery_events) for case in cases],
        "verified": [1.0 if case.verified else 0.0 for case in cases],
    }
    return FigureResult(
        figure="Extension (chaos)",
        title="Verified read under seeded random fault storms",
        x_label="plan seed",
        x_values=[case.plan_seed for case in cases],
        series=series,
        unit="mixed",
        notes=f"{file_bytes >> 20}MB replicated reads, 3 hosts, "
              f"vRead with degrade+failover",
    )


def run(seeds: Optional[Sequence[int]] = None, cases: int = 6,
        file_bytes: int = 4 << 20, faults: int = 3,
        horizon: float = 0.002) -> FigureResult:
    """Run the sweep serially; see the module docstring for the setup.

    ``seeds`` overrides the plan seeds; by default the first ``cases``
    integers are used.  The parallel runner instead derives each case's
    plan seed from ``(root_seed, point)`` — see
    :mod:`repro.experiments.runner`.
    """
    if seeds is None:
        seeds = tuple(range(cases))
    outcomes = [run_case(seed, file_bytes=file_bytes, faults=faults,
                         horizon=horizon) for seed in seeds]
    return assemble(outcomes, file_bytes=file_bytes)
