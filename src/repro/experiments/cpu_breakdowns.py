"""Figures 6, 7, 8: CPU-utilization breakdowns for a 1 GB HDFS read.

The paper reads a 1 GB file with 1 MB requests and charts average CPU
utilization by component:

* Fig 6 — client VM and datanode VM, **co-located** (no virtual network
  with vRead at all);
* Fig 7 — **remote** read with RDMA daemons (rdma cost higher on the
  datanode side: active push);
* Fig 8 — remote read with the **TCP** daemon transport (vRead-net is less
  efficient than in-kernel vhost-net, but total is still below vanilla).

Each run measures two views: the client side (client VM's threads) and the
data-serving side (datanode VM's threads for vanilla; vRead daemon/service
threads for vRead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import (
    BreakdownResult,
    BreakdownViews,
    client_view,
    daemon_view,
    datanode_view,
    load_dataset,
)
from repro.storage.content import PatternSource


@dataclass
class CpuBreakdownResult:
    """Structured result of this experiment (render() for the table)."""
    client: BreakdownResult
    serving: BreakdownResult

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        return self.client.render() + "\n\n" + self.serving.render()

    def client_saving_pct(self) -> float:
        """Total client-side CPU saving of vRead vs vanilla (%)."""
        vanilla = self.client.bars["vanilla"].total
        vread = self.client.bars["vRead"].total
        return (vanilla - vread) / vanilla * 100.0

    def serving_saving_pct(self) -> float:
        """Total serving-side CPU saving of vRead vs vanilla (%)."""
        vanilla = self.serving.bars["vanilla-datanode"].total
        vread = self.serving.bars["vRead-daemon"].total
        return (vanilla - vread) / vanilla * 100.0


def _measure(vread: bool, scenario: str, transport: str,
             file_bytes: int, request_bytes: int):
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=vread, vread_transport=transport)
    favored = ["dn1"] if scenario == "colocated" else ["dn2"]
    dn_index = 0 if scenario == "colocated" else 1
    load_dataset(cluster, "/fig-cpu/data", PatternSource(file_bytes, seed=6),
                 favored=favored)
    cluster.drop_all_caches()
    client = cluster.clients.get()
    views = BreakdownViews(cluster)
    views.mark()

    def proc():
        yield from client.read_file("/fig-cpu/data", request_bytes)

    cluster.run(cluster.sim.process(proc()))
    client_threads = client_view(cluster)
    if vread and scenario == "colocated":
        # Fig 6: the host's daemons are the serving side ("vRead-daemon").
        serving_threads = daemon_view(cluster, host_index=0)
    elif vread:
        # Figs 7/8: requester-side daemons belong on the client chart (the
        # paper's client bars include the rdma / vRead-net cost); the remote
        # host's service is the datanode side.
        client_threads = client_threads + daemon_view(cluster, host_index=0)
        serving_threads = daemon_view(cluster, host_index=1)
    else:
        serving_threads = datanode_view(cluster, dn_index)
    collected = views.collect({
        "client": client_threads,
        "serving": serving_threads,
    })
    return collected["client"], collected["serving"]


def _run(figure: str, scenario: str, transport: str, file_bytes: int,
         request_bytes: int, title: str) -> CpuBreakdownResult:
    vread_client, vread_serving = _measure(True, scenario, transport,
                                           file_bytes, request_bytes)
    vanilla_client, vanilla_serving = _measure(False, scenario, transport,
                                               file_bytes, request_bytes)
    note = f"file={file_bytes >> 20}MB, request={request_bytes >> 10}KB"
    return CpuBreakdownResult(
        client=BreakdownResult(
            figure + "(a)", f"Client CPU utilization — {title}",
            {"vRead": vread_client, "vanilla": vanilla_client}, notes=note),
        serving=BreakdownResult(
            figure + "(b)", f"Datanode-side CPU utilization — {title}",
            {"vRead-daemon": vread_serving,
             "vanilla-datanode": vanilla_serving}, notes=note),
    )


def run_fig06(file_bytes: int = 64 << 20,
              request_bytes: int = 1 << 20) -> CpuBreakdownResult:
    """Fig 6: co-located read."""
    return _run("Fig 6", "colocated", "rdma", file_bytes, request_bytes,
                "co-located read")


def run_fig07(file_bytes: int = 64 << 20,
              request_bytes: int = 1 << 20) -> CpuBreakdownResult:
    """Fig 7: remote read, RDMA daemons."""
    return _run("Fig 7", "remote", "rdma", file_bytes, request_bytes,
                "remote read with RDMA")


def run_fig08(file_bytes: int = 64 << 20,
              request_bytes: int = 1 << 20) -> CpuBreakdownResult:
    """Fig 8: remote read, TCP daemon transport."""
    return _run("Fig 8", "remote", "tcp", file_bytes, request_bytes,
                "remote read with TCP")
