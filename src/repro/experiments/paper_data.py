"""Paper-reported values, for side-by-side comparison in EXPERIMENTS.md.

Numbers read off the paper's text and charts (chart values are approximate
eyeball readings; text values are exact).  These are used by benchmarks to
check the *shape* of reproduced results — who wins and by roughly what
factor — never to fabricate outputs.
"""

# ----------------------------------------------------------------- headline
#: "Hadoop's throughput can be improved by up to 60% for read and 150% for
#: re-read" (abstract / Section 1).
MAX_READ_IMPROVEMENT_PCT = 60.0
MAX_REREAD_IMPROVEMENT_PCT = 150.0

# -------------------------------------------------------------------- Fig 3
#: "the TCP transaction rate drops by 20%" with 2 extra lookbusy VMs.
FIG3_RATE_DROP_PCT = 20.0
FIG3_REQUEST_SIZES = (32 * 1024, 64 * 1024, 128 * 1024)

# ----------------------------------------------------------------- Figs 6-8
#: "we save around 40% of the CPU cycles on the client side and around 65%
#: on the datanode side" (co-located).
FIG6_CLIENT_CPU_SAVING_PCT = 40.0
FIG6_DATANODE_CPU_SAVING_PCT = 65.0
#: "around 45% ... on client side and more than 50% on datanode side"
#: (remote read with RDMA).
FIG7_CLIENT_CPU_SAVING_PCT = 45.0
FIG7_DATANODE_CPU_SAVING_PCT = 50.0
#: Fig 8: TCP daemons — total still slightly below vanilla, but the
#: daemons' user-space TCP (vRead-net) is less efficient than vhost-net.
FIG8_TOTAL_STILL_LOWER = True

# -------------------------------------------------------------------- Fig 9
#: "vRead can reduce the data access delay of the co-located HDFS reads by
#: up to 40% for the 2 VMs scenario and up to 50% for the 4 VMs scenario".
FIG9_DELAY_REDUCTION_2VMS_PCT = 40.0
FIG9_DELAY_REDUCTION_4VMS_PCT = 50.0
FIG9_REQUEST_SIZES = (64 * 1024, 1 << 20, 4 << 20)

# ------------------------------------------------------------------- Fig 11
#: "around 20% throughput improvement ... on powerful processors (3.2GHz)";
#: "on the low-power processors (1.6GHz), the throughput improvement
#: increases to around 41%" (2 VMs, co-located read).
FIG11_COLOCATED_READ_IMPROVEMENT_3_2GHZ_PCT = 20.0
FIG11_COLOCATED_READ_IMPROVEMENT_1_6GHZ_PCT = 41.0
#: "the vanilla case's throughput drops by up to 22% for the 4 VMs scenario"
FIG11_VANILLA_4VMS_DROP_PCT = 22.0
#: "vRead has up to 65% improvement over the vanilla case in the 4 VMs
#: scenario".
FIG11_4VMS_IMPROVEMENT_PCT = 65.0

# ------------------------------------------------------------------- Fig 13
#: Write throughput: "the overhead of updating the information of the mount
#: directory is negligible".
FIG13_WRITE_OVERHEAD_NEGLIGIBLE_PCT = 5.0  # tolerance we hold ourselves to

# ------------------------------------------------------------------- Table 2
TABLE2_HBASE = {
    # operation: (vanilla MB/s, vRead MB/s, % improvement)
    "scan": (6.26, 7.97, 27.3),
    "sequential-read": (3.01, 3.72, 23.6),
    "random-read": (2.48, 2.91, 17.3),
}

# ------------------------------------------------------------------- Table 3
#: (vanilla seconds, vRead seconds, % reduction)
TABLE3_HIVE_SELECT = (17.945, 14.117, 21.3)
TABLE3_SQOOP_EXPORT = (385.136, 342.508, 11.3)
