"""Figure 12: TestDFSIO CPU running time, 6 panels.

The same sweep as Figure 11, reporting the benchmark's client-side CPU
running time (ms) instead of throughput — vRead must save CPU in every
panel, not just elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.common import FigureResult
from repro.experiments.dfsio_sweep import MODES, VM_COUNTS, run_sweep
from repro.experiments.fig11_dfsio_throughput import PANELS
from repro.hostmodel.frequency import PAPER_FREQUENCIES, frequency_label


@dataclass
class Fig12Result:
    """Structured result of this experiment (render() for the table)."""
    panels: Dict[Tuple[str, str], FigureResult]

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        return "\n\n".join(panel.render() for panel in self.panels.values())

    def cpu_saving_pct(self, scenario: str, phase: str, freq_label: str,
                       vms: int) -> float:
        """vRead CPU saving (%) for one cell."""
        panel = self.panels[(scenario, phase)]
        vanilla = panel.value(f"vanilla-{vms}vms", freq_label)
        vread = panel.value(f"vRead-{vms}vms", freq_label)
        return (vanilla - vread) / vanilla * 100.0


def run(frequencies: Sequence[float] = PAPER_FREQUENCIES,
        file_bytes: int = 32 << 20, n_files: int = 2) -> Fig12Result:
    """Run the experiment; see the module docstring for the setup."""
    cells = run_sweep(frequencies=frequencies, file_bytes=file_bytes,
                      n_files=n_files)
    labels = [frequency_label(f) for f in frequencies]
    panels = {}
    for scenario, phase, letter in PANELS:
        series = {}
        for mode in MODES:
            for vms in VM_COUNTS:
                values = []
                for frequency in frequencies:
                    cell = cells[(scenario, frequency, vms, mode)]
                    values.append(cell.read_cpu_ms if phase == "read"
                                  else cell.reread_cpu_ms)
                series[f"{mode}-{vms}vms"] = values
        panels[(scenario, phase)] = FigureResult(
            figure=f"Fig 12{letter}",
            title=f"DFSIO CPU time for {scenario} "
                  f"{'re-read' if phase == 'reread' else 'read'}",
            x_label="CPU frequency",
            x_values=labels,
            series=series,
            unit="ms",
            notes=f"{n_files} x {file_bytes >> 20}MB files, 1MB buffer",
        )
    return Fig12Result(panels)
