"""Extension experiment: SLO behaviour as the tenant population grows.

Holds the per-tenant open-loop rate fixed and sweeps the number of
tenant client VMs sharing the ``paper_fig10`` testbed.  With every added
tenant the quad-core host and the shared datanode absorb another
independent arrival stream, so the worst-tenant p99 and the
SLO-violation time fraction climb — much earlier for the vanilla path,
whose per-byte CPU appetite is what vRead exists to remove.

Reuses :class:`~repro.experiments.load_sweep.LoadSweepResult` with the
tenant count as the swept axis (all points "healthy"; chaos curves live
in the ``load-sweep`` experiment).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster, paper_fig10
from repro.experiments.load_sweep import LoadSweepResult, _key
from repro.load import LoadGenerator, SloReport, default_tenants

MODES = ("vanilla", "vRead")


def _measure(vread: bool, n_tenants: int, seed: int, duration: float,
             rate: float, request_bytes: int, deadline_seconds: float,
             arrival_kind: str) -> SloReport:
    """One sweep point: ``n_tenants`` client VMs on a fresh cluster."""
    cluster = VirtualHadoopCluster(
        block_size=max(request_bytes, 1 << 20),
        vread=vread,
        topology=paper_fig10(clients=n_tenants),
        seed=seed)
    tenants = default_tenants(n_tenants, rate,
                              deadline_seconds=deadline_seconds,
                              arrival_kind=arrival_kind,
                              request_bytes=request_bytes,
                              n_keys=4)
    generator = LoadGenerator(tenants, seed=seed)
    mode = "vRead" if vread else "vanilla"
    return generator.run_cluster(
        cluster, duration,
        title=f"{mode} with {n_tenants} tenants @ {rate:g} req/s each")


def assemble(values: Dict[Tuple[str, int], SloReport],
             tenant_counts: Sequence[int] = (1, 2, 4),
             rate: float = 40.0, duration: float = 2.5,
             deadline_ms: float = 2.0, arrival_kind: str = "bursty",
             **_ignored) -> LoadSweepResult:
    """Build the result from measured ``(mode, n_tenants)`` points."""
    return LoadSweepResult(
        figure="Extension (tenant scale-out)",
        title="Worst-tenant SLO vs tenant count",
        x_label="tenant VMs",
        x_values=[float(n) for n in tenant_counts],
        reports={_key(mode, "healthy", float(n)): values[(mode, n)]
                 for mode in MODES for n in tenant_counts},
        notes=(f"{rate:g} req/s/tenant, {arrival_kind} arrivals, "
               f"{duration:g}s window, {deadline_ms:g}ms deadline"))


def run(tenant_counts: Sequence[int] = (1, 2, 4), rate: float = 40.0,
        duration: float = 2.5, request_bytes: int = 256 << 10,
        deadline_ms: float = 2.0, arrival_kind: str = "bursty",
        seed: int = 0) -> LoadSweepResult:
    """Run the sweep serially (the registry fan-out parallelizes this)."""
    from repro.experiments.runner import derive_seed
    values = {}
    for mode in MODES:
        for n_tenants in tenant_counts:
            point = (mode, n_tenants)
            values[point] = _measure(
                mode == "vRead", n_tenants, derive_seed(seed, point),
                duration, rate, request_bytes, deadline_ms * 1e-3,
                arrival_kind)
    return assemble(values, tenant_counts=tenant_counts, rate=rate,
                    duration=duration, deadline_ms=deadline_ms,
                    arrival_kind=arrival_kind)
