"""Ablation: HDFS data-transfer packet size on the vanilla read path.

Real HDFS streams blocks in 64 KB packets.  The packet size sets the
pipelining granularity of the vanilla path (disk | datanode CPU | vhost |
client CPU overlap): tiny packets drown in per-packet costs, huge packets
serialize the stages.  vRead sidesteps the whole trade-off, which this
sweep makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import load_dataset
from repro.metrics.report import Table
from repro.storage.content import PatternSource

PACKET_SIZES = (16 * 1024, 64 * 1024, 256 * 1024, 1 << 20, 4 << 20)


@dataclass
class PacketSizeResult:
    #: packet bytes -> cold-read MBps (vanilla)
    """Structured result of this experiment (render() for the table)."""
    vanilla: Dict[int, float]
    vread_reference: float

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        table = Table(["HDFS packet size", "vanilla cold read MB/s"],
                      title="Ablation: vanilla streaming packet size "
                            f"(vRead reference: {self.vread_reference:.0f} "
                            f"MB/s, packet-size independent)")
        for packet, mbps in self.vanilla.items():
            table.add_row(f"{packet >> 10}KB", f"{mbps:.0f}")
        return table.render()


def _measure(packet_bytes, vread: bool, file_bytes: int) -> float:
    kwargs = {"block_size": max(file_bytes, 1 << 20), "vread": vread}
    if packet_bytes is not None:
        kwargs["packet_bytes"] = packet_bytes
    cluster = VirtualHadoopCluster(**kwargs)
    load_dataset(cluster, "/abl/data", PatternSource(file_bytes, seed=64),
                 favored=["dn1"])
    client = cluster.clients.get()
    cluster.drop_all_caches()

    def read():
        start = cluster.sim.now
        yield from client.read_file("/abl/data", 1 << 20)
        return file_bytes / 1e6 / (cluster.sim.now - start)

    return cluster.run(cluster.sim.process(read()))


def run(file_bytes: int = 32 << 20,
        packet_sizes: Sequence[int] = PACKET_SIZES) -> PacketSizeResult:
    """Run the experiment; see the module docstring for the setup."""
    vanilla = {packet: _measure(packet, False, file_bytes)
               for packet in packet_sizes}
    vread_reference = _measure(None, True, file_bytes)
    return PacketSizeResult(vanilla, vread_reference)
