"""Figure 13: HDFS write throughput — vRead_update overhead is negligible.

TestDFSIO-write in the three scenarios at 2.0 GHz, vanilla vs vRead.  The
only vRead-side work on the write path is the mount-point dentry/inode
refresh per committed block, so throughput must be statistically unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import FigureResult
from repro.experiments.dfsio_sweep import SCENARIOS, run_cell
from repro.hostmodel.frequency import GHZ_2_0


def run(scenarios: Sequence[str] = SCENARIOS,
        file_bytes: int = 32 << 20, n_files: int = 2,
        frequency_hz: float = GHZ_2_0) -> FigureResult:
    """Run the experiment; see the module docstring for the setup."""
    series = {"vanilla": [], "vRead": []}
    for scenario in scenarios:
        for mode in ("vanilla", "vRead"):
            cell = run_cell(scenario, frequency_hz, 2, mode,
                            file_bytes=file_bytes, n_files=n_files)
            series[mode].append(cell.write_mbps)
    labels = {"colocated": "co-located", "remote": "remote",
              "hybrid": "hybrid"}
    return FigureResult(
        figure="Fig 13",
        title="HDFS write throughput (vRead_update overhead)",
        x_label="scenario",
        x_values=[labels.get(s, s) for s in scenarios],
        series=series,
        unit="MBps",
        notes=f"{n_files} x {file_bytes >> 20}MB files @2.0GHz",
    )
