"""Extension experiment: multi-client scale-out on one host.

The paper motivates vRead with CPU headroom ("less CPU cycles for the real
Hadoop workload").  This extension quantifies the scalability consequence:
as more client VMs on the same host read from the co-located datanode VM
concurrently, the vanilla path's per-byte CPU appetite saturates the
quad-core much earlier than vRead's — so the aggregate-throughput curves
diverge with client count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster, paper_fig10
from repro.experiments.common import FigureResult
from repro.sim import AllOf
from repro.storage.content import PatternSource


def _measure(vread: bool, n_clients: int, file_bytes: int) -> float:
    """Aggregate MB/s with ``n_clients`` client VMs reading concurrently."""
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=vread,
                                   topology=paper_fig10(clients=n_clients))
    client_vms = cluster.client_vms
    # Each client reads its own file from the co-located datanode.
    def load():
        for i in range(n_clients):
            yield from cluster.write_dataset(
                f"/scale/f{i}", PatternSource(file_bytes, seed=70 + i),
                favored=["dn1"])

    cluster.run(cluster.sim.process(load()))
    cluster.settle()
    clients = [cluster.clients.get(vm=vm) for vm in client_vms]

    def reader(client, index):
        yield from client.read_file(f"/scale/f{index}", 1 << 20)

    def job():
        readers = [cluster.sim.process(reader(client, i))
                   for i, client in enumerate(clients)]
        yield AllOf(cluster.sim, readers)

    # Warm pass first: the measured pass is cache-warm, so the quad-core's
    # CPU — not the SSD — is the binding resource, which is where the
    # vanilla path's extra copies hurt aggregate scalability.
    cluster.run(cluster.sim.process(job()))
    start = cluster.sim.now
    cluster.run(cluster.sim.process(job()))
    elapsed = cluster.sim.now - start
    return n_clients * file_bytes / 1e6 / elapsed


def assemble(values: Dict[Tuple[str, int], float],
             client_counts: Sequence[int] = (1, 2, 4),
             file_bytes: int = 16 << 20) -> FigureResult:
    """Build the figure from measured ``(mode, n_clients) -> MB/s`` values."""
    series: Dict[str, List[float]] = {
        "vanilla": [values[("vanilla", n)] for n in client_counts],
        "vRead": [values[("vRead", n)] for n in client_counts],
    }
    return FigureResult(
        figure="Extension (scale-out)",
        title="Aggregate warm-read throughput vs co-located client count",
        x_label="client VMs",
        x_values=list(client_counts),
        series=series,
        unit="MBps",
        notes=f"{file_bytes >> 20}MB per client, quad-core host @2.0GHz",
    )


def run(client_counts: Sequence[int] = (1, 2, 4),
        file_bytes: int = 16 << 20) -> FigureResult:
    """Run the experiment; see the module docstring for the setup."""
    values = {(mode, n): _measure(mode == "vRead", n, file_bytes)
              for n in client_counts for mode in ("vanilla", "vRead")}
    return assemble(values, client_counts=client_counts,
                    file_bytes=file_bytes)
