"""Figure 9: data access delay for virtual HDFS, vanilla vs vRead.

The Figure 2 experiment repeated with the inter-VM reads replaced by vRead
reads, in the 2-VM and 4-VM (2 lookbusy hogs) scenarios, cold and warm.
The paper reports delay reductions of up to 40% (2 VMs) and up to 50%
(4 VMs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cluster import VirtualHadoopCluster
from repro.experiments.common import (
    FigureResult, load_dataset)
from repro.storage.content import PatternSource
from repro.workloads.filereader import FileReadBenchmark

REQUEST_SIZES = (64 * 1024, 1 << 20, 4 << 20)
SIZE_LABELS = {64 * 1024: "64KB", 1 << 20: "1MB", 4 << 20: "4MB"}


@dataclass
class Fig09Result:
    """Structured result of this experiment (render() for the table)."""
    no_cache: FigureResult
    cache: FigureResult

    def render(self) -> str:
        """Render the result as paper-style ASCII tables."""
        return self.no_cache.render() + "\n\n" + self.cache.render()

    def reduction_pct(self, vms: str, cached: bool, size_label: str) -> float:
        """vRead delay reduction (%) for one cell."""
        figure = self.cache if cached else self.no_cache
        vanilla = figure.value(f"vanilla-{vms}", size_label)
        vread = figure.value(f"vRead-{vms}", size_label)
        return (vanilla - vread) / vanilla * 100.0


def _measure(vread: bool, total_vms: int, request_bytes: int,
             cached: bool, file_bytes: int):
    """Returns the measured pass's per-request delay sink (SummaryStats)."""
    cluster = VirtualHadoopCluster(block_size=max(file_bytes, 1 << 20),
                                   vread=vread,
                                   total_vms_per_host=total_vms)
    load_dataset(cluster, "/fig9/data", PatternSource(file_bytes, seed=9),
                 favored=["dn1"])
    client = cluster.clients.get()

    def reader():
        bench = FileReadBenchmark(request_bytes)
        yield from bench.read_hdfs(client, "/fig9/data")
        return bench.delays

    if cached:
        cluster.run(cluster.sim.process(reader()))  # warm-up
    else:
        cluster.drop_all_caches()
    delays = cluster.run(cluster.sim.process(reader()))
    cluster.stop_background()
    return delays


def run(file_bytes: int = 16 << 20,
        request_sizes: Sequence[int] = REQUEST_SIZES) -> Fig09Result:
    """Run the Figure 9 experiment; delays in milliseconds."""
    figures: Dict[str, FigureResult] = {}
    for cached, tag, panel in ((False, "no_cache", "Fig 9(a)"),
                               (True, "cache", "Fig 9(b)")):
        series = {"vanilla-2vms": [], "vRead-2vms": [],
                  "vanilla-4vms": [], "vRead-4vms": []}
        for request_bytes in request_sizes:
            series["vanilla-2vms"].append(
                _measure(False, 2, request_bytes, cached, file_bytes))
            series["vRead-2vms"].append(
                _measure(True, 2, request_bytes, cached, file_bytes))
            series["vanilla-4vms"].append(
                _measure(False, 4, request_bytes, cached, file_bytes))
            series["vRead-4vms"].append(
                _measure(True, 4, request_bytes, cached, file_bytes))
        figures[tag] = FigureResult.from_sinks(
            figure=panel,
            title=("Data access delay "
                   + ("with cache" if cached else "without cache")),
            x_label="size of request",
            x_values=[SIZE_LABELS.get(s, str(s)) for s in request_sizes],
            series=series,
            reduce=lambda delays: delays.mean * 1e3,
            unit="ms",
            notes=f"file={file_bytes >> 20}MB, co-located read @2.0GHz",
        )
    return Fig09Result(figures["no_cache"], figures["cache"])
