"""The TestDFSIO parameter sweep shared by Figures 11, 12 and 13.

One *cell* of the sweep = (scenario, CPU frequency, VMs-per-host, client
mode).  Each cell builds a fresh cluster, writes the dataset, then measures
a cold read, a warm re-read, and the client-side CPU time of both — so
Figure 11 (throughput) and Figure 12 (CPU running time) come from the same
runs, like the paper's single benchmark invocation reporting both.

Scenario -> data layout:

* ``colocated`` — all blocks on the datanode VM sharing the client's host;
* ``remote``    — all blocks on the datanode VM on the other host;
* ``hybrid``    — blocks spread round-robin over both datanodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.cluster import VirtualHadoopCluster
from repro.hostmodel.frequency import PAPER_FREQUENCIES, frequency_label
from repro.workloads.testdfsio import TestDfsio

SCENARIOS = ("colocated", "remote", "hybrid")
VM_COUNTS = (2, 4)
MODES = ("vanilla", "vRead")


@dataclass
class DfsioCell:
    """One cluster's measurements for Figures 11/12."""
    read_mbps: float
    reread_mbps: float
    read_cpu_ms: float
    reread_cpu_ms: float
    write_mbps: float


CellKey = Tuple[str, float, int, str]

#: Memoized sweep cells, so fig11/fig12/fig13 can share runs.
_cache: Dict[Tuple, DfsioCell] = {}


def _scenario_layout(scenario: str):
    if scenario == "colocated":
        return {"favored": ["dn1"], "spread": False}
    if scenario == "remote":
        return {"favored": ["dn2"], "spread": False}
    if scenario == "hybrid":
        return {"favored": None, "spread": True}
    raise ValueError(f"unknown scenario {scenario!r}")


def run_cell(scenario: str, frequency_hz: float, total_vms: int, mode: str,
             file_bytes: int = 32 << 20, n_files: int = 2,
             request_bytes: int = 1 << 20) -> DfsioCell:
    """Measure one sweep cell (memoized on all arguments)."""
    key = (scenario, frequency_hz, total_vms, mode, file_bytes, n_files,
           request_bytes)
    if key in _cache:
        return _cache[key]
    layout = _scenario_layout(scenario)
    cluster = VirtualHadoopCluster(
        block_size=64 << 20, frequency_hz=frequency_hz,
        total_vms_per_host=total_vms, vread=(mode == "vRead"))
    dfsio = TestDfsio(cluster.clients.get(), request_bytes=request_bytes)

    def proc():
        write_result = yield from dfsio.write(n_files, file_bytes, **layout)
        cluster.drop_all_caches()
        read_result = yield from dfsio.read(n_files)
        reread_result = yield from dfsio.read(n_files)
        return write_result, read_result, reread_result

    write_result, read_result, reread_result = cluster.run(
        cluster.sim.process(proc()))
    cluster.stop_background()
    cell = DfsioCell(
        read_mbps=read_result.throughput_mbps,
        reread_mbps=reread_result.throughput_mbps,
        read_cpu_ms=read_result.cpu_milliseconds,
        reread_cpu_ms=reread_result.cpu_milliseconds,
        write_mbps=write_result.throughput_mbps,
    )
    _cache[key] = cell
    return cell


def run_sweep(scenarios: Sequence[str] = SCENARIOS,
              frequencies: Sequence[float] = PAPER_FREQUENCIES,
              vm_counts: Sequence[int] = VM_COUNTS,
              modes: Sequence[str] = MODES,
              file_bytes: int = 32 << 20, n_files: int = 2,
              request_bytes: int = 1 << 20
              ) -> Dict[Tuple[str, float, int, str], DfsioCell]:
    """Run the full (or a partial) sweep; returns cells keyed by
    (scenario, frequency, vms, mode)."""
    cells = {}
    for scenario in scenarios:
        for frequency in frequencies:
            for vms in vm_counts:
                for mode in modes:
                    cells[(scenario, frequency, vms, mode)] = run_cell(
                        scenario, frequency, vms, mode, file_bytes, n_files,
                        request_bytes)
    return cells


def clear_cache() -> None:
    """Drop all memoized sweep cells (forces fresh runs)."""
    _cache.clear()
