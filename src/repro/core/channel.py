"""The guest<->daemon communication channel (ivshmem ring + eventfds).

Each client VM gets one channel: a request ring, a response ring (the POSIX
SHM object exposed to the guest as a virtual PCI device), and a pair of
eventfds.  The guest-side driver translates daemon eventfd signals into
virtual interrupts (``virq_cycles`` on the vCPU); the daemon reads its
eventfd directly (paper Section 3.3).

Responses larger than ``chunk_bytes`` stream through the ring in chunks so
a 4 MB application request cannot exceed the ring's 1024 x 4 KiB capacity;
both sides derive the chunk count deterministically from the request.

Conversations carry an *epoch*.  When the guest abandons a conversation
(deadline expiry — see :mod:`repro.faults.retry`) it bumps the epoch via
:meth:`VReadChannel.abort_conversation`; responses the daemon later emits
for the dead conversation are tagged with the old epoch and silently
discarded by the next reader, so a timed-out request cannot corrupt a
subsequent one.  :meth:`VReadChannel.reset` rebuilds the rings and
doorbells outright — used when the daemon itself is restarted after a
crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.hostmodel.costs import CostModel
from repro.metrics.accounting import COPY_VREAD_BUFFER, OTHERS
from repro.sim import Lock, Simulator
from repro.virt.eventfd import EventFd
from repro.virt.ivshmem import SharedRing

#: Response streaming granularity through the ring.
DEFAULT_CHUNK_BYTES = 1 << 20


@dataclass
class ChannelRequest:
    """A request placed in the shared ring by the guest driver."""
    kind: str                 # 'open' | 'read' | 'update'
    block_name: str
    datanode_id: str
    offset: int = 0
    length: int = 0
    extra: Any = None


@dataclass
class OpenResult:
    """Daemon -> guest reply to an 'open' request."""
    ok: bool
    size: int = 0
    message: str = ""


class VReadChannel:
    """One client VM's shared-memory channel to its vRead daemon."""

    def __init__(self, sim: Simulator, vm, costs: Optional[CostModel] = None,
                 slots: int = 1024, slot_bytes: int = 4096,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        self.sim = sim
        self.vm = vm
        self.costs = costs or vm.costs
        # A response chunk can never exceed the ring itself.
        self.chunk_bytes = min(chunk_bytes, slots * slot_bytes)
        self._slots = slots
        self._slot_bytes = slot_bytes
        #: Conversation epoch — bumped by :meth:`abort_conversation`.
        self.epoch = 0
        #: Epoch of the request the daemon is currently serving
        #: (conversations are serialized, so a single slot suffices).
        self._serving_epoch = 0
        self.stale_responses_dropped = 0
        self.resets = 0
        #: Serializes request/response conversations from concurrent streams
        #: in the same guest (one conversation owns the rings at a time).
        self._conversation = Lock(sim)
        self._build_shared_state()

    def _build_shared_state(self) -> None:
        sim, vm = self.sim, self.vm
        self.request_ring = SharedRing(sim, slots=64,
                                       slot_bytes=self._slot_bytes,
                                       name=f"{vm.name}.vread-req")
        self.response_ring = SharedRing(sim, slots=self._slots,
                                        slot_bytes=self._slot_bytes,
                                        name=f"{vm.name}.vread-resp")
        #: guest -> daemon doorbell.
        self.daemon_efd = EventFd(sim, name=f"{vm.name}.efd-daemon")
        #: daemon -> guest doorbell (translated to a virq by the driver).
        self.guest_efd = EventFd(sim, name=f"{vm.name}.efd-guest")

    # -------------------------------------------------------------- guest side
    def conversation(self):
        """The conversation lock's request — a context manager::

            with channel.conversation() as token:
                yield token
                ...

        The ``with`` form releases on every exit path, including a deadline
        interrupt delivered mid-conversation.
        """
        return self._conversation.acquire()

    def acquire(self):
        """Generator: begin a conversation (returns the lock token).

        Prefer :meth:`conversation` with a ``with`` block — this manual form
        is not interrupt-safe.
        """
        token = yield self._conversation.acquire()
        return token

    def release(self, token) -> None:
        self._conversation.release(token)

    def abort_conversation(self) -> None:
        """Abandon the current conversation after a timeout.

        Bumps the epoch so late responses are recognizably stale, flushes
        already-written stale responses (and their doorbell signals), and
        prunes waiters orphaned by the interrupt so they cannot swallow the
        next conversation's messages.
        """
        self.epoch += 1
        current = self.epoch
        self.guest_efd.prune_cancelled()
        self.request_ring.prune_cancelled()
        self.response_ring.prune_cancelled()
        dropped = self.response_ring.discard_ready(
            lambda tagged: tagged[0] != current)
        for _ in range(dropped):
            self.guest_efd.try_consume()
        self.stale_responses_dropped += dropped

    def reset(self) -> None:
        """Rebuild rings and doorbells (daemon restart after a crash).

        In-flight state of the crashed daemon — half-written responses,
        pending doorbells — is gone, exactly like a fresh SHM mapping.
        """
        self.epoch += 1
        self._serving_epoch = self.epoch
        self.resets += 1
        self._build_shared_state()

    def guest_send_request(self, request: ChannelRequest):
        """Generator (guest driver): place a request and ring the doorbell."""
        yield from self.request_ring.put((self.epoch, request), 64)
        yield from self.vm.vcpu.run(self.costs.eventfd_cycles, OTHERS)
        self.daemon_efd.signal()

    def guest_wait_response(self, copy_category: str = COPY_VREAD_BUFFER):
        """Generator (guest driver): wait for one response item.

        Pays the virq translation on the vCPU plus the ring -> application
        copy for data payloads.  Responses tagged with a stale epoch (from a
        conversation the guest abandoned) are dropped and the wait resumes.
        Returns ``(payload, nbytes)``.
        """
        while True:
            yield from self.guest_efd.wait()
            yield from self.vm.vcpu.run(self.costs.virq_cycles, OTHERS)
            tagged, nbytes = yield from self.response_ring.get()
            epoch, payload = tagged
            if epoch != self.epoch:
                self.stale_responses_dropped += 1
                continue
            if nbytes:
                copy_cycles = (self.costs.vread_guest_copy_cycles_per_byte
                               * nbytes)
                yield from self.vm.vcpu.run(copy_cycles, copy_category)
            return payload, nbytes

    # ------------------------------------------------------------- daemon side
    def daemon_wait_request(self, daemon_thread):
        """Generator (daemon): block for the next request."""
        yield from self.daemon_efd.wait()
        (epoch, request), _ = yield from self.request_ring.get()
        self._serving_epoch = epoch
        yield from daemon_thread.run(self.costs.vread_request_cycles, OTHERS)
        return request

    def daemon_send_response(self, daemon_thread, payload: Any, nbytes: int,
                             copy_category: str = COPY_VREAD_BUFFER):
        """Generator (daemon): copy a response into the ring + doorbell.

        Responses carry the epoch of the request being served, so the guest
        can discard replies to conversations it has abandoned.
        """
        if nbytes:
            copy_cycles = self.costs.vread_copy_cycles_per_byte * nbytes
            yield from daemon_thread.run(copy_cycles, copy_category)
        yield from self.response_ring.put((self._serving_epoch, payload),
                                          nbytes)
        yield from daemon_thread.run(self.costs.eventfd_cycles, OTHERS)
        self.guest_efd.signal()

    # ----------------------------------------------------------------- chunks
    def chunk_count(self, length: int) -> int:
        """Number of response chunks for a read of ``length`` bytes."""
        if length <= 0:
            return 1
        return -(-length // self.chunk_bytes)

    def __repr__(self) -> str:
        return f"<VReadChannel {self.vm.name}>"
