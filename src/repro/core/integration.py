"""vRead-enabled HDFS client: Algorithms 1 and 2 at the DFSInputStream seam.

``VReadDfsInputStream`` re-implements the two read functions of Hadoop's
``DFSInputStream`` exactly as the paper's Algorithms 1 and 2:

* consult the vfd hash; call ``vread_open`` for unseen blocks;
* if a descriptor was obtained, read through ``vread_read``;
* otherwise fall back to the original ``read_buffer``/``fetchBlocks`` path;
* (read1 only) ``vread_close`` the descriptor once the stream's position
  reaches the end of the block.

Hadoop applications above the client are untouched: they still call
``read``/``pread``/``seek``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.api import VReadError, VReadLibrary
from repro.hdfs.block import Block
from repro.hdfs.client import DfsClient, DfsInputStream
from repro.hdfs.namenode import Namenode
from repro.net.tcp import VmNetwork
from repro.virt.vm import VirtualMachine


class VReadDfsInputStream(DfsInputStream):
    """DFSInputStream with the vRead file-operation interface."""

    def __init__(self, client: "VReadDfsClient", path: str,
                 blocks: List[Block]):
        super().__init__(client, path, blocks)
        self.library: VReadLibrary = client.library
        self.vread_reads = 0
        self.fallback_reads = 0

    # ------------------------------------------------ Algorithms 1 & 2 core
    def _read_block_data(self, block: Block, offset: int, length: int):
        """Generator: the shared body of read1/read2 with vRead."""
        library = self.library
        descriptor = library.vfd_hash.get(block.name)
        if descriptor is None:
            datanode_id = self.client.namenode.policy.choose_read_replica(
                self.client.vm, block.locations)
            descriptor = yield from library.vread_open(block.name, datanode_id)
        if descriptor is not None and descriptor.open:
            try:
                result = yield from library.vread_read(
                    descriptor, offset, length)
            except VReadError as exc:
                # Defensive fallback: e.g. the block file vanished between
                # open and read, or the daemon stopped answering.  The
                # vanilla path re-fetches via TCP.
                self.fallback_reads += 1
                self.client.count_recovery("recovery.fallback-vanilla",
                                           block=block.name, cause=str(exc))
                return (yield from self._fetch_from_datanode(
                    block, offset, length))
            self.vread_reads += 1
            return result
        # Original method of HDFS (read_buffer / fetchBlocks).
        self.fallback_reads += 1
        self.client.count_recovery("recovery.fallback-vanilla",
                                   block=block.name, cause="no descriptor")
        return (yield from self._fetch_from_datanode(block, offset, length))

    # ------------------------------------------------------------- read1
    def read(self, length: int):
        """Generator (Algorithm 1): sequential read + close-at-block-end."""
        piece = yield from super().read(length)
        if piece is not None:
            block = self._block_at(self.position - 1)
            if block is not None and self.position == block.end_offset:
                descriptor = self.library.vfd_hash.get(block.name)
                if descriptor is not None:
                    yield from self.library.vread_close(descriptor)
        return piece

    def close(self) -> None:
        """Release TCP connections and any descriptors still in the hash."""
        for block in self.blocks:
            descriptor = self.library.vfd_hash.get(block.name)
            if descriptor is not None:
                descriptor.open = False
                self.library.vfd_hash.remove(block.name)
        super().close()


class VReadDfsClient(DfsClient):
    """A DfsClient whose streams use the vRead read path."""

    def __init__(self, vm: VirtualMachine, namenode: Namenode,
                 network: VmNetwork, library: VReadLibrary,
                 retry_policy=None, counters=None, retry_rng=None):
        super().__init__(vm, namenode, network, retry_policy=retry_policy,
                         counters=counters, retry_rng=retry_rng)
        self.library = library

    def _input_stream(self, path: str, blocks: List[Block]) -> VReadDfsInputStream:
        return VReadDfsInputStream(self, path, blocks)
