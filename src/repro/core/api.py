"""libvread: the user-level vRead API (paper Table 1).

All functions charge the JNI crossing (HDFS is Java; libvread is C) plus
library work on the calling VM's vCPU, then converse with the per-VM daemon
over the shared-ring channel.  ``vread_open`` returns ``None`` when no
descriptor can be obtained (unknown datanode, block not yet visible through
the mount, ...) — the HDFS integration then falls back to the original
``read_buffer`` path, exactly as in Algorithms 1 and 2.
"""

from __future__ import annotations

from typing import Optional

from repro.core.channel import ChannelRequest, OpenResult, VReadChannel
from repro.core.daemon import ReadHeader
from repro.core.descriptors import VfdHashTable, VReadDescriptor
from repro.metrics.accounting import CLIENT_APPLICATION, COPY_VREAD_BUFFER, OTHERS
from repro.storage.content import ByteSource, ConcatSource


class VReadError(Exception):
    """A vRead conversation failed after open (I/O error, protocol error)."""


class VReadLibrary:
    """libvread bound to one client VM and its channel."""

    def __init__(self, vm, channel: VReadChannel):
        self.vm = vm
        self.channel = channel
        #: block name -> descriptor (paper: "each obtained descriptor is
        #: stored in a hash table in the user-level library").
        self.vfd_hash = VfdHashTable()
        self.opens = 0
        self.reads = 0
        self.fallback_denials = 0

    # ---------------------------------------------------------------- helpers
    def _jni(self):
        yield from self.vm.vcpu.run(self.vm.costs.vread_jni_call_cycles,
                                    CLIENT_APPLICATION)

    # -------------------------------------------------------------- Table 1
    def vread_open(self, block_name: str, datanode_id: str):
        """Generator: open the block file on ``datanode_id``.

        Returns a :class:`VReadDescriptor` or ``None`` when vRead cannot
        serve this block (caller falls back to vanilla HDFS).
        """
        yield from self._jni()
        token = yield from self.channel.acquire()
        try:
            yield from self.channel.guest_send_request(
                ChannelRequest("open", block_name, datanode_id))
            result, _ = yield from self.channel.guest_wait_response()
        finally:
            self.channel.release(token)
        if not (isinstance(result, OpenResult) and result.ok):
            self.fallback_denials += 1
            return None
        descriptor = VReadDescriptor(block_name, datanode_id, result.size)
        self.vfd_hash.put(descriptor)
        self.opens += 1
        return descriptor

    def vread_read(self, descriptor: VReadDescriptor, offset: int,
                   length: int, copy_category: str = COPY_VREAD_BUFFER):
        """Generator: read up to ``length`` bytes at ``offset``.

        Returns a ByteSource (clamped at the block file's size).  Raises
        :class:`VReadError` on daemon-side failure.
        """
        if not descriptor.open:
            raise VReadError(f"descriptor {descriptor.vfd} is closed")
        yield from self._jni()
        length = max(0, min(length, descriptor.size - offset))
        token = yield from self.channel.acquire()
        try:
            yield from self.channel.guest_send_request(
                ChannelRequest("read", descriptor.block_name,
                               descriptor.datanode_id, offset, length))
            header, _ = yield from self.channel.guest_wait_response()
            if not (isinstance(header, ReadHeader) and header.ok):
                message = getattr(header, "message", "bad header")
                raise VReadError(f"vread_read failed: {message}")
            pieces = []
            received = 0
            while received < header.length:
                piece, nbytes = yield from self.channel.guest_wait_response(
                    copy_category=copy_category)
                pieces.append(piece)
                received += nbytes
        finally:
            self.channel.release(token)
        self.reads += 1
        descriptor.offset = offset + received
        return ConcatSource(pieces)

    def vread_seek(self, descriptor: VReadDescriptor, offset: int):
        """Generator: set the descriptor's file offset (library-local)."""
        if not descriptor.open:
            raise VReadError(f"descriptor {descriptor.vfd} is closed")
        if offset < 0:
            raise VReadError(f"negative seek offset {offset}")
        yield from self._jni()
        descriptor.offset = offset
        return offset

    def vread_close(self, descriptor: VReadDescriptor):
        """Generator: close the descriptor and drop it from the hash."""
        yield from self._jni()
        if not descriptor.open:
            return -1
        descriptor.open = False
        self.vfd_hash.remove(descriptor.block_name)
        return 0

    def vread_update(self, block_name: str, datanode_id: str):
        """Generator: tell the daemon to refresh the datanode's mount.

        Called by the HDFS write path after a block commit/delete/rename
        (paper Section 4); the namenode-notification path triggers the same
        refresh for other hosts.
        """
        yield from self._jni()
        token = yield from self.channel.acquire()
        try:
            yield from self.channel.guest_send_request(
                ChannelRequest("update", block_name, datanode_id))
            yield from self.channel.guest_wait_response()
        finally:
            self.channel.release(token)
        return 0

    def __repr__(self) -> str:
        return (f"<VReadLibrary {self.vm.name} vfds={len(self.vfd_hash)} "
                f"opens={self.opens} reads={self.reads}>")
