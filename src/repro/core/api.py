"""libvread: the user-level vRead API (paper Table 1).

All functions charge the JNI crossing (HDFS is Java; libvread is C) plus
library work on the calling VM's vCPU, then converse with the per-VM daemon
over the shared-ring channel.  ``vread_open`` returns ``None`` when no
descriptor can be obtained (unknown datanode, block not yet visible through
the mount, ...) — the HDFS integration then falls back to the original
``read_buffer`` path, exactly as in Algorithms 1 and 2.

Resilience (:mod:`repro.faults`): every conversation runs under a deadline
from a :class:`~repro.faults.retry.VReadClientPolicy`.  A timeout — daemon
crashed, ring stalled, remote path wedged — aborts the conversation
(stale-epoch responses are discarded by the channel) and flips the library
into *degraded* mode, where calls immediately signal fallback so the HDFS
integration uses the vanilla path at full speed.  Every
``reprobe_interval`` sim-seconds one call is allowed through as a probe; if
the daemon answers, the library recovers and vRead reads resume.
"""

from __future__ import annotations

from typing import Optional

from repro.core.channel import ChannelRequest, OpenResult, VReadChannel
from repro.core.daemon import ReadHeader
from repro.core.descriptors import VfdHashTable, VReadDescriptor
from repro.faults.retry import (DeadlineExceeded, VReadClientPolicy,
                                call_with_deadline)
from repro.metrics.accounting import CLIENT_APPLICATION, COPY_VREAD_BUFFER, OTHERS
from repro.storage.content import ByteSource, ConcatSource


class VReadError(Exception):
    """A vRead conversation failed after open (I/O error, protocol error)."""


class VReadLibrary:
    """libvread bound to one client VM and its channel."""

    def __init__(self, vm, channel: VReadChannel,
                 policy: Optional[VReadClientPolicy] = None,
                 counters=None):
        self.vm = vm
        self.channel = channel
        self.policy = policy or VReadClientPolicy()
        #: Optional FaultCounters sink, wired by the cluster builder.
        self.counters = counters
        #: block name -> descriptor (paper: "each obtained descriptor is
        #: stored in a hash table in the user-level library").
        self.vfd_hash = VfdHashTable()
        self.opens = 0
        self.reads = 0
        self.fallback_denials = 0
        #: Sim time degradation began; ``None`` while healthy.
        self.degraded_since: Optional[float] = None
        self._last_probe = 0.0
        self.timeouts = 0
        self.reprobes = 0
        self.recoveries = 0

    # ---------------------------------------------------------------- helpers
    def _jni(self):
        yield from self.vm.vcpu.run(self.vm.costs.vread_jni_call_cycles,
                                    CLIENT_APPLICATION)

    def _count(self, name: str, **fields) -> None:
        if self.counters is not None:
            self.counters.count(name, vm=self.vm.name, **fields)

    @property
    def degraded(self) -> bool:
        return self.degraded_since is not None

    def _fast_fail(self) -> bool:
        """True when degraded and it is not yet time to re-probe.

        When the re-probe interval has elapsed, the *current* call becomes
        the probe: it is let through to the (possibly restarted) daemon.
        """
        if self.degraded_since is None:
            return False
        now = self.vm.sim.now
        if now - self._last_probe >= self.policy.reprobe_interval:
            self._last_probe = now
            self.reprobes += 1
            self._count("recovery.daemon-reprobe")
            return False
        return True

    def _enter_degraded(self, cause: str) -> None:
        self.timeouts += 1
        now = self.vm.sim.now
        if self.degraded_since is None:
            self.degraded_since = now
            self._count("recovery.vread-degraded", cause=cause)
        self._last_probe = now
        # Late responses of the abandoned conversation must not leak into
        # the next one.
        self.channel.abort_conversation()

    def _recovered(self) -> None:
        if self.degraded_since is not None:
            self.degraded_since = None
            self.recoveries += 1
            self._count("recovery.daemon-recovered")

    # ----------------------------------------------------- conversation bodies
    def _open_conversation(self, block_name: str, datanode_id: str):
        with self.channel.conversation() as token:
            yield token
            yield from self.channel.guest_send_request(
                ChannelRequest("open", block_name, datanode_id))
            result, _ = yield from self.channel.guest_wait_response()
        return result

    def _read_conversation(self, descriptor: VReadDescriptor, offset: int,
                           length: int, copy_category: str):
        with self.channel.conversation() as token:
            yield token
            yield from self.channel.guest_send_request(
                ChannelRequest("read", descriptor.block_name,
                               descriptor.datanode_id, offset, length))
            header, _ = yield from self.channel.guest_wait_response()
            if not (isinstance(header, ReadHeader) and header.ok):
                message = getattr(header, "message", "bad header")
                raise VReadError(f"vread_read failed: {message}")
            pieces = []
            received = 0
            while received < header.length:
                piece, nbytes = yield from self.channel.guest_wait_response(
                    copy_category=copy_category)
                pieces.append(piece)
                received += nbytes
        return pieces, received

    def _update_conversation(self, block_name: str, datanode_id: str):
        with self.channel.conversation() as token:
            yield token
            yield from self.channel.guest_send_request(
                ChannelRequest("update", block_name, datanode_id))
            yield from self.channel.guest_wait_response()

    # -------------------------------------------------------------- Table 1
    def vread_open(self, block_name: str, datanode_id: str):
        """Generator: open the block file on ``datanode_id``.

        Returns a :class:`VReadDescriptor` or ``None`` when vRead cannot
        serve this block — daemon denial, timeout, or degraded mode — and
        the caller falls back to vanilla HDFS.
        """
        yield from self._jni()
        if self._fast_fail():
            self.fallback_denials += 1
            return None
        try:
            result = yield from call_with_deadline(
                self.vm.sim,
                self._open_conversation(block_name, datanode_id),
                self.policy.open_timeout)
        except DeadlineExceeded:
            self._enter_degraded("open-timeout")
            self.fallback_denials += 1
            return None
        self._recovered()
        if not (isinstance(result, OpenResult) and result.ok):
            self.fallback_denials += 1
            return None
        descriptor = VReadDescriptor(block_name, datanode_id, result.size)
        self.vfd_hash.put(descriptor)
        self.opens += 1
        return descriptor

    def vread_read(self, descriptor: VReadDescriptor, offset: int,
                   length: int, copy_category: str = COPY_VREAD_BUFFER):
        """Generator: read up to ``length`` bytes at ``offset``.

        Returns a ByteSource (clamped at the block file's size).  Raises
        :class:`VReadError` on daemon-side failure or timeout — the HDFS
        integration then falls back to the vanilla path for this read.
        """
        if not descriptor.open:
            raise VReadError(f"descriptor {descriptor.vfd} is closed")
        yield from self._jni()
        if self._fast_fail():
            raise VReadError("vRead degraded: daemon not answering")
        length = max(0, min(length, descriptor.size - offset))
        try:
            pieces, received = yield from call_with_deadline(
                self.vm.sim,
                self._read_conversation(descriptor, offset, length,
                                        copy_category),
                self.policy.read_timeout)
        except DeadlineExceeded:
            self._enter_degraded("read-timeout")
            raise VReadError(
                f"vread_read timed out after {self.policy.read_timeout}s")
        self._recovered()
        self.reads += 1
        descriptor.offset = offset + received
        if len(pieces) == 1:
            # Single-chunk responses (the common case for reads up to
            # chunk_bytes) skip the concat wrapper entirely.
            return pieces[0]
        return ConcatSource(pieces)

    def vread_seek(self, descriptor: VReadDescriptor, offset: int):
        """Generator: set the descriptor's file offset (library-local)."""
        if not descriptor.open:
            raise VReadError(f"descriptor {descriptor.vfd} is closed")
        if offset < 0:
            raise VReadError(f"negative seek offset {offset}")
        yield from self._jni()
        descriptor.offset = offset
        return offset

    def vread_close(self, descriptor: VReadDescriptor):
        """Generator: close the descriptor and drop it from the hash."""
        yield from self._jni()
        if not descriptor.open:
            return -1
        descriptor.open = False
        self.vfd_hash.remove(descriptor.block_name)
        return 0

    def vread_update(self, block_name: str, datanode_id: str):
        """Generator: tell the daemon to refresh the datanode's mount.

        Called by the HDFS write path after a block commit/delete/rename
        (paper Section 4); the namenode-notification path triggers the same
        refresh for other hosts.  Returns -1 (without blocking the writer)
        when the daemon is unresponsive.
        """
        yield from self._jni()
        if self._fast_fail():
            return -1
        try:
            yield from call_with_deadline(
                self.vm.sim,
                self._update_conversation(block_name, datanode_id),
                self.policy.open_timeout)
        except DeadlineExceeded:
            self._enter_degraded("update-timeout")
            return -1
        self._recovered()
        return 0

    def __repr__(self) -> str:
        state = "degraded" if self.degraded else "healthy"
        return (f"<VReadLibrary {self.vm.name} {state} "
                f"vfds={len(self.vfd_hash)} opens={self.opens} "
                f"reads={self.reads}>")
