"""The vRead daemons: per-host service + per-VM daemon.

:class:`VReadHostService` (one per physical host) owns what the paper calls
the *vRead hash* — the table mapping HDFS datanode ids to the corresponding
virtual-disk information: a loop-mounted local image, or the peer host
holding it.  It performs the actual block-file reads through the mount
(paying loop-device + host-FS costs, hitting the host page cache, faulting
from the SSD) and serves remote requests arriving over RDMA/TCP.

:class:`VReadDaemon` (one per client VM, as in the paper) drains that VM's
shared-ring channel: open/read/update requests from libvread, answered with
data copied into the ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.channel import ChannelRequest, OpenResult, VReadChannel
from repro.core.remote import RemoteRequest, RemoteResponse
from repro.faults.retry import DeadlineExceeded
from repro.metrics.accounting import LOOP_DEVICE, OTHERS
from repro.net.rdma import RdmaError
from repro.sim import Interrupt
from repro.storage.content import SliceSource
from repro.storage.device import DiskError
from repro.storage.filesystem import FsError, InodeRangeSource
from repro.storage.image import DiskImage


@dataclass
class ReadHeader:
    """First response item of a 'read' conversation."""
    ok: bool
    length: int = 0
    message: str = ""


class _LocalEntry:
    __slots__ = ("image",)

    def __init__(self, image: DiskImage):
        self.image = image


class _RemoteEntry:
    __slots__ = ("peer",)

    def __init__(self, peer: "VReadHostService"):
        self.peer = peer


class VReadHostService:
    """Per-host vRead machinery: mounts, datanode table, remote serving."""

    def __init__(self, host, lan, data_dir: str = "/hadoop/dfs/data",
                 bypass_host_fs: bool = False):
        self.host = host
        self.lan = lan
        self.sim = host.sim
        self.costs = host.costs
        self.data_dir = data_dir
        #: Section 6 ablation: read the image directly, skipping the host FS
        #: (no mounts/refreshes, but no host page cache and extra address
        #: translation per read).
        self.bypass_host_fs = bypass_host_fs
        self.thread = host.thread("vread-hostd")
        self._table: Dict[str, Union[_LocalEntry, _RemoteEntry]] = {}
        #: Set by the manager once a transport mode is chosen.
        self.transport = None
        self.refreshes = 0

    # ----------------------------------------------------------- registration
    def register_local_datanode(self, datanode_id: str,
                                image: DiskImage) -> None:
        """A datanode VM runs on this host: mount its image read-only."""
        self._table[datanode_id] = _LocalEntry(image)
        if not self.bypass_host_fs:
            self.host.mount_image(image)

    def register_remote_datanode(self, datanode_id: str,
                                 peer: "VReadHostService") -> None:
        """A datanode VM runs on ``peer``'s host: store the peer address."""
        self._table[datanode_id] = _RemoteEntry(peer)

    def unregister_datanode(self, datanode_id: str) -> None:
        """Datanode VM deleted or migrated away (paper Section 6)."""
        entry = self._table.pop(datanode_id, None)
        if isinstance(entry, _LocalEntry) and not self.bypass_host_fs:
            if entry.image.name in self.host.mounts:
                self.host.unmount_image(entry.image.name)

    def lookup(self, datanode_id: str):
        return self._table.get(datanode_id)

    def is_local(self, datanode_id: str) -> bool:
        return isinstance(self._table.get(datanode_id), _LocalEntry)

    # ----------------------------------------------------------------- refresh
    def schedule_refresh(self, datanode_id: str) -> None:
        """Refresh the mount's dentry cache (vRead_update trigger path)."""
        entry = self._table.get(datanode_id)
        if not isinstance(entry, _LocalEntry) or self.bypass_host_fs:
            return
        self.sim.process(self._refresh(entry.image))

    def _refresh(self, image: DiskImage):
        yield from self.thread.run(self.costs.mount_refresh_cycles, OTHERS)
        mount = self.host.mounts.get(image.name)
        if mount is not None:
            mount.refresh()
            self.refreshes += 1

    # -------------------------------------------------------------- local I/O
    def open_local(self, datanode_id: str, block_name: str, thread=None):
        """Generator: stat a block file through the mount.

        Returns ``(ok, size)``.  A block committed after the last refresh is
        invisible (``ok=False``) — the caller falls back to vanilla HDFS.
        """
        thread = thread or self.thread
        entry = self._table.get(datanode_id)
        if not isinstance(entry, _LocalEntry):
            return False, 0
        yield from thread.run(self.costs.loop_device_request_cycles,
                              LOOP_DEVICE)
        path = f"{self.data_dir}/{block_name}"
        if self.bypass_host_fs:
            yield from thread.run(self.costs.address_translation_cycles,
                                  LOOP_DEVICE)
            try:
                inode = entry.image.guest_fs.lookup(path)
            except FsError:
                return False, 0
            return True, inode.size
        mount = self.host.mounts[entry.image.name]
        if not mount.exists(path):
            return False, 0
        return True, mount.size(path)

    def read_local(self, datanode_id: str, block_name: str, offset: int,
                   length: int, thread=None):
        """Generator: read block bytes through the mount (or bypass mode).

        Returns ``(ok, payload, message)`` where payload is a lazy
        ByteSource.  Pays loop-device request cycles, host-page-cache
        consultation, and SSD time for missing pages.  The copy *out* of the
        page cache is paid by the caller when it copies into the ring.
        """
        thread = thread or self.thread
        entry = self._table.get(datanode_id)
        if not isinstance(entry, _LocalEntry):
            return False, None, f"datanode {datanode_id!r} is not local"
        path = f"{self.data_dir}/{block_name}"
        yield from thread.run(self.costs.loop_device_request_cycles,
                              LOOP_DEVICE)
        if self.bypass_host_fs:
            # Manual guest-logical -> host-physical translation, no cache.
            yield from thread.run(self.costs.address_translation_cycles,
                                  LOOP_DEVICE)
            try:
                inode = entry.image.guest_fs.lookup(path)
            except FsError as exc:
                return False, None, str(exc)
            try:
                yield from self.host.storage.read(length, offset=offset)
            except DiskError as exc:
                return False, None, str(exc)
            return True, InodeRangeSource(inode, offset, length), ""
        mount = self.host.mounts[entry.image.name]
        try:
            inode = mount.lookup(path)
        except FsError as exc:
            return False, None, str(exc)
        key = entry.image.cache_key(inode)
        missing = self.host.page_cache.missing_bytes(key, offset, length)
        if missing > 0:
            yield from thread.run(
                self.costs.host_fs_read_cycles_per_byte * length,
                LOOP_DEVICE)
            try:
                yield from self.host.storage.read(missing, offset=offset)
            except DiskError as exc:
                return False, None, str(exc)
            self.host.page_cache.insert(key, offset, length)
        try:
            payload = InodeRangeSource(inode, offset, length)
        except FsError as exc:
            return False, None, str(exc)
        return True, payload, ""

    # ------------------------------------------------------------- remote side
    def handle_remote(self, request: RemoteRequest):
        """Generator: serve a request from a peer host's daemon."""
        if request.kind == "open":
            ok, size = yield from self.open_local(
                request.datanode_id, request.block_name)
            return RemoteResponse(ok=ok, size=size)
        if request.kind == "read":
            ok, payload, message = yield from self.read_local(
                request.datanode_id, request.block_name,
                request.offset, request.length)
            if not ok:
                return RemoteResponse(ok=False, message=message)
            return RemoteResponse(ok=True, payload=payload,
                                  nbytes=payload.size)
        return RemoteResponse(ok=False,
                              message=f"bad remote request {request.kind!r}")

    def __repr__(self) -> str:
        return (f"<VReadHostService {self.host.name} "
                f"datanodes={sorted(self._table)}>")


class VReadDaemon:
    """The per-VM daemon draining one client VM's shared-ring channel.

    Supports deterministic crash/restart (fault injection): :meth:`crash`
    interrupts the serve loop mid-whatever-it-was-doing; :meth:`restart`
    resets the channel's shared state (fresh SHM mapping) and spawns a new
    serve loop.  While crashed, guest conversations simply hang until the
    library's timeouts fire and it degrades to the vanilla path.
    """

    def __init__(self, vm, channel: VReadChannel,
                 service: VReadHostService):
        self.vm = vm
        self.channel = channel
        self.service = service
        self.thread = service.host.thread(f"vread-daemon.{vm.name}")
        self.requests_served = 0
        self.crashed = False
        self.crashes = 0
        self.restarts = 0
        self._serve_proc = vm.sim.process(self._serve())

    # ------------------------------------------------------------ crash/restart
    def crash(self) -> None:
        """Kill the serve loop (vRead daemon process dies)."""
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        if self._serve_proc is not None and self._serve_proc.is_alive:
            self._serve_proc.interrupt("daemon crash")

    def restart(self) -> None:
        """Start a fresh daemon process over a re-created channel."""
        if not self.crashed:
            return
        self.crashed = False
        self.restarts += 1
        self.channel.reset()
        self._serve_proc = self.vm.sim.process(self._serve())

    def _serve(self):
        while True:
            try:
                request = yield from self.channel.daemon_wait_request(
                    self.thread)
                self.requests_served += 1
                if request.kind == "open":
                    yield from self._handle_open(request)
                elif request.kind == "read":
                    yield from self._handle_read(request)
                elif request.kind == "update":
                    self.service.schedule_refresh(request.datanode_id)
                    yield from self.channel.daemon_send_response(
                        self.thread, OpenResult(ok=True), 0)
                else:
                    yield from self.channel.daemon_send_response(
                        self.thread,
                        OpenResult(ok=False, message="bad request"), 0)
            except Interrupt:
                # Injected crash: die where we stood.
                return

    # ------------------------------------------------------------------ open
    def _handle_open(self, request: ChannelRequest):
        entry = self.service.lookup(request.datanode_id)
        if entry is None:
            result = OpenResult(ok=False, message="unknown datanode")
        elif self.service.is_local(request.datanode_id):
            ok, size = yield from self.service.open_local(
                request.datanode_id, request.block_name, self.thread)
            result = OpenResult(ok=ok, size=size)
        else:
            try:
                response = yield from self.service.transport.request(
                    entry.peer, RemoteRequest("open", request.datanode_id,
                                              request.block_name))
            except (RdmaError, DeadlineExceeded) as exc:
                response = RemoteResponse(ok=False, message=str(exc))
            result = OpenResult(ok=response.ok, size=response.size,
                                message=response.message)
        yield from self.channel.daemon_send_response(self.thread, result, 0)

    # ------------------------------------------------------------------ read
    def _handle_read(self, request: ChannelRequest):
        entry = self.service.lookup(request.datanode_id)
        if entry is None:
            header = ReadHeader(ok=False, message="unknown datanode")
            yield from self.channel.daemon_send_response(self.thread, header, 0)
            return
        if self.service.is_local(request.datanode_id):
            ok, payload, message = yield from self.service.read_local(
                request.datanode_id, request.block_name,
                request.offset, request.length, self.thread)
        else:
            try:
                response = yield from self.service.transport.request(
                    entry.peer, RemoteRequest("read", request.datanode_id,
                                              request.block_name,
                                              request.offset, request.length))
            except (RdmaError, DeadlineExceeded) as exc:
                response = RemoteResponse(ok=False, message=str(exc))
            ok, payload, message = response.ok, response.payload, response.message
        if not ok:
            yield from self.channel.daemon_send_response(
                self.thread, ReadHeader(ok=False, message=message), 0)
            return
        yield from self.channel.daemon_send_response(
            self.thread, ReadHeader(ok=True, length=payload.size), 0)
        # Stream the data into the ring chunk by chunk.
        sent = 0
        while sent < payload.size:
            chunk = min(self.channel.chunk_bytes, payload.size - sent)
            piece = SliceSource(payload, sent, chunk)
            yield from self.channel.daemon_send_response(
                self.thread, piece, chunk)
            sent += chunk

    def __repr__(self) -> str:
        return f"<VReadDaemon for {self.vm.name} served={self.requests_served}>"
