"""vRead deployment: wire services, daemons, channels onto a cluster.

The manager mirrors what installing vRead on a KVM cluster involves:

* one :class:`~repro.core.daemon.VReadHostService` per physical host, with
  every datanode VM's disk image either loop-mounted (local) or recorded as
  a peer-host entry (remote) in the hash table;
* a remote transport ('rdma' preferred, 'tcp' fallback) between services;
* per client VM: an ivshmem channel, a guest driver + libvread, and the
  per-VM daemon;
* a namenode-observer subscription that refreshes the owning host's mount
  whenever a block is committed or deleted (the vRead_update trigger path).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.api import VReadLibrary
from repro.core.channel import VReadChannel
from repro.core.daemon import VReadDaemon, VReadHostService
from repro.core.integration import VReadDfsClient
from repro.core.remote import RdmaTransport, TcpTransport
from repro.hdfs.namenode import Namenode
from repro.net.lan import Lan
from repro.net.rdma import RdmaLink
from repro.net.tcp import VmNetwork
from repro.virt.vm import VirtualMachine


class VReadManager:
    """Installs and operates vRead across the cluster."""

    def __init__(self, namenode: Namenode, network: VmNetwork, lan: Lan,
                 rdma_link: Optional[RdmaLink] = None,
                 transport: str = "rdma",
                 bypass_host_fs: bool = False,
                 ring_slots: int = 1024, ring_slot_bytes: int = 4096,
                 channel_chunk_bytes: int = 1 << 20,
                 counters=None, client_policy=None, retry_policy=None,
                 retry_rng=None):
        if transport not in ("rdma", "tcp"):
            raise ValueError(f"transport must be 'rdma' or 'tcp': {transport}")
        if transport == "rdma" and rdma_link is None:
            raise ValueError("rdma transport needs an RdmaLink")
        self.namenode = namenode
        self.network = network
        self.lan = lan
        self.rdma_link = rdma_link
        self.transport_mode = transport
        self.bypass_host_fs = bypass_host_fs
        #: Ring geometry (paper default: 1024 x 4 KiB slots) and response
        #: streaming chunk — exposed for the ablation experiments.
        self.ring_slots = ring_slots
        self.ring_slot_bytes = ring_slot_bytes
        self.channel_chunk_bytes = channel_chunk_bytes
        #: Fault/recovery accounting + resilience knobs, threaded into
        #: every library, client and transport this manager creates.
        self.counters = counters
        self.client_policy = client_policy
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        self._services: Dict[str, VReadHostService] = {}
        self._daemons: Dict[str, VReadDaemon] = {}
        self._libraries: Dict[str, VReadLibrary] = {}
        namenode.add_observer(self._on_namenode_event)
        self._register_datanodes()

    # ----------------------------------------------------------------- wiring
    def service_for(self, host) -> VReadHostService:
        service = self._services.get(host.name)
        if service is None:
            service = VReadHostService(
                host, self.lan, data_dir=self.namenode.config.data_dir,
                bypass_host_fs=self.bypass_host_fs)
            if self.transport_mode == "rdma":
                service.transport = RdmaTransport(service, self.rdma_link)
            else:
                service.transport = TcpTransport(service)
            service.transport.counters = self.counters
            self._services[host.name] = service
        return service

    def _register_datanodes(self) -> None:
        datanodes = [self.namenode.datanode(dn_id)
                     for dn_id in self.namenode.datanode_ids()]
        hosts = {dn.vm.host.name: dn.vm.host for dn in datanodes}
        for host in hosts.values():
            self.service_for(host)
        for datanode in datanodes:
            self.rebind_datanode(datanode)

    def rebind_datanode(self, datanode) -> None:
        """(Re)install table entries for one datanode on every service.

        Also the VM-migration hook (paper Section 6): call again after the
        datanode VM moves and each host's hash table is updated.
        """
        owner = self.service_for(datanode.vm.host)
        for service in self._services.values():
            service.unregister_datanode(datanode.datanode_id)
            if service is owner:
                service.register_local_datanode(datanode.datanode_id,
                                                datanode.vm.image)
            else:
                service.register_remote_datanode(datanode.datanode_id, owner)

    def ensure_coverage(self) -> None:
        """Fill hash-table gaps after membership changes.

        The membership controller calls this after a datanode joins or
        migrates: a service created lazily for a host that just gained its
        first datanode knows nothing about the *other* datanodes, so walk
        every (service, datanode) pair — in namenode registration order,
        deterministically — and add any missing entry.  Existing entries
        (and their mounts) are left untouched.
        """
        for dn_id in self.namenode.datanode_ids():
            datanode = self.namenode.datanode(dn_id)
            owner = self.service_for(datanode.vm.host)
            for service in self._services.values():
                if service.lookup(dn_id) is None:
                    if service is owner:
                        service.register_local_datanode(dn_id,
                                                        datanode.vm.image)
                    else:
                        service.register_remote_datanode(dn_id, owner)

    def detach_datanode(self, datanode_id: str) -> None:
        """Remove a datanode's entries (and local mount) on every host."""
        for service in self._services.values():
            service.unregister_datanode(datanode_id)

    def detach_client(self, vm: VirtualMachine) -> None:
        """Tear down ``vm``'s channel, daemon and library (VM removed)."""
        daemon = self._daemons.pop(vm.name, None)
        if daemon is not None:
            daemon.crash()
            daemon.service.host.scheduler.retire_thread(daemon.thread)
        self._libraries.pop(vm.name, None)

    def attach_client(self, vm: VirtualMachine) -> VReadDfsClient:
        """Give ``vm`` a vRead-enabled HDFS client (channel+daemon+library)."""
        if vm.name not in self._libraries:
            service = self.service_for(vm.host)
            channel = VReadChannel(vm.sim, vm, slots=self.ring_slots,
                                   slot_bytes=self.ring_slot_bytes,
                                   chunk_bytes=self.channel_chunk_bytes)
            self._daemons[vm.name] = VReadDaemon(vm, channel, service)
            self._libraries[vm.name] = VReadLibrary(
                vm, channel, policy=self.client_policy,
                counters=self.counters)
        return VReadDfsClient(vm, self.namenode, self.network,
                              self._libraries[vm.name],
                              retry_policy=self.retry_policy,
                              counters=self.counters,
                              retry_rng=self.retry_rng)

    def library_of(self, vm: VirtualMachine) -> VReadLibrary:
        return self._libraries[vm.name]

    def daemon_of(self, vm: VirtualMachine) -> VReadDaemon:
        return self._daemons[vm.name]

    # ----------------------------------------------------------- notifications
    def _on_namenode_event(self, event: str, block, datanode_id: str) -> None:
        """Block commit/delete: refresh the mount on the owning host."""
        if event not in ("commit", "delete"):
            return
        try:
            datanode = self.namenode.datanode(datanode_id)
        except Exception:
            return
        service = self._services.get(datanode.vm.host.name)
        if service is not None:
            service.schedule_refresh(datanode_id)

    def __repr__(self) -> str:
        return (f"<VReadManager transport={self.transport_mode} "
                f"services={sorted(self._services)} "
                f"clients={sorted(self._libraries)}>")
