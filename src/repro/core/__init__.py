"""vRead — the paper's contribution: hypervisor-level HDFS read shortcuts.

Components (paper Sections 3 and 4):

* :mod:`repro.core.api` — ``libvread``, the user-level library (Table 1):
  ``vread_open`` / ``vread_read`` / ``vread_seek`` / ``vread_close`` (+
  ``vread_update``), with the block-name -> descriptor hash table.
* :mod:`repro.core.channel` — the guest<->daemon shared-memory ring channel
  (ivshmem POSIX SHM + eventfd signalling, Section 3.3).
* :mod:`repro.core.daemon` — the per-VM vRead daemon and the per-host
  service: the datanodeID -> disk-image hash table, loop-mounted images,
  dentry refresh on namenode commit notifications (Section 3.2).
* :mod:`repro.core.remote` — remote reads between host daemons over RDMA
  (RoCE, active-push) or the TCP fallback (footnote 2 / Figure 8).
* :mod:`repro.core.integration` — the re-implemented ``DFSInputStream``
  read paths (Algorithms 1 and 2) with vanilla fallback.
* :mod:`repro.core.manager` — deployment: wires everything onto a cluster
  and hands out vRead-enabled HDFS clients.
"""

from repro.core.api import VReadLibrary
from repro.core.channel import VReadChannel
from repro.core.daemon import VReadDaemon, VReadHostService
from repro.core.descriptors import VReadDescriptor
from repro.core.integration import VReadDfsClient, VReadDfsInputStream
from repro.core.manager import VReadManager

__all__ = [
    "VReadChannel",
    "VReadDaemon",
    "VReadDescriptor",
    "VReadDfsClient",
    "VReadDfsInputStream",
    "VReadHostService",
    "VReadLibrary",
    "VReadManager",
]
