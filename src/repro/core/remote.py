"""Remote-read transports between host vRead services.

Two implementations of the same requester/responder protocol (paper
Section 3.2 "Reading from a Remote Datanode" and footnote 2):

* :class:`RdmaTransport` — the preferred path: verbs over RoCE, active-push
  from the datanode side, near-zero CPU per byte.
* :class:`TcpTransport` — the fallback: the daemons exchange data over
  user-space TCP sockets, paying host syscalls and per-byte copies in user
  space (category ``vRead-net``).  The paper measures this to be *more*
  expensive per byte than in-kernel vhost-net, and Figure 8 shows exactly
  that — our cost model preserves the asymmetry.

A requester holds one lazily-created conduit per peer and serializes its
outstanding requests on it (one in flight per host pair).

Resilience: every request carries a ``request_id`` and each roundtrip runs
under a deadline (:func:`~repro.faults.retry.call_with_deadline`).  A
response that arrives after its requester gave up is recognized by id and
discarded, so an abandoned roundtrip cannot poison the next one.  When the
RDMA link flaps, :class:`RdmaTransport` retries the request over an
internal TCP fallback conduit — the paper's footnote-2 degradation, now
exercised automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.faults.retry import DeadlineExceeded, call_with_deadline
from repro.metrics.accounting import VREAD_NET
from repro.net.lan import CROSS_RACK, host_distance
from repro.net.rdma import RdmaError
from repro.sim import Lock, Store
from repro.storage.device import DiskError
from repro.storage.filesystem import FsError

#: Default budget for one remote roundtrip (sim seconds).  Generous against
#: healthy-path latencies (~ms) but small enough that a dead link degrades
#: quickly.
DEFAULT_REQUEST_TIMEOUT = 1.0


@dataclass
class RemoteRequest:
    """Daemon -> remote daemon: open or read a block file."""
    kind: str            # 'open' | 'read'
    datanode_id: str
    block_name: str
    offset: int = 0
    length: int = 0
    request_id: int = 0


@dataclass
class RemoteResponse:
    """Remote daemon -> requester."""
    ok: bool
    payload: Any = None
    nbytes: int = 0
    size: int = 0        # block size, for 'open'
    message: str = ""
    request_id: int = 0


class BaseTransport:
    """Shared requester bookkeeping: per-peer conduit + serialization."""

    def __init__(self, service,
                 request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT):
        self.service = service
        self.request_timeout = request_timeout
        self._conduits: Dict[str, Tuple[Any, Lock]] = {}
        self._request_seq = 0
        self.stale_responses_dropped = 0
        #: Optional FaultCounters sink, wired by the cluster builder.
        self.counters = None

    def request(self, peer_service, request: RemoteRequest):
        """Generator: send ``request`` to ``peer_service``; returns response."""
        if request.request_id == 0:
            self._request_seq += 1
            request.request_id = self._request_seq
        conduit, lock = self._conduit_to(peer_service)
        with lock.acquire() as token:
            yield token
            response = yield from call_with_deadline(
                self.service.sim,
                self._roundtrip(conduit, peer_service, request),
                self.request_timeout)
        return response

    def _conduit_to(self, peer_service):
        key = peer_service.host.name
        entry = self._conduits.get(key)
        if entry is None:
            conduit = self._create_conduit(peer_service)
            entry = (conduit, Lock(self.service.sim))
            self._conduits[key] = entry
        return entry

    def _create_conduit(self, peer_service):
        raise NotImplementedError

    def _roundtrip(self, conduit, peer_service, request: RemoteRequest):
        raise NotImplementedError

    def _serve_one(self, peer_service, request: RemoteRequest):
        """Generator: run the peer's handler, mapping I/O faults to error
        responses instead of killing the respond loop."""
        try:
            response = yield from peer_service.handle_remote(request)
        except (DiskError, FsError) as exc:
            response = RemoteResponse(ok=False, message=str(exc))
        response.request_id = request.request_id
        return response


class RdmaTransport(BaseTransport):
    """Verbs over RoCE: requester posts the request, responder pushes data.

    When the link is down (flap), work requests fail with
    :class:`~repro.net.rdma.RdmaError` or time out; the transport then
    repeats the request over an internal :class:`TcpTransport` so remote
    reads keep flowing — slower and CPU-heavier, exactly the trade the
    paper describes for the no-RDMA case.

    The transport is picked per host pair from the fabric distance: RoCE
    needs the lossless (PFC) switching domain of the rack, so same-rack
    peers use verbs while cross-rack peers go straight to the TCP path —
    no flap/deadline detour, just an explicit routing decision counted as
    ``transport.cross-rack-tcp``.
    """

    def __init__(self, service, rdma_link):
        super().__init__(service)
        self.rdma_link = rdma_link
        self._tcp_fallback = TcpTransport(service)
        self.tcp_fallbacks = 0
        self.cross_rack_requests = 0

    def request(self, peer_service, request: RemoteRequest):
        if host_distance(self.service.host,
                         peer_service.host) >= CROSS_RACK:
            self.cross_rack_requests += 1
            if self.counters is not None:
                self.counters.count("transport.cross-rack-tcp",
                                    peer=peer_service.host.name)
            response = yield from self._tcp_fallback.request(peer_service,
                                                             request)
            return response
        try:
            response = yield from BaseTransport.request(self, peer_service,
                                                        request)
            return response
        except (RdmaError, DeadlineExceeded) as exc:
            self.tcp_fallbacks += 1
            if self.counters is not None:
                self.counters.count("recovery.rdma-tcp-fallback",
                                    peer=peer_service.host.name,
                                    cause=type(exc).__name__)
            response = yield from self._tcp_fallback.request(peer_service,
                                                             request)
            return response

    def _create_conduit(self, peer_service):
        local_qp, remote_qp = self.rdma_link.queue_pair(
            self.service.host, self.service.thread,
            peer_service.host, peer_service.thread)
        # Responder loop lives on the peer, serving this QP forever.
        peer_service.sim.process(self._respond_loop(peer_service, remote_qp))
        return local_qp

    def _roundtrip(self, local_qp, peer_service, request: RemoteRequest):
        # A previous roundtrip abandoned under deadline may have left an
        # orphaned waiter on the receive queue; drop it so it cannot swallow
        # this request's response.
        local_qp.prune_cancelled()
        yield from local_qp.post_send(request, size=96)
        while True:
            response = yield from local_qp.poll_recv()
            if response.request_id == request.request_id:
                return response
            self.stale_responses_dropped += 1

    def _respond_loop(self, peer_service, qp):
        while True:
            request = yield from qp.poll_recv()
            response = yield from self._serve_one(peer_service, request)
            # Active push: the datanode-side daemon writes the data straight
            # into the requester host's registered memory region.
            try:
                yield from qp.post_send(response,
                                        size=max(96, response.nbytes))
            except RdmaError:
                # Link flapped under the reply; the requester's deadline
                # (and TCP fallback) takes it from here.
                continue


class TcpTransport(BaseTransport):
    """User-space TCP between daemons (vRead-net): CPU-heavy fallback."""

    def _create_conduit(self, peer_service):
        conduit = _TcpConduit(self.service, peer_service)
        peer_service.sim.process(self._respond_loop(peer_service, conduit))
        return conduit

    def _roundtrip(self, conduit, peer_service, request: RemoteRequest):
        conduit.prune_cancelled()
        yield from conduit.send_from_local(request, 96)
        while True:
            response = yield from conduit.recv_at_local()
            if response.request_id == request.request_id:
                return response
            self.stale_responses_dropped += 1

    def _respond_loop(self, peer_service, conduit):
        while True:
            request = yield from conduit.recv_at_peer()
            response = yield from self._serve_one(peer_service, request)
            yield from conduit.send_from_peer(response,
                                              max(96, response.nbytes))


class _TcpConduit:
    """A host-daemon-to-host-daemon TCP socket pair."""

    def __init__(self, local_service, peer_service):
        self.local = local_service
        self.peer = peer_service
        sim = local_service.sim
        self._to_peer = Store(sim, capacity=8)
        self._to_local = Store(sim, capacity=8)

    def prune_cancelled(self) -> int:
        """Drop waiters orphaned by a deadline-interrupted requester."""
        return (self._to_local.prune_cancelled()
                + self._to_peer.prune_cancelled())

    # The daemon is a user-space thread: every send/recv is a syscall plus
    # user<->kernel copies and the host network stack — all charged to the
    # daemon thread under 'vRead-net' (paper Fig 8).  The transmit side is
    # costlier per byte than the (GRO-assisted) receive side.
    def _tcp_cycles(self, service, nbytes: int, direction: str) -> float:
        costs = service.costs
        segments = costs.segments(nbytes)
        per_byte = (costs.vread_tcp_tx_cycles_per_byte if direction == "tx"
                    else costs.vread_tcp_rx_cycles_per_byte)
        return (costs.host_syscall_cycles
                + costs.host_net_segment_cycles * segments
                + per_byte * nbytes)

    def send_from_local(self, message, nbytes: int):
        yield from self.local.thread.run(
            self._tcp_cycles(self.local, nbytes, "tx"), VREAD_NET)
        yield from self.local.lan.transfer(self.local.host, self.peer.host,
                                           nbytes)
        yield self._to_peer.put((message, nbytes))

    def send_from_peer(self, message, nbytes: int):
        yield from self.peer.thread.run(
            self._tcp_cycles(self.peer, nbytes, "tx"), VREAD_NET)
        yield from self.peer.lan.transfer(self.peer.host, self.local.host,
                                          nbytes)
        yield self._to_local.put((message, nbytes))

    def recv_at_peer(self):
        message, nbytes = yield self._to_peer.get()
        yield from self.peer.thread.run(
            self._tcp_cycles(self.peer, nbytes, "rx"), VREAD_NET)
        return message

    def recv_at_local(self):
        message, nbytes = yield self._to_local.get()
        yield from self.local.thread.run(
            self._tcp_cycles(self.local, nbytes, "rx"), VREAD_NET)
        return message
