"""Remote-read transports between host vRead services.

Two implementations of the same requester/responder protocol (paper
Section 3.2 "Reading from a Remote Datanode" and footnote 2):

* :class:`RdmaTransport` — the preferred path: verbs over RoCE, active-push
  from the datanode side, near-zero CPU per byte.
* :class:`TcpTransport` — the fallback: the daemons exchange data over
  user-space TCP sockets, paying host syscalls and per-byte copies in user
  space (category ``vRead-net``).  The paper measures this to be *more*
  expensive per byte than in-kernel vhost-net, and Figure 8 shows exactly
  that — our cost model preserves the asymmetry.

A requester holds one lazily-created conduit per peer and serializes its
outstanding requests on it (one in flight per host pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.metrics.accounting import VREAD_NET
from repro.sim import Lock, Store


@dataclass
class RemoteRequest:
    """Daemon -> remote daemon: open or read a block file."""
    kind: str            # 'open' | 'read'
    datanode_id: str
    block_name: str
    offset: int = 0
    length: int = 0


@dataclass
class RemoteResponse:
    """Remote daemon -> requester."""
    ok: bool
    payload: Any = None
    nbytes: int = 0
    size: int = 0        # block size, for 'open'
    message: str = ""


class BaseTransport:
    """Shared requester bookkeeping: per-peer conduit + serialization."""

    def __init__(self, service):
        self.service = service
        self._conduits: Dict[str, Tuple[Any, Lock]] = {}

    def request(self, peer_service, request: RemoteRequest):
        """Generator: send ``request`` to ``peer_service``; returns response."""
        conduit, lock = self._conduit_to(peer_service)
        with lock.acquire() as token:
            yield token
            response = yield from self._roundtrip(conduit, peer_service,
                                                  request)
        return response

    def _conduit_to(self, peer_service):
        key = peer_service.host.name
        entry = self._conduits.get(key)
        if entry is None:
            conduit = self._create_conduit(peer_service)
            entry = (conduit, Lock(self.service.sim))
            self._conduits[key] = entry
        return entry

    def _create_conduit(self, peer_service):
        raise NotImplementedError

    def _roundtrip(self, conduit, peer_service, request: RemoteRequest):
        raise NotImplementedError


class RdmaTransport(BaseTransport):
    """Verbs over RoCE: requester posts the request, responder pushes data."""

    def __init__(self, service, rdma_link):
        super().__init__(service)
        self.rdma_link = rdma_link

    def _create_conduit(self, peer_service):
        local_qp, remote_qp = self.rdma_link.queue_pair(
            self.service.host, self.service.thread,
            peer_service.host, peer_service.thread)
        # Responder loop lives on the peer, serving this QP forever.
        peer_service.sim.process(self._respond_loop(peer_service, remote_qp))
        return local_qp

    def _roundtrip(self, local_qp, peer_service, request: RemoteRequest):
        yield from local_qp.post_send(request, size=96)
        response = yield from local_qp.poll_recv()
        return response

    def _respond_loop(self, peer_service, qp):
        while True:
            request = yield from qp.poll_recv()
            response = yield from peer_service.handle_remote(request)
            # Active push: the datanode-side daemon writes the data straight
            # into the requester host's registered memory region.
            yield from qp.post_send(response, size=max(96, response.nbytes))


class TcpTransport(BaseTransport):
    """User-space TCP between daemons (vRead-net): CPU-heavy fallback."""

    def _create_conduit(self, peer_service):
        conduit = _TcpConduit(self.service, peer_service)
        peer_service.sim.process(self._respond_loop(peer_service, conduit))
        return conduit

    def _roundtrip(self, conduit, peer_service, request: RemoteRequest):
        yield from conduit.send_from_local(request, 96)
        response = yield from conduit.recv_at_local()
        return response

    def _respond_loop(self, peer_service, conduit):
        while True:
            request = yield from conduit.recv_at_peer()
            response = yield from peer_service.handle_remote(request)
            yield from conduit.send_from_peer(response,
                                              max(96, response.nbytes))


class _TcpConduit:
    """A host-daemon-to-host-daemon TCP socket pair."""

    def __init__(self, local_service, peer_service):
        self.local = local_service
        self.peer = peer_service
        sim = local_service.sim
        self._to_peer = Store(sim, capacity=8)
        self._to_local = Store(sim, capacity=8)

    # The daemon is a user-space thread: every send/recv is a syscall plus
    # user<->kernel copies and the host network stack — all charged to the
    # daemon thread under 'vRead-net' (paper Fig 8).  The transmit side is
    # costlier per byte than the (GRO-assisted) receive side.
    def _tcp_cycles(self, service, nbytes: int, direction: str) -> float:
        costs = service.costs
        segments = costs.segments(nbytes)
        per_byte = (costs.vread_tcp_tx_cycles_per_byte if direction == "tx"
                    else costs.vread_tcp_rx_cycles_per_byte)
        return (costs.host_syscall_cycles
                + costs.host_net_segment_cycles * segments
                + per_byte * nbytes)

    def send_from_local(self, message, nbytes: int):
        yield from self.local.thread.run(
            self._tcp_cycles(self.local, nbytes, "tx"), VREAD_NET)
        yield from self.local.lan.transfer(self.local.host, self.peer.host,
                                           nbytes)
        yield self._to_peer.put((message, nbytes))

    def send_from_peer(self, message, nbytes: int):
        yield from self.peer.thread.run(
            self._tcp_cycles(self.peer, nbytes, "tx"), VREAD_NET)
        yield from self.peer.lan.transfer(self.peer.host, self.local.host,
                                          nbytes)
        yield self._to_local.put((message, nbytes))

    def recv_at_peer(self):
        message, nbytes = yield self._to_peer.get()
        yield from self.peer.thread.run(
            self._tcp_cycles(self.peer, nbytes, "rx"), VREAD_NET)
        return message

    def recv_at_local(self):
        message, nbytes = yield self._to_local.get()
        yield from self.local.thread.run(
            self._tcp_cycles(self.local, nbytes, "rx"), VREAD_NET)
        return message
