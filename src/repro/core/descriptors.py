"""vRead descriptors and the block-name hash table.

HDFS only understands block names, so ``libvread`` keeps the mapping from
block name to descriptor in a user-level hash table until ``vread_close``
(paper Section 3.1) — letting subsequent read/seek calls on the same block
file reuse the descriptor.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

_vfd_numbers = itertools.count(3)  # 0/1/2 taken, as tradition demands


class VReadDescriptor:
    """An open vRead file: one HDFS block on one datanode."""

    __slots__ = ("vfd", "block_name", "datanode_id", "size", "offset", "open")

    def __init__(self, block_name: str, datanode_id: str, size: int):
        self.vfd = next(_vfd_numbers)
        self.block_name = block_name
        self.datanode_id = datanode_id
        #: Size of the block file at open time.
        self.size = size
        #: Current file offset (moved by vread_seek / sequential reads).
        self.offset = 0
        self.open = True

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return (f"<VReadDescriptor #{self.vfd} {self.block_name}@"
                f"{self.datanode_id} size={self.size} {state}>")


class VfdHashTable:
    """block name -> descriptor, as kept by libvread."""

    def __init__(self) -> None:
        self._by_block: Dict[str, VReadDescriptor] = {}

    def get(self, block_name: str) -> Optional[VReadDescriptor]:
        return self._by_block.get(block_name)

    def put(self, descriptor: VReadDescriptor) -> None:
        self._by_block[descriptor.block_name] = descriptor

    def remove(self, block_name: str) -> Optional[VReadDescriptor]:
        return self._by_block.pop(block_name, None)

    def __len__(self) -> int:
        return len(self._by_block)

    def __contains__(self, block_name: str) -> bool:
        return block_name in self._by_block
