"""simlint framework: violations, the rule base class, and the registry.

A *rule* inspects one module's AST and yields :class:`Violation` objects.
Rules register themselves with :func:`register` so the CLI and the test
suite discover them by name; per-line ``# simlint: disable=<rule>`` pragmas
(see :mod:`repro.analysis.pragmas`) suppress individual findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule tripped at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: str
    source: str
    tree: ast.Module
    #: local alias -> dotted qualified name (built by repro.analysis.imports).
    aliases: Dict[str, str] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a Name/Attribute chain, if importable.

        ``time.time`` resolves to ``"time.time"``; ``dt.now`` resolves to
        ``"datetime.datetime.now"`` when ``dt`` aliases that class; a chain
        rooted in a local variable resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`name`/:attr:`description` and implement
    :meth:`check`, yielding violations.  Use :meth:`violation` to stamp
    findings with the rule's name and the node's location.
    """

    name: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.path,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         rule=self.name, message=message)


#: name -> rule class, populated by the @register decorator.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry (name -> class), sorted by name."""
    return dict(sorted(_REGISTRY.items()))


def create_rules(select: Optional[Sequence[str]] = None,
                 disable: Iterable[str] = ()) -> List[Rule]:
    """Instantiate registered rules, honouring ``select``/``disable`` lists."""
    disabled = set(disable)
    unknown = (set(select or ()) | disabled) - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    names = list(select) if select else sorted(_REGISTRY)
    return [_REGISTRY[name]() for name in names if name not in disabled]
