"""simlint framework: violations, the rule base class, and the registry.

A *rule* inspects one module's AST and yields :class:`Violation` objects.
Rules register themselves with :func:`register` so the CLI and the test
suite discover them by name; per-line ``# simlint: disable=<rule>`` pragmas
(see :mod:`repro.analysis.pragmas`) suppress individual findings.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule tripped at a specific source location.

    Whole-program findings additionally carry a ``chain``: the call path
    from the simulation entry point down to the offending call, as
    ``(symbol, path, line)`` hops.  Per-module findings leave it empty.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    chain: Tuple[Tuple[str, str, int], ...] = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.chain:
            hops = "\n".join(f"    {symbol} ({path}:{line})"
                             for symbol, path, line in self.chain)
            text += "\n" + hops
        return text

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Line numbers are deliberately excluded so unrelated edits above a
        finding do not churn the baseline; chained findings key on the
        symbols along the path, per-module findings on the message text.
        """
        anchor = ("->".join(symbol for symbol, _, _ in self.chain)
                  if self.chain else self.message)
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{anchor}".encode("utf-8")).hexdigest()
        return digest[:20]

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message,
                "fingerprint": self.fingerprint(),
                "chain": [[symbol, path, line]
                          for symbol, path, line in self.chain]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Violation":
        return cls(path=str(data["path"]), line=int(data["line"]),
                   col=int(data["col"]), rule=str(data["rule"]),
                   message=str(data["message"]),
                   chain=tuple((str(s), str(p), int(l))
                               for s, p, l in data.get("chain", ())))


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: str
    source: str
    tree: ast.Module
    #: local alias -> dotted qualified name (built by repro.analysis.imports).
    aliases: Dict[str, str] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a Name/Attribute chain, if importable.

        ``time.time`` resolves to ``"time.time"``; ``dt.now`` resolves to
        ``"datetime.datetime.now"`` when ``dt`` aliases that class; a chain
        rooted in a local variable resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`name`/:attr:`description` and implement
    :meth:`check`, yielding violations.  Use :meth:`violation` to stamp
    findings with the rule's name and the node's location.
    """

    name: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.path,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         rule=self.name, message=message)


#: name -> rule class, populated by the @register decorator.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry (name -> class), sorted by name."""
    return dict(sorted(_REGISTRY.items()))


def create_rules(select: Optional[Sequence[str]] = None,
                 disable: Iterable[str] = ()) -> List[Rule]:
    """Instantiate registered rules, honouring ``select``/``disable`` lists."""
    disabled = set(disable)
    unknown = (set(select or ()) | disabled) - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    names = list(select) if select else sorted(_REGISTRY)
    return [_REGISTRY[name]() for name in names if name not in disabled]
