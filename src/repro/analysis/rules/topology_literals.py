"""Rule ``no-topology-literals``: ban hard-coded host/VM name strings.

Cluster layout is declarative (:mod:`repro.cluster.topology`); code that
bakes in ``"host1"`` or ``"datanode2"`` silently breaks on any other
topology — exactly the coupling the fault-targeting bug class came from.
Targets should be resolved through the topology (host specs, datanode
ids, ``cluster.host_named(...)``) instead.  The topology presets
themselves are the one legitimate place such names exist, so the module
is allowlisted by default; tests may pin concrete layouts freely (the
codebase gate only lints ``src/``).
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatch
from typing import Iterator, Sequence, Set

from repro.analysis.core import LintContext, Rule, Violation, register

#: Literals that name a concrete host or datanode VM of some layout.
TOPOLOGY_NAME = re.compile(r"^(host|datanode)\d+$")

#: Paths where layout names are the point, not a coupling bug.
DEFAULT_ALLOW = ("*/cluster/topology.py",)


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of the Constant nodes that are module/class/function docstrings."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        body = node.body
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            out.add(id(body[0].value))
    return out


@register
class NoTopologyLiteralsRule(Rule):
    name = "no-topology-literals"
    description = ("bans literal \"host<N>\"/\"datanode<N>\" strings "
                   "outside the topology presets; resolve targets from "
                   "the cluster topology instead")

    def __init__(self, allow: Sequence[str] = DEFAULT_ALLOW):
        #: Glob patterns of file paths exempt from this rule.
        self.allow = tuple(allow)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if any(fnmatch(ctx.path, pattern) for pattern in self.allow):
            return
        docstrings = _docstring_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and TOPOLOGY_NAME.match(node.value)
                    and id(node) not in docstrings):
                yield self.violation(
                    ctx, node,
                    f"hard-coded topology name {node.value!r} couples this "
                    f"code to one cluster layout; resolve the target from "
                    f"the topology (datanode ids, cluster.host_named, "
                    f"TopologySpec queries) or declare it in a "
                    f"cluster/topology.py preset")
