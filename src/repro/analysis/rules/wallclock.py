"""Rule ``no-wallclock``: ban wall-clock reads inside the simulation.

Simulated time comes only from ``Simulator.now``; any call that reads the
host's clock (``time.time``, ``datetime.now``, ...) or blocks the host
(``time.sleep``) makes runs irreproducible and corrupts the paper's
CPU/latency comparisons.  Code that legitimately measures host elapsed
time (e.g. the experiment runner's "wall time" report) is exempted either
with a per-line pragma or by listing its path in the rule's allowlist.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, Sequence

from repro.analysis.core import LintContext, Rule, Violation, register

#: Qualified names whose *call* reads the host clock or blocks the host.
BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register
class NoWallclockRule(Rule):
    name = "no-wallclock"
    description = ("bans wall-clock/host-time calls (time.time, "
                   "datetime.now, time.sleep, ...); simulation time must "
                   "come from Simulator.now")

    def __init__(self, allow: Sequence[str] = ()):
        #: Glob patterns of file paths exempt from this rule.
        self.allow = tuple(allow)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if any(fnmatch(ctx.path, pattern) for pattern in self.allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve(node.func)
            if qualname in BANNED_CALLS:
                yield self.violation(
                    ctx, node,
                    f"call to {qualname}() reads the host clock; use "
                    f"Simulator.now / sim.timeout() for simulated time "
                    f"(or annotate a legitimate host-side measurement "
                    f"with '# simlint: disable={self.name}')")
