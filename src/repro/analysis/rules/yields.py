"""Rule ``yield-discipline``: sim processes must yield Events, not values.

The kernel drives process generators by yielding
:class:`~repro.sim.events.Event` objects; yielding a bare value is always
a bug (the kernel raises at runtime, but only on the execution path that
reaches the yield).  Static typing cannot see through the generator
protocol, so this rule flags yields that *cannot* be events:

* a bare ``yield`` (yields ``None``);
* literals/constants (``yield 5``, ``yield "x"``, ``yield None``);
* container displays (``yield [a]``, ``yield (a, b)``, ``yield {...}``);
* comparisons and boolean operators (``yield a == b``, ``yield a and b``);
* f-strings.

``yield from`` is delegation and is never flagged; nor are yields of
names/calls/attributes, which may legitimately produce events.  Data
iterators that really do yield containers can opt out per line with
``# simlint: disable=yield-discipline``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import LintContext, Rule, Violation, register

_NON_EVENT_NODES = (ast.Constant, ast.List, ast.Tuple, ast.Set, ast.Dict,
                    ast.Compare, ast.BoolOp, ast.JoinedStr)


def _own_yields(func: ast.AST) -> Iterator[ast.Yield]:
    """Yield statements belonging to ``func`` itself (not nested defs)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class YieldDisciplineRule(Rule):
    name = "yield-discipline"
    description = ("generator processes must only yield Event-producing "
                   "expressions, never bare values or literals")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in _own_yields(func):
                if node.value is None:
                    yield self.violation(
                        ctx, node,
                        f"bare 'yield' in {func.name!r} yields None, which "
                        f"the sim kernel rejects; yield an Event")
                elif isinstance(node.value, _NON_EVENT_NODES):
                    kind = type(node.value).__name__.lower()
                    yield self.violation(
                        ctx, node,
                        f"{func.name!r} yields a {kind}, which can never be "
                        f"an Event; sim processes must yield events "
                        f"(sim.timeout(...), resource requests, ...)")
