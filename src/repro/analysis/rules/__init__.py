"""The built-in simlint rule set.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry.  New rules live in their own module
here, decorated with :func:`repro.analysis.core.register`.
"""

from repro.analysis.core import create_rules
from repro.analysis.rules.heap_use import NoDirectHeapqRule
from repro.analysis.rules.randomness import NoGlobalRandomRule
from repro.analysis.rules.resource_leak import ResourceLeakRule
from repro.analysis.rules.topology_literals import NoTopologyLiteralsRule
from repro.analysis.rules.wallclock import NoWallclockRule
from repro.analysis.rules.yields import YieldDisciplineRule

__all__ = [
    "NoDirectHeapqRule",
    "NoGlobalRandomRule",
    "NoTopologyLiteralsRule",
    "NoWallclockRule",
    "ResourceLeakRule",
    "YieldDisciplineRule",
    "default_rules",
]


def default_rules():
    """Fresh instances of every registered rule."""
    return create_rules()
