"""Rule ``resource-leak``: every granted slot must be released on all paths.

Targets the ``Resource.request()`` / ``Lock.acquire()`` idiom: a request
call (an attribute call named ``request``/``acquire`` with at most one
argument) must either

* be used as a context manager (``with res.request() as req: yield req``),
  which releases on every exit path, or
* have its grant bound to a local name whose ``.release(grant)`` (or
  ``.cancel(grant)``) is guaranteed by a ``finally`` block.

A grant that is bound but released outside any ``finally`` leaks whenever
the critical section raises; a grant that is yielded without being bound
can never be released at all.  Grants that escape the function (returned,
stored, or passed to other calls) are skipped — cross-function pairing,
as in ``VReadChannel.acquire``/``release``, cannot be checked locally.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.core import LintContext, Rule, Violation, register

_REQUEST_ATTRS = frozenset({"request", "acquire"})
_RELEASE_ATTRS = frozenset({"release", "cancel"})


def _parent_map(func: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _finally_nodes(func: ast.AST) -> Set[int]:
    """ids of every node nested inside some ``finally`` block of ``func``."""
    inside: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    inside.add(id(sub))
    return inside


def _is_request_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REQUEST_ATTRS
            and len(node.args) + len(node.keywords) <= 1)


def _release_target(node: ast.AST) -> Optional[str]:
    """Name released by a ``X.release(name)`` / ``X.cancel(name)`` call."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_ATTRS
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)):
        return node.args[0].id
    return None


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class ResourceLeakRule(Rule):
    name = "resource-leak"
    description = ("every Resource.request()/Lock.acquire() must be "
                   "released on all paths (try/finally) or used via 'with'")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for func in _functions(ctx.tree):
            yield from self._check_function(ctx, func)

    # ------------------------------------------------------------ internals
    def _check_function(self, ctx: LintContext,
                        func: ast.AST) -> Iterator[Violation]:
        parents = _parent_map(func)
        in_finally = _finally_nodes(func)
        for call in ast.walk(func):
            if not _is_request_call(call):
                continue
            parent = parents.get(call)
            if isinstance(parent, ast.withitem):
                continue  # `with res.request() as req:` releases on exit
            if isinstance(parent, ast.Return):
                continue  # grant escapes to the caller
            # Unwrap `yield`/`yield from` around the request call.
            holder = parent
            if isinstance(parent, (ast.Yield, ast.YieldFrom)):
                holder = parents.get(parent)
                if isinstance(holder, ast.Expr):
                    yield self.violation(
                        ctx, call,
                        f"slot from .{call.func.attr}() is granted but the "
                        f"grant is discarded, so it can never be released; "
                        f"bind it or use 'with'")
                    continue
            if (isinstance(holder, ast.Assign)
                    and len(holder.targets) == 1
                    and isinstance(holder.targets[0], ast.Name)):
                name = holder.targets[0].id
                yield from self._check_tracked(ctx, func, parents, in_finally,
                                               call, name)
            # Other shapes (call arguments, comprehensions, ...) carry the
            # grant somewhere this local analysis cannot follow; skip.

    def _check_tracked(self, ctx: LintContext, func: ast.AST,
                       parents: Dict[ast.AST, ast.AST],
                       in_finally: Set[int], call: ast.Call,
                       name: str) -> Iterator[Violation]:
        releases: List[ast.Call] = []
        escapes = False
        for node in ast.walk(func):
            if _release_target(node) == name:
                releases.append(node)
                continue
            if not (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(node)
            # Waiting on the grant (`yield name`) and releasing it are the
            # only uses that keep it local; anything else may smuggle the
            # grant out of the function, so give it the benefit of the doubt.
            if isinstance(parent, (ast.Yield, ast.YieldFrom)):
                continue
            if _release_target(parent) == name:
                continue
            escapes = True
        if escapes:
            return
        if not releases:
            yield self.violation(
                ctx, call,
                f"grant {name!r} from .{call.func.attr}() is never "
                f"released; release it in a 'finally' or use 'with'")
        elif not any(id(node) in in_finally for node in releases):
            yield self.violation(
                ctx, call,
                f"grant {name!r} from .{call.func.attr}() is released, but "
                f"not on all paths — move the release into a 'finally' "
                f"block or use 'with'")
