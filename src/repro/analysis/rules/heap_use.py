"""Rule ``no-direct-heapq``: keep priority-queue code inside the kernel.

The kernel owns event ordering: :mod:`repro.sim.kernel` picks the pending
structure (timer wheel vs the ``REPRO_LEGACY_HEAP`` reference) and carries
the ``(when, seq)`` tie-break that makes runs reproducible.  A component
that reaches for ``heapq`` directly builds a second, untoggleable ordering
path: it bypasses the wheel, the cancellation/compaction bookkeeping and
the kernel counters, and its tie-breaks are whatever tuple shape the
author happened to pick.  Schedule through ``Simulator`` instead, or — for
genuinely kernel-adjacent code such as the epoch replay's closed-form
round-robin — annotate the import with a pragma explaining why the
ordering is local arithmetic, not event scheduling.

Modules under ``sim/`` are exempt: they *are* the kernel.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, Sequence

from repro.analysis.core import LintContext, Rule, Violation, register


@register
class NoDirectHeapqRule(Rule):
    name = "no-direct-heapq"
    description = ("bans heapq use outside sim/ — event ordering belongs "
                   "to the kernel (timer wheel + (when, seq) tie-break); "
                   "schedule through Simulator instead")

    def __init__(self, allow: Sequence[str] = ("*/sim/*", "sim/*")):
        #: Glob patterns of file paths exempt from this rule.  The kernel
        #: package itself is exempt by default.
        self.allow = tuple(allow)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if any(fnmatch(ctx.path, pattern) for pattern in self.allow):
            return
        # Imports are the chokepoint: heapq cannot be called without one,
        # and flagging only the import lets a single pragma annotate one
        # audited local use instead of peppering every call site.
        hint = ("event ordering belongs to the kernel; schedule through "
                "Simulator (or annotate an audited kernel-adjacent use "
                f"with '# simlint: disable={self.name}' on the import)")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root == "heapq":
                        yield self.violation(
                            ctx, node, f"import of heapq: {hint}")
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module \
                        and node.module.split(".", 1)[0] == "heapq":
                    names = ", ".join(alias.name for alias in node.names)
                    yield self.violation(
                        ctx, node, f"import of heapq ({names}): {hint}")
