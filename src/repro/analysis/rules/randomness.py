"""Rule ``no-global-random``: ban unseeded / global randomness.

Determinism requires every draw to come from an explicitly seeded
generator — ideally a named :class:`repro.sim.rng.RandomStreams` stream.
Flagged:

* calls to module-level ``random`` functions (``random.random()``,
  ``random.randint()``, ``random.seed()``, ...), which draw from the
  interpreter-global generator shared by every caller;
* ``random.Random()`` constructed with no arguments (seeded from the OS);
* any use of ``random.SystemRandom`` (never reproducible).

Seeded construction (``random.Random(seed)``) is allowed: several
components derive stable per-instance seeds by hashing their names.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import LintContext, Rule, Violation, register


@register
class NoGlobalRandomRule(Rule):
    name = "no-global-random"
    description = ("bans the module-global random generator and unseeded "
                   "random.Random(); draw from repro.sim.rng.RandomStreams")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve(node.func)
            if qualname is None or not qualname.startswith("random."):
                continue
            if qualname == "random.Random":
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node,
                        "unseeded random.Random() is seeded from the OS; "
                        "pass an explicit seed or use "
                        "repro.sim.rng.RandomStreams")
            elif qualname.startswith("random.SystemRandom"):
                yield self.violation(
                    ctx, node,
                    "random.SystemRandom draws from the OS entropy pool "
                    "and can never be reproduced; use a seeded stream")
            else:
                function = qualname.split(".", 1)[1]
                yield self.violation(
                    ctx, node,
                    f"random.{function}() draws from the interpreter-global "
                    f"generator, coupling every caller's randomness; use a "
                    f"named repro.sim.rng.RandomStreams stream")
