"""Content-hash incremental cache for the whole-program analyzer.

A full-tree pass parses ~200 modules; in CI that cost recurs on every
run even though almost nothing changed.  The cache stores, per file, the
SHA-256 of its *content* together with the extracted
:class:`~repro.analysis.callgraph.ModuleSummary` and the per-module rule
findings.  On a later run a file whose hash (and the analyzer/rule
configuration fingerprint) matches is loaded from the cache without
re-parsing; cross-module linking and the interprocedural passes always
re-run, but they operate on summaries and are cheap.

The cache is a single JSON file (``--cache PATH``); a missing, corrupt,
or version-skewed cache silently degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import ModuleSummary
from repro.analysis.core import Violation

#: Bump to invalidate every existing cache (extraction format changes).
CACHE_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """File-backed ``path -> (hash, summary, violations)`` store."""

    def __init__(self, path: Optional[str],
                 config_fingerprint: str = ""):
        self.path = path
        self.config_fingerprint = config_fingerprint
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        if path and os.path.isfile(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                if (data.get("version") == CACHE_VERSION
                        and data.get("config") == config_fingerprint):
                    self._entries = data.get("files", {})
            except (OSError, ValueError):
                self._entries = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, path: str, source_hash: str
            ) -> Optional[Tuple[ModuleSummary, List[Violation]]]:
        """Cached summary + findings for ``path``, if content is unchanged."""
        entry = self._entries.get(path)
        if entry is None or entry.get("hash") != source_hash:
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
            violations = [Violation.from_dict(v)
                          for v in entry.get("violations", ())]
        except (KeyError, TypeError, ValueError):
            return None
        return summary, violations

    def put(self, path: str, source_hash: str, summary: ModuleSummary,
            violations: List[Violation]) -> None:
        self._entries[path] = {
            "hash": source_hash,
            "summary": summary.to_dict(),
            "violations": [v.to_dict() for v in violations],
        }
        self._dirty = True

    def prune(self, keep_paths) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        keep = set(keep_paths)
        stale = [p for p in self._entries if p not in keep]
        for p in stale:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if not self.path or not self._dirty:
            return
        payload = {"version": CACHE_VERSION,
                   "config": self.config_fingerprint,
                   "files": self._entries}
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = False
