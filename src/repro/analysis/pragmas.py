"""Per-line suppression pragmas.

Syntax (in a comment, anywhere on the offending line)::

    started = time.time()  # simlint: disable=no-wallclock
    x = foo()              # simlint: disable=no-wallclock,resource-leak
    y = bar()              # simlint: disable=all

A file-wide opt-out for one rule goes on its own line::

    # simlint: disable-file=yield-discipline

Pragmas are matched against the line a violation is reported on.  For a
multi-line *simple* statement (a call split over several lines, a long
assignment, ...) the pragma may sit on any physical line of the
statement: when the AST is available the pragma's rules are expanded to
the statement's whole ``lineno..end_lineno`` span.  Compound statements
(``if``/``for``/``with``/``def`` bodies) are *not* expanded — a pragma
inside a block only covers its own line, never the whole block.

Every pragma mention is also recorded with its line so the runner can
warn about pragmas naming rules that do not exist (``unknown-pragma``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

_PRAGMA = re.compile(r"#\s*simlint:\s*(disable(?:-file)?)\s*=\s*"
                     r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

#: Statement types a continuation-line pragma is expanded over.  Compound
#: statements are excluded on purpose: their span covers the entire body,
#: and a pragma inside the body must not silence the whole block.
_SIMPLE_STMTS = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign,
                 ast.Return, ast.Raise, ast.Assert, ast.Delete)


class PragmaIndex:
    """Pre-parsed suppression pragmas for one source file."""

    def __init__(self, source: str, tree: Optional[ast.Module] = None):
        #: line number (1-based) -> set of rule names disabled on that line.
        self._by_line: Dict[int, Set[str]] = {}
        #: rule names disabled for the whole file.
        self._file_wide: Set[str] = set()
        #: every (line, rule) pragma mention, for unknown-rule warnings.
        self.mentions: List[Tuple[int, str]] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "simlint" not in text:
                continue
            for match in _PRAGMA.finditer(text):
                kind, names = match.group(1), match.group(2)
                rules = {name.strip() for name in names.split(",")}
                self.mentions.extend((lineno, rule) for rule in sorted(rules))
                if kind == "disable-file":
                    self._file_wide |= rules
                else:
                    self._by_line.setdefault(lineno, set()).update(rules)
        if tree is not None:
            self._expand_continuations(tree)

    def _expand_continuations(self, tree: ast.Module) -> None:
        """Spread a pragma on a continuation line over its whole statement."""
        spans = [(node.lineno, node.end_lineno)
                 for node in ast.walk(tree)
                 if isinstance(node, _SIMPLE_STMTS)
                 and node.end_lineno is not None
                 and node.end_lineno > node.lineno]
        for line in list(self._by_line):
            best: Optional[Tuple[int, int]] = None
            for start, end in spans:
                if start < line <= end:
                    if best is None or (end - start) < (best[1] - best[0]):
                        best = (start, end)
            if best is None:
                continue
            rules = self._by_line[line]
            for covered in range(best[0], best[1] + 1):
                self._by_line.setdefault(covered, set()).update(rules)

    def is_disabled(self, line: int, rule: str) -> bool:
        """True if ``rule`` is suppressed at ``line``."""
        if rule in self._file_wide or "all" in self._file_wide:
            return True
        rules = self._by_line.get(line)
        return rules is not None and (rule in rules or "all" in rules)

    def file_disables(self, rule: str) -> bool:
        """True if ``rule`` is suppressed for the whole file."""
        return rule in self._file_wide or "all" in self._file_wide

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the incremental cache)."""
        return {
            "by_line": {str(line): sorted(rules)
                        for line, rules in self._by_line.items()},
            "file_wide": sorted(self._file_wide),
            "mentions": [[line, rule] for line, rule in self.mentions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PragmaIndex":
        index = cls("")
        index._by_line = {int(line): set(rules)
                          for line, rules in data.get("by_line", {}).items()}
        index._file_wide = set(data.get("file_wide", ()))
        index.mentions = [(int(line), str(rule))
                          for line, rule in data.get("mentions", ())]
        return index


def unknown_pragma_mentions(index: PragmaIndex,
                            known: Iterable[str]) -> List[Tuple[int, str]]:
    """The ``(line, rule)`` mentions naming rules that do not exist."""
    known_set = set(known) | {"all"}
    return [(line, rule) for line, rule in index.mentions
            if rule not in known_set]
