"""Per-line suppression pragmas.

Syntax (in a comment, anywhere on the offending line)::

    started = time.time()  # simlint: disable=no-wallclock
    x = foo()              # simlint: disable=no-wallclock,resource-leak
    y = bar()              # simlint: disable=all

A file-wide opt-out for one rule goes on its own line::

    # simlint: disable-file=yield-discipline

Pragmas are matched against the line a violation is reported on, so for a
multi-line statement the pragma belongs on the line the flagged expression
starts on.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_PRAGMA = re.compile(r"#\s*simlint:\s*(disable(?:-file)?)\s*=\s*"
                     r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


class PragmaIndex:
    """Pre-parsed suppression pragmas for one source file."""

    def __init__(self, source: str):
        #: line number (1-based) -> set of rule names disabled on that line.
        self._by_line: Dict[int, Set[str]] = {}
        #: rule names disabled for the whole file.
        self._file_wide: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "simlint" not in text:
                continue
            for match in _PRAGMA.finditer(text):
                kind, names = match.group(1), match.group(2)
                rules = {name.strip() for name in names.split(",")}
                if kind == "disable-file":
                    self._file_wide |= rules
                else:
                    self._by_line.setdefault(lineno, set()).update(rules)

    def is_disabled(self, line: int, rule: str) -> bool:
        """True if ``rule`` is suppressed at ``line``."""
        if rule in self._file_wide or "all" in self._file_wide:
            return True
        rules = self._by_line.get(line)
        return rules is not None and (rule in rules or "all" in rules)
