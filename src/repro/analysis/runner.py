"""File discovery and rule execution for simlint."""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.analysis.core import LintContext, Rule, Violation
from repro.analysis.imports import collect_aliases
from repro.analysis.pragmas import PragmaIndex


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                found.extend(os.path.join(root, f) for f in sorted(files)
                             if f.endswith(".py"))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise FileNotFoundError(path)
    return found


def lint_source(source: str, rules: Iterable[Rule],
                path: str = "<string>") -> List[Violation]:
    """Lint one module's source text; returns pragma-filtered violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 0,
                          col=(exc.offset or 0) or 1, rule="syntax-error",
                          message=str(exc.msg))]
    ctx = LintContext(path=path, source=source, tree=tree,
                      aliases=collect_aliases(tree))
    pragmas = PragmaIndex(source)
    violations = [v for rule in rules for v in rule.check(ctx)
                  if not pragmas.is_disabled(v.line, v.rule)]
    return sorted(violations)


def lint_file(path: str, rules: Iterable[Rule]) -> List[Violation]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, rules, path=path)


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[Rule]] = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with ``rules`` (default: all)."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    rules = list(rules)
    violations: List[Violation] = []
    for path in discover_files(paths):
        violations.extend(lint_file(path, rules))
    return violations
