"""File discovery and analysis orchestration for simlint.

Two layers:

* the original per-module API — :func:`lint_source` / :func:`lint_file` /
  :func:`lint_paths` — which runs the registered AST rules over one module
  at a time (plus ``unknown-pragma`` validation of suppression comments);
* the whole-program API — :func:`analyze_paths` — which additionally
  extracts a :class:`~repro.analysis.callgraph.ModuleSummary` per file,
  links the project-wide call graph, and runs the interprocedural
  taint/flow families, with optional content-hash incremental caching
  (:mod:`repro.analysis.cache`) so unchanged files are never re-parsed.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.callgraph import ModuleSummary, extract_module
from repro.analysis.core import LintContext, Rule, Violation, registered_rules
from repro.analysis.imports import collect_aliases
from repro.analysis.pragmas import PragmaIndex, unknown_pragma_mentions


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of unique ``.py`` files.

    Overlapping inputs (``src`` *and* ``src/repro``) and files reachable
    through several symlinks are deduplicated by real path; symlinked
    directory cycles are pruned during the walk.  The result preserves
    sorted order over the paths as given.
    """
    found: List[str] = []
    seen_files: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            visited_dirs: Set[str] = {os.path.realpath(path)}
            for root, dirs, files in os.walk(path, followlinks=True):
                pruned = []
                for d in sorted(dirs):
                    if d == "__pycache__":
                        continue
                    real = os.path.realpath(os.path.join(root, d))
                    if real in visited_dirs:
                        continue  # symlink cycle or already-walked dir
                    visited_dirs.add(real)
                    pruned.append(d)
                dirs[:] = pruned
                for f in sorted(files):
                    if not f.endswith(".py"):
                        continue
                    full = os.path.join(root, f)
                    real = os.path.realpath(full)
                    if real in seen_files:
                        continue
                    seen_files.add(real)
                    found.append(full)
        elif os.path.isfile(path):
            real = os.path.realpath(path)
            if real not in seen_files:
                seen_files.add(real)
                found.append(path)
        else:
            raise FileNotFoundError(path)
    return sorted(found)


# ------------------------------------------------------------ per-module API
def known_rule_names(rules: Iterable[Rule] = ()) -> Set[str]:
    """Every rule name a pragma may legitimately reference."""
    from repro.analysis.taint import WHOLE_PROGRAM_RULES
    names = set(registered_rules()) | set(WHOLE_PROGRAM_RULES)
    names.update(rule.name for rule in rules)
    names.update({"syntax-error", "unknown-pragma"})
    return names


def _unknown_pragma_violations(path: str, pragmas: PragmaIndex,
                               known: Set[str]) -> List[Violation]:
    return [Violation(path=path, line=line, col=1, rule="unknown-pragma",
                      message=(f"pragma disables unknown rule {rule!r}; "
                               f"it suppresses nothing (see --list-rules)"))
            for line, rule in unknown_pragma_mentions(pragmas, known)]


def lint_source(source: str, rules: Iterable[Rule],
                path: str = "<string>") -> List[Violation]:
    """Lint one module's source text; returns pragma-filtered violations."""
    rules = list(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 0,
                          col=(exc.offset or 0) or 1, rule="syntax-error",
                          message=str(exc.msg))]
    ctx = LintContext(path=path, source=source, tree=tree,
                      aliases=collect_aliases(tree))
    pragmas = PragmaIndex(source, tree=tree)
    violations = [v for rule in rules for v in rule.check(ctx)
                  if not pragmas.is_disabled(v.line, v.rule)]
    violations.extend(_unknown_pragma_violations(
        path, pragmas, known_rule_names(rules)))
    return sorted(violations)


def lint_file(path: str, rules: Iterable[Rule]) -> List[Violation]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, rules, path=path)


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[Rule]] = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with ``rules`` (default: all)."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    rules = list(rules)
    violations: List[Violation] = []
    for path in discover_files(paths):
        violations.extend(lint_file(path, rules))
    return violations


# --------------------------------------------------------- whole-program API
@dataclass
class AnalyzerStats:
    """Counters for one :func:`analyze_paths` run (cache behaviour, size)."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    functions: int = 0
    call_edges: int = 0
    entry_points: int = 0
    baseline_suppressed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"files": self.files, "parsed": self.parsed,
                "cache_hits": self.cache_hits,
                "functions": self.functions,
                "call_edges": self.call_edges,
                "entry_points": self.entry_points,
                "baseline_suppressed": self.baseline_suppressed}


@dataclass
class AnalysisResult:
    violations: List[Violation] = field(default_factory=list)
    modules: List[ModuleSummary] = field(default_factory=list)
    stats: AnalyzerStats = field(default_factory=AnalyzerStats)


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Iterable[Rule]] = None, *,
                  whole_program: bool = True,
                  cache: Optional[AnalysisCache] = None) -> AnalysisResult:
    """Run per-module rules and the whole-program passes over ``paths``.

    With ``cache`` given, files whose content hash matches the cache are
    loaded without re-parsing; the caller is responsible for
    :meth:`~repro.analysis.cache.AnalysisCache.save`.
    """
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    rules = list(rules)
    known = known_rule_names(rules)
    result = AnalysisResult()
    files = discover_files(paths)
    result.stats.files = len(files)

    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        digest = content_hash(source)
        cached = cache.get(path, digest) if cache is not None else None
        if cached is not None:
            summary, violations = cached
            result.stats.cache_hits += 1
        else:
            result.stats.parsed += 1
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                result.violations.append(Violation(
                    path=path, line=exc.lineno or 0,
                    col=(exc.offset or 0) or 1, rule="syntax-error",
                    message=str(exc.msg)))
                continue
            ctx = LintContext(path=path, source=source, tree=tree,
                              aliases=collect_aliases(tree))
            summary = extract_module(path, source, tree)
            pragmas = summary.pragmas
            violations = sorted(
                v for rule in rules for v in rule.check(ctx)
                if not pragmas.is_disabled(v.line, v.rule))
            if cache is not None:
                cache.put(path, digest, summary, violations)
        result.modules.append(summary)
        result.violations.extend(violations)
        # Unknown-pragma warnings are regenerated from cached mentions so
        # a rule-set change never requires a cache invalidation.
        result.violations.extend(
            _unknown_pragma_violations(path, summary.pragmas, known))

    if cache is not None:
        cache.prune(files)

    if whole_program and result.modules:
        from repro.analysis.callgraph import CallGraph
        from repro.analysis.taint import run_flow, run_taint
        graph = CallGraph(result.modules)
        result.stats.functions = len(graph.functions)
        result.stats.call_edges = sum(
            len(edges) for edges in graph.edges.values())
        result.stats.entry_points = len(graph.entry_points())
        result.violations.extend(run_taint(graph))
        result.violations.extend(run_flow(graph))

    result.violations.sort()
    return result
