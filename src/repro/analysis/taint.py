"""Interprocedural impurity taint and flow-aware yield discipline.

Two whole-program rule families run over the linked
:class:`~repro.analysis.callgraph.CallGraph`:

* **taint-*** — impurity sources (wall-clock reads, global randomness, OS
  entropy, env-var reads outside the ``REPRO_*`` toggles, unordered set
  iteration) are propagated backwards along call edges; any *simulation
  entry point* (a generator the kernel can drive, or a function handed to
  ``sim.process(...)``) that can transitively reach a source is reported
  with the full call chain, file:line at every hop.
* **flow-blocking** — the flow-aware yield-discipline pass: a kernel-driven
  generator must suspend only through sim primitives, never by transitively
  calling host-blocking helpers (``time.sleep``, ``subprocess``,
  ``input()``, ``os.system``, ``select.select``, ...).

Suppression composes with the usual pragmas: a finding is dropped if *any*
hop of its chain carries ``# simlint: disable=<rule>``, or if any involved
file disables the rule file-wide.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.callgraph import CallEdge, CallGraph, ModuleSummary
from repro.analysis.core import Violation
from repro.analysis.rules.wallclock import BANNED_CALLS as _WALLCLOCK_CALLS

# ------------------------------------------------------------ source catalog
#: Source kind -> taint rule name.
TAINT_RULES: Dict[str, str] = {
    "wallclock": "taint-wallclock",
    "random": "taint-random",
    "entropy": "taint-entropy",
    "env": "taint-env",
    "unordered": "taint-unordered",
}

#: The flow family (kind -> rule name).
FLOW_RULES: Dict[str, str] = {
    "blocking": "flow-blocking",
}

#: Every whole-program rule name, for --list-rules and pragma validation.
WHOLE_PROGRAM_RULES: Dict[str, str] = {
    "taint-wallclock": ("sim-reachable code transitively reads the host "
                        "clock (interprocedural no-wallclock)"),
    "taint-random": ("sim-reachable code transitively draws from global "
                     "randomness (interprocedural no-global-random)"),
    "taint-entropy": ("sim-reachable code transitively reads OS entropy "
                      "(os.urandom, uuid.uuid1/uuid4, secrets)"),
    "taint-env": ("sim-reachable code transitively reads environment "
                  "variables outside the REPRO_* toggles"),
    "taint-unordered": ("sim-reachable code transitively iterates an "
                        "unordered set, making visit order id-dependent"),
    "flow-blocking": ("a kernel-driven generator transitively calls a "
                      "host-blocking helper; suspend only via sim "
                      "primitives (sim.timeout, events, resources)"),
}

_ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

_ENV_READ_CALLS = frozenset({"os.getenv", "os.environ.get"})

_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "builtins.input",
    "os.system", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "select.select", "select.poll",
    "socket.create_connection",
    "signal.pause",
})


def _env_key_allowed(node: ast.Call) -> bool:
    """True when the env read names a literal ``REPRO_*`` toggle."""
    if not node.args:
        return False
    key = node.args[0]
    return (isinstance(key, ast.Constant) and isinstance(key.value, str)
            and key.value.startswith("REPRO_"))


def classify_call(target: str, node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, description)`` when a resolved call is a direct source."""
    if target in _WALLCLOCK_CALLS:
        if target == "time.sleep":
            # sleep is both irreproducible and host-blocking; the flow
            # family owns it so one call does not yield twin findings.
            return ("blocking", target)
        return ("wallclock", target)
    if target in _BLOCKING_CALLS:
        return ("blocking", target)
    if target in _ENTROPY_CALLS:
        return ("entropy", target)
    if target in _ENV_READ_CALLS:
        if _env_key_allowed(node):
            return None
        return ("env", target)
    if target.startswith("random."):
        if target == "random.Random":
            if not node.args and not node.keywords:
                return ("random", "random.Random()")
            return None
        if target.startswith("random.SystemRandom"):
            return ("random", target)
        return ("random", target)
    return None


# ------------------------------------------------------------- propagation
#: A chain hop: (symbol, path, line) — the line is where the hop's symbol
#: is *invoked from* (call site), except the first hop which is the entry
#: point's definition site.
Hop = Tuple[str, str, int]


def _propagate(graph: CallGraph,
               kinds: Iterable[str]) -> Dict[str, Dict[str, Tuple[int, object]]]:
    """Backward BFS from direct sources along reverse call edges.

    Returns ``kind -> {function qualname: (depth, step)}`` where ``step``
    is either a direct-source witness ``("<source>", desc, line)`` or the
    forward edge to follow for chain reconstruction.
    """
    result: Dict[str, Dict[str, Tuple[int, object]]] = {}
    for kind in kinds:
        tainted: Dict[str, Tuple[int, object]] = {}
        queue: deque = deque()
        for qualname in sorted(graph.functions):
            func = graph.functions[qualname]
            witnesses = [s for s in func.sources if s[0] == kind]
            if witnesses:
                witness = min(witnesses, key=lambda s: s[2])
                tainted[qualname] = (1, ("<source>", witness[1], witness[2]))
                queue.append(qualname)
        while queue:
            current = queue.popleft()
            depth, _ = tainted[current]
            for edge in sorted(graph.callers(current),
                               key=lambda e: (e.caller, e.lineno)):
                if edge.caller in tainted:
                    continue
                tainted[edge.caller] = (depth + 1, edge)
                queue.append(edge.caller)
        result[kind] = tainted
    return result


def _chain_for(graph: CallGraph, entry: str,
               tainted: Dict[str, Tuple[int, object]]) -> List[Hop]:
    """Reconstruct the shortest entry -> source chain as rendered hops.

    Each function hop is located at the call site of the *next* hop, so
    the chain reads ``a (a.py:12) -> b (b.py:34) -> time.time (b.py:35)``
    straight down the call path; the terminal hop is the source call.
    """
    hops: List[Hop] = []
    current = entry
    for _ in range(256):
        _, step = tainted[current]
        if isinstance(step, CallEdge):
            hops.append((current, graph.path_of(current), step.lineno))
            current = step.callee
            continue
        _, desc, line = step  # ("<source>", description, lineno)
        hops.append((current, graph.path_of(current), line))
        hops.append((desc, graph.path_of(current), line))
        break
    return hops


#: A pragma for the per-module sibling rule at the *source* call site also
#: suppresses the chained finding: one reviewed ``disable=no-wallclock``
#: should not need a twin ``disable=taint-wallclock``.
_SIBLING_MODULE_RULE = {
    "taint-wallclock": "no-wallclock",
    "taint-random": "no-global-random",
}


def _suppressed(graph: CallGraph, rule: str, chain: Sequence[Hop]) -> bool:
    """True if any hop's pragma (or any involved file) disables ``rule``."""
    by_path: Dict[str, ModuleSummary] = {
        mod.path: mod for mod in graph.modules.values()}
    sibling = _SIBLING_MODULE_RULE.get(rule)
    for index, (_, path, line) in enumerate(chain):
        mod = by_path.get(path)
        if mod is None:
            continue
        if mod.pragmas.is_disabled(line, rule):
            return True
        if (sibling is not None and index >= len(chain) - 2
                and mod.pragmas.is_disabled(line, sibling)):
            return True
    return False


def _render_chain(chain: Sequence[Hop]) -> str:
    return " -> ".join(symbol for symbol, _, _ in chain)


def _findings_for(graph: CallGraph, entries: Sequence[str],
                  rules: Dict[str, str], what: str) -> List[Violation]:
    by_kind = _propagate(graph, rules.keys())
    findings: List[Violation] = []
    for kind, rule in sorted(rules.items()):
        tainted = by_kind[kind]
        for entry in entries:
            if entry not in tainted:
                continue
            chain = _chain_for(graph, entry, tainted)
            if _suppressed(graph, rule, chain):
                continue
            source_desc = chain[-1][0]
            findings.append(Violation(
                path=graph.path_of(entry),
                line=chain[0][2], col=1, rule=rule,
                message=(f"{what} {entry!r} reaches {source_desc} via "
                         f"{_render_chain(chain)}"),
                chain=tuple(chain)))
    return sorted(findings)


def run_taint(graph: CallGraph) -> List[Violation]:
    """The taint-* family: impurity reachable from simulation entries."""
    entries = graph.entry_points()
    return _findings_for(graph, entries, TAINT_RULES,
                         "sim entry point")


def run_flow(graph: CallGraph) -> List[Violation]:
    """The flow-blocking family: blocking helpers reachable from
    kernel-driven generators."""
    entries = [q for q in graph.entry_points()
               if graph.functions[q].is_generator]
    return _findings_for(graph, entries, FLOW_RULES,
                         "kernel-driven generator")


def run_whole_program(modules: Sequence[ModuleSummary]) -> List[Violation]:
    """Link ``modules`` and run both whole-program families."""
    graph = CallGraph(modules)
    return sorted(run_taint(graph) + run_flow(graph))
