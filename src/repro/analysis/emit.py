"""Output formats for analyzer findings: text, JSON, and SARIF 2.1.0.

The SARIF output is the minimal subset GitHub code scanning ingests:
one run, one driver, rule metadata, and per-result physical locations.
Whole-program findings attach their call chain as ``relatedLocations``
so every hop is clickable in a SARIF viewer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(violations: Sequence[Violation]) -> str:
    return "\n".join(v.render() for v in violations)


def render_json(violations: Sequence[Violation],
                stats: Optional[Dict[str, int]] = None) -> str:
    payload: Dict[str, object] = {
        "findings": [v.to_dict() for v in violations],
        "count": len(violations),
    }
    if stats is not None:
        payload["stats"] = dict(stats)
    return json.dumps(payload, indent=2, sort_keys=True)


def _location(path: str, line: int, col: int = 1,
              message: Optional[str] = None) -> Dict[str, object]:
    loc: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(line, 1),
                       "startColumn": max(col, 1)},
        }
    }
    if message:
        loc["message"] = {"text": message}
    return loc


def render_sarif(violations: Sequence[Violation],
                 rule_descriptions: Optional[Dict[str, str]] = None) -> str:
    rule_descriptions = rule_descriptions or {}
    rule_ids = sorted({v.rule for v in violations} | set(rule_descriptions))
    rules = [{"id": rule_id,
              "shortDescription": {
                  "text": rule_descriptions.get(rule_id, rule_id)}}
             for rule_id in rule_ids]
    results = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [_location(violation.path, violation.line,
                                    violation.col)],
            "fingerprints": {"simlint/v1": violation.fingerprint()},
        }
        if violation.chain:
            result["relatedLocations"] = [
                _location(path, line, message=symbol)
                for symbol, path, line in violation.chain]
        results.append(result)
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "informationUri":
                    "docs/static_analysis.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
