"""simlint: static analysis for determinism & simulation correctness.

The simulation's headline claim — bit-identical, fully deterministic runs
— only holds if no code path reads the host clock, draws from global
randomness, yields non-events into the kernel, or leaks resource slots.
This package makes those conventions machine-checked:

* an AST rule framework with a registry (:mod:`repro.analysis.core`);
* per-line ``# simlint: disable=<rule>`` pragmas
  (:mod:`repro.analysis.pragmas`);
* a CLI — ``python -m repro.analysis src/repro`` — that exits nonzero on
  violations (:mod:`repro.analysis.cli`);
* the built-in rules ``no-wallclock``, ``no-global-random``,
  ``yield-discipline`` and ``resource-leak``
  (:mod:`repro.analysis.rules`).

The complementary *runtime* checks live in :mod:`repro.sim.sanitizer`
(``Simulator(sanitize=True)``).  See ``docs/static_analysis.md``.
"""

from repro.analysis.core import (
    LintContext,
    Rule,
    Violation,
    create_rules,
    register,
    registered_rules,
)
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.runner import lint_file, lint_paths, lint_source

__all__ = [
    "LintContext",
    "PragmaIndex",
    "Rule",
    "Violation",
    "create_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rules",
]
