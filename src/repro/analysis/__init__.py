"""simlint: static analysis for determinism & simulation correctness.

The simulation's headline claim — bit-identical, fully deterministic runs
— only holds if no code path reads the host clock, draws from global
randomness, yields non-events into the kernel, or leaks resource slots.
This package makes those conventions machine-checked:

* an AST rule framework with a registry (:mod:`repro.analysis.core`);
* per-line ``# simlint: disable=<rule>`` pragmas
  (:mod:`repro.analysis.pragmas`);
* a **whole-program analyzer**: a project-wide import/call graph
  (:mod:`repro.analysis.callgraph`) feeding interprocedural taint and
  flow-aware yield-discipline passes (:mod:`repro.analysis.taint`) that
  report full call chains — ``proc -> helper -> time.time`` with
  file:line at every hop;
* findings **baselines** (:mod:`repro.analysis.baseline`) so CI gates on
  *new* findings only, JSON/SARIF emitters (:mod:`repro.analysis.emit`),
  and a content-hash incremental cache (:mod:`repro.analysis.cache`);
* a CLI — ``python -m repro.analysis src/repro`` — with stable exit
  codes ``0`` clean / ``1`` findings / ``2`` error
  (:mod:`repro.analysis.cli`);
* the built-in per-module rules ``no-wallclock``, ``no-global-random``,
  ``yield-discipline``, ``resource-leak`` and ``no-topology-literals``
  (:mod:`repro.analysis.rules`).

The complementary *runtime* checks — including the lock-order deadlock
detector — live in :mod:`repro.sim.sanitizer`
(``Simulator(sanitize=True)``).  See ``docs/static_analysis.md``.
"""

from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import CallGraph, ModuleSummary, extract_module
from repro.analysis.core import (
    LintContext,
    Rule,
    Violation,
    create_rules,
    register,
    registered_rules,
)
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.runner import (
    AnalysisResult,
    AnalyzerStats,
    analyze_paths,
    discover_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.taint import WHOLE_PROGRAM_RULES, run_flow, run_taint

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "AnalyzerStats",
    "CallGraph",
    "LintContext",
    "ModuleSummary",
    "PragmaIndex",
    "Rule",
    "Violation",
    "WHOLE_PROGRAM_RULES",
    "analyze_paths",
    "create_rules",
    "discover_files",
    "extract_module",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rules",
    "run_flow",
    "run_taint",
]
