"""Findings baselines: gate CI on *new* findings only.

A baseline file records the fingerprints of known, accepted findings.
``python -m repro.analysis --baseline FILE`` subtracts them from the
current run, so a tree with historical debt still fails the build the
moment a *new* finding appears; ``--update-baseline`` rewrites the file
to the current findings (the reviewed way to accept debt).

Fingerprints (:meth:`repro.analysis.core.Violation.fingerprint`) exclude
line numbers, so edits above a finding do not churn the baseline.  The
committed baseline for ``src/`` is kept *empty* — the shipped tree is
clean — and a test pins that.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Violation

BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict[str, str]:
    """``fingerprint -> rendered finding`` from a baseline file.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (silently ignoring a broken baseline would un-gate CI).
    """
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a simlint baseline file")
    findings = data["findings"]
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: 'findings' must be an object")
    return {str(k): str(v) for k, v in findings.items()}


def save_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Write the fingerprints of ``violations`` as the new baseline."""
    findings = {v.fingerprint(): v.render().splitlines()[0]
                for v in sorted(violations)}
    payload = {"version": BASELINE_VERSION, "findings": findings}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def filter_baselined(violations: Sequence[Violation],
                     baseline: Dict[str, str]
                     ) -> Tuple[List[Violation], int]:
    """Split findings into (new, suppressed-count) against ``baseline``."""
    fresh = [v for v in violations if v.fingerprint() not in baseline]
    return fresh, len(violations) - len(fresh)
