"""simlint command line: ``python -m repro.analysis <paths...>``.

Exit codes: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.core import create_rules, registered_rules
from repro.analysis.runner import lint_paths
import repro.analysis.rules  # noqa: F401 - imported to register the rules
from repro.analysis.rules.wallclock import NoWallclockRule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & simulation-correctness checks")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--disable", metavar="RULES", default="",
                        help="comma-separated rule names to skip")
    parser.add_argument("--wallclock-allow", metavar="GLOB", action="append",
                        default=[],
                        help="path glob exempt from no-wallclock "
                             "(repeatable)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        rules = registered_rules()
        width = max(len(name) for name in rules)
        for name, cls in rules.items():
            print(f"  {name.ljust(width)}  {cls.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    select = args.select.split(",") if args.select else None
    disable = [d for d in args.disable.split(",") if d]
    try:
        rules = create_rules(select=select, disable=disable)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.wallclock_allow:
        for index, rule in enumerate(rules):
            if isinstance(rule, NoWallclockRule):
                rules[index] = NoWallclockRule(allow=args.wallclock_allow)

    try:
        violations = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc.args[0]}",
              file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"simlint: {len(violations)} {noun} "
              f"({len(rules)} rules)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
