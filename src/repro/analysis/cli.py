"""simlint command line: ``python -m repro.analysis <paths...>``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage or internal error —
stable enough for CI to branch on (annotate PRs on 1, fail the plumbing
on 2) instead of grepping stdout.

Beyond the per-module rules, the CLI runs the whole-program passes
(cross-module taint, flow-aware yield discipline) by default; disable
them with ``--no-whole-program``.  ``--format json|sarif`` emits
machine-readable findings, ``--baseline``/``--update-baseline`` gate on
*new* findings only, and ``--cache`` enables content-hash incremental
caching for fast repeated full-tree runs.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional

from repro.analysis.baseline import (filter_baselined, load_baseline,
                                     save_baseline)
from repro.analysis.cache import AnalysisCache
from repro.analysis.core import create_rules, registered_rules
from repro.analysis.emit import render_json, render_sarif, render_text
from repro.analysis.runner import analyze_paths
import repro.analysis.rules  # noqa: F401 - imported to register the rules
from repro.analysis.rules.wallclock import NoWallclockRule
from repro.analysis.taint import WHOLE_PROGRAM_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & simulation-correctness checks")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--disable", metavar="RULES", default="",
                        help="comma-separated rule names to skip")
    parser.add_argument("--wallclock-allow", metavar="GLOB", action="append",
                        default=[],
                        help="path glob exempt from no-wallclock "
                             "(repeatable)")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json", "sarif"),
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE",
                        help="write findings to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in this baseline "
                             "file; only new findings fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current findings "
                             "and exit 0")
    parser.add_argument("--cache", metavar="FILE",
                        help="content-hash incremental cache file; "
                             "unchanged files are not re-parsed")
    parser.add_argument("--no-whole-program", action="store_true",
                        help="skip the cross-module taint/flow passes")
    parser.add_argument("--stats", action="store_true",
                        help="print analyzer statistics to stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _list_rules() -> int:
    rules = dict(registered_rules())
    entries = [(name, cls.description) for name, cls in rules.items()]
    entries += [(name, desc) for name, desc in WHOLE_PROGRAM_RULES.items()]
    entries.sort()
    width = max(len(name) for name, _ in entries)
    for name, description in entries:
        print(f"  {name.ljust(width)}  {description}")
    return EXIT_CLEAN


def _run(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    disable = [d for d in args.disable.split(",") if d]
    wp_names = set(WHOLE_PROGRAM_RULES)
    module_select = ([s for s in select if s not in wp_names]
                     if select else None)
    module_disable = [d for d in disable if d not in wp_names]
    try:
        rules = create_rules(select=module_select or None,
                             disable=module_disable)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    if args.wallclock_allow:
        for index, rule in enumerate(rules):
            if isinstance(rule, NoWallclockRule):
                rules[index] = NoWallclockRule(allow=args.wallclock_allow)
    if select and module_select == []:
        # Only whole-program rules selected: run no per-module rules.
        rules = []

    whole_program = not args.no_whole_program
    config_fp = "|".join([
        "rules=" + ",".join(sorted(r.name for r in rules)),
        "allow=" + ",".join(sorted(args.wallclock_allow)),
    ])
    cache = AnalysisCache(args.cache, config_fp) if args.cache else None

    try:
        result = analyze_paths(args.paths, rules,
                               whole_program=whole_program, cache=cache)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc.args[0]}",
              file=sys.stderr)
        return EXIT_ERROR
    if cache is not None:
        cache.save()

    violations = result.violations
    if select:
        violations = [v for v in violations if v.rule in set(select)]
    if disable:
        violations = [v for v in violations if v.rule not in set(disable)]

    if args.baseline and args.update_baseline:
        save_baseline(args.baseline, violations)
        if not args.quiet:
            print(f"simlint: baseline {args.baseline} updated with "
                  f"{len(violations)} finding(s)", file=sys.stderr)
        return EXIT_CLEAN
    if args.baseline:
        known = load_baseline(args.baseline)
        violations, suppressed = filter_baselined(violations, known)
        result.stats.baseline_suppressed = suppressed

    descriptions = {name: cls.description
                    for name, cls in registered_rules().items()}
    descriptions.update(WHOLE_PROGRAM_RULES)
    if args.fmt == "json":
        rendered = render_json(violations, result.stats.to_dict())
    elif args.fmt == "sarif":
        rendered = render_sarif(violations, descriptions)
    else:
        rendered = render_text(violations)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    elif rendered:
        print(rendered)

    if args.stats:
        print("simlint stats: " + " ".join(
            f"{key}={value}"
            for key, value in result.stats.to_dict().items()),
            file=sys.stderr)
    if not args.quiet:
        noun = "finding" if len(violations) == 1 else "findings"
        suffix = ""
        if result.stats.baseline_suppressed:
            suffix = (f", {result.stats.baseline_suppressed} suppressed "
                      f"by baseline")
        print(f"simlint: {len(violations)} {noun}{suffix}", file=sys.stderr)
    return EXIT_FINDINGS if violations else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return EXIT_ERROR
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return EXIT_ERROR

    try:
        return _run(args)
    except Exception:  # noqa: BLE001 - CLI boundary: fail with exit code 2
        print("simlint: internal error:\n" + traceback.format_exc(),
              file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
