"""Import-alias tracking for qualified-name resolution.

Builds the ``alias -> dotted name`` map a :class:`~repro.analysis.core.
LintContext` uses to resolve calls like ``t.sleep(...)`` back to
``time.sleep`` regardless of how the module was imported.  Handles::

    import time                     # time      -> time
    import time as t                # t         -> time
    from time import time           # time      -> time.time
    from datetime import datetime   # datetime  -> datetime.datetime
    from datetime import datetime as dt   # dt  -> datetime.datetime

Relative imports (``from . import x``) resolve to nothing — simlint's rules
only care about stdlib modules, which are always imported absolutely.
"""

from __future__ import annotations

import ast
from typing import Dict


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every imported local name to its dotted qualified name."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `c` to a.b.
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative import: not a stdlib target
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases
