"""Project-wide import and call graphs for the whole-program passes.

Per-module extraction (:func:`extract_module`) reduces one parsed source
file to a JSON-serializable :class:`ModuleSummary` — function definitions,
resolved-as-far-as-locally-possible call targets, direct impurity/blocking
sources, process spawns, pragmas, and the module's import aliases.  The
summaries are what the incremental cache stores, so a cached file never
needs re-parsing: cross-module *linking* (:class:`CallGraph`) runs purely
over summaries each run.

Resolution is deliberately conservative: a call is linked only when its
target is statically nameable — a local function/class, an imported name
(following re-export chains through package ``__init__`` aliases), or a
``self.method()`` resolved through the enclosing class and its statically
known bases.  Calls through arbitrary objects (``obj.run()``) are dropped
rather than fanned out to every same-named method; simlint prefers silence
to a false-positive storm, and the runtime sanitizer backstops what the
static pass cannot see.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.pragmas import PragmaIndex

#: Builtins worth resolving (source/blocking catalogs reference them).
_INTERESTING_BUILTINS = frozenset({
    "set", "input", "iter", "sorted", "id", "eval", "exec", "print",
})


# --------------------------------------------------------------- summaries
@dataclass
class FunctionSummary:
    """One function or method, reduced to what the linker needs."""

    qualname: str                #: e.g. ``repro.sim.kernel.Simulator.run``
    name: str                    #: bare name, e.g. ``run``
    lineno: int
    is_generator: bool
    class_name: Optional[str]    #: enclosing class qualname, or None
    #: (target, lineno) — target is a dotted name or ``self.<method>``.
    calls: List[Tuple[str, int]] = field(default_factory=list)
    #: (kind, description, lineno) — direct impurity/blocking sources.
    sources: List[Tuple[str, str, int]] = field(default_factory=list)
    #: call targets handed to ``sim.process(...)`` / ``Process(sim, ...)``.
    spawns: List[Tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"qualname": self.qualname, "name": self.name,
                "lineno": self.lineno, "is_generator": self.is_generator,
                "class_name": self.class_name,
                "calls": [[t, l] for t, l in self.calls],
                "sources": [[k, d, l] for k, d, l in self.sources],
                "spawns": [[t, l] for t, l in self.spawns]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(qualname=data["qualname"], name=data["name"],
                   lineno=int(data["lineno"]),
                   is_generator=bool(data["is_generator"]),
                   class_name=data.get("class_name"),
                   calls=[(t, int(l)) for t, l in data.get("calls", ())],
                   sources=[(k, d, int(l))
                            for k, d, l in data.get("sources", ())],
                   spawns=[(t, int(l)) for t, l in data.get("spawns", ())])


@dataclass
class ClassSummary:
    qualname: str
    bases: List[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"qualname": self.qualname, "bases": list(self.bases),
                "methods": dict(self.methods)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSummary":
        return cls(qualname=data["qualname"],
                   bases=list(data.get("bases", ())),
                   methods=dict(data.get("methods", {})))


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need from one source file."""

    path: str
    modname: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: local name -> dotted target (imports and module-level defs).
    exports: Dict[str, str] = field(default_factory=dict)
    #: modules this one imports (dotted names) — the import graph.
    imports: List[str] = field(default_factory=list)
    pragmas: PragmaIndex = field(default_factory=lambda: PragmaIndex(""))

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "modname": self.modname,
                "functions": {q: f.to_dict()
                              for q, f in self.functions.items()},
                "classes": {q: c.to_dict() for q, c in self.classes.items()},
                "exports": dict(self.exports),
                "imports": list(self.imports),
                "pragmas": self.pragmas.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(path=data["path"], modname=data["modname"],
                   functions={q: FunctionSummary.from_dict(f)
                              for q, f in data.get("functions", {}).items()},
                   classes={q: ClassSummary.from_dict(c)
                            for q, c in data.get("classes", {}).items()},
                   exports=dict(data.get("exports", {})),
                   imports=list(data.get("imports", ())),
                   pragmas=PragmaIndex.from_dict(data.get("pragmas", {})))


# ----------------------------------------------------------- module naming
def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/sim/kernel.py`` -> ``repro.sim.kernel`` (because
    ``src/repro/__init__.py`` exists and ``src/__init__.py`` does not).
    A file outside any package is just its stem.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
        if not pkg:  # pragma: no cover - filesystem root
            break
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else os.path.splitext(filename)[0]


def _resolve_relative(modname: str, level: int,
                      module: Optional[str]) -> Optional[str]:
    """Absolute module named by a ``from ...X import`` statement."""
    parts = modname.split(".")
    # level 1 = current package: drop the module's own last component.
    if level > len(parts):
        return None
    base = parts[:len(parts) - level]
    if module:
        base.extend(module.split("."))
    return ".".join(base) if base else None


# --------------------------------------------------------------- extraction
class _ModuleExtractor(ast.NodeVisitor):
    """Single pass over one module's AST building its summary."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 modname: Optional[str] = None):
        self.tree = tree
        modname = modname or module_name_for(path)
        self.summary = ModuleSummary(
            path=path, modname=modname,
            pragmas=PragmaIndex(source, tree=tree))
        self._aliases: Dict[str, str] = {}
        self._collect_imports(tree)
        self._collect_toplevel(tree)
        self.summary.exports = dict(self._aliases)

    # ------------------------------------------------------------- imports
    def _collect_imports(self, tree: ast.Module) -> None:
        modname = self.summary.modname
        imported: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    self._aliases[local] = target
                    imported.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                module = node.module
                if node.level:
                    module = _resolve_relative(modname, node.level, module)
                    if module is None:
                        continue
                if module is None:
                    continue
                imported.add(module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"
                    # ``from pkg import sub`` may import a *module*; record
                    # the candidate — the import graph filters to modules
                    # that were actually analyzed.
                    imported.add(f"{module}.{alias.name}")
        self.summary.imports = sorted(imported)

    # ------------------------------------------------------- top-level defs
    def _collect_toplevel(self, tree: ast.Module) -> None:
        modname = self.summary.modname
        # First bind every top-level def/class so forward references resolve.
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._aliases[node.name] = f"{modname}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                self._aliases[node.name] = f"{modname}.{node.name}"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(node)

    def _add_class(self, node: ast.ClassDef) -> None:
        modname = self.summary.modname
        qualname = f"{modname}.{node.name}"
        bases = []
        for base in node.bases:
            resolved = self._resolve_expr(base)
            if resolved:
                bases.append(resolved)
        cls = ClassSummary(qualname=qualname, bases=bases)
        self.summary.classes[qualname] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = self._add_function(item, class_name=qualname)
                cls.methods[item.name] = func.qualname

    def _add_function(self, node: ast.AST,
                      class_name: Optional[str]) -> FunctionSummary:
        if class_name:
            qualname = f"{class_name}.{node.name}"
        else:
            qualname = f"{self.summary.modname}.{node.name}"
        func = FunctionSummary(
            qualname=qualname, name=node.name, lineno=node.lineno,
            is_generator=_is_generator(node), class_name=class_name)
        self.summary.functions[qualname] = func
        self._collect_body(node, func)
        return func

    # ------------------------------------------------------- function body
    def _collect_body(self, func_node: ast.AST,
                      func: FunctionSummary) -> None:
        """Record calls and direct sources, including nested defs/lambdas.

        Nested functions and lambdas are attributed to the *enclosing*
        function: a closure that reads the wall clock taints its definer.
        Class bodies nested in functions are rare and skipped.
        """
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                self._record_call(node, func)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_unordered_iteration(node, func)

    def _record_call(self, node: ast.Call, func: FunctionSummary) -> None:
        target = self._resolve_expr(node.func, class_ctx=func.class_name)
        if target is None:
            self._check_spawn(node, func)
            return
        func.calls.append((target, node.lineno))
        self._check_direct_source(node, target, func)
        self._check_spawn(node, func)

    def _check_spawn(self, node: ast.Call, func: FunctionSummary) -> None:
        """Record generators handed to ``X.process(...)``/``Process(...)``."""
        args: Sequence[ast.expr] = ()
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            args = node.args[:1]
        else:
            target = self._resolve_expr(node.func, class_ctx=func.class_name)
            if target and target.endswith(".Process") and len(node.args) >= 2:
                args = node.args[1:2]
        for arg in args:
            if isinstance(arg, ast.Call):
                spawned = self._resolve_expr(arg.func,
                                             class_ctx=func.class_name)
                if spawned:
                    func.spawns.append((spawned, arg.lineno))

    def _check_direct_source(self, node: ast.Call, target: str,
                             func: FunctionSummary) -> None:
        from repro.analysis.taint import classify_call  # local: avoid cycle
        hit = classify_call(target, node)
        if hit is not None:
            kind, description = hit
            func.sources.append((kind, description, node.lineno))

    def _check_unordered_iteration(self, node: ast.AST,
                                   func: FunctionSummary) -> None:
        """Flag ``for x in {a, b}`` / ``for x in set(...)`` iteration."""
        iter_node = node.iter
        unordered = isinstance(iter_node, (ast.Set, ast.SetComp))
        if (not unordered and isinstance(iter_node, ast.Call)):
            target = self._resolve_expr(iter_node.func,
                                        class_ctx=func.class_name)
            unordered = target == "builtins.set"
        if unordered:
            func.sources.append(
                ("unordered", "iteration over an unordered set",
                 iter_node.lineno))

    # ----------------------------------------------------------- resolution
    def _resolve_expr(self, node: ast.AST,
                      class_ctx: Optional[str] = None) -> Optional[str]:
        """Dotted target of a Name/Attribute chain, or ``self.<method>``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        root = node.id
        if root in ("self", "cls") and class_ctx is not None:
            # Only single-level self.method() is resolvable locally;
            # self.obj.method() goes through an attribute we cannot type.
            if len(parts) == 1:
                return f"self.{parts[0]}"
            return None
        base = self._aliases.get(root)
        if base is None:
            if root in _INTERESTING_BUILTINS and not parts:
                return f"builtins.{root}"
            return None
        return ".".join([base] + parts)


def _is_generator(func_node: ast.AST) -> bool:
    """True if the function's *own* body yields (nested defs excluded)."""
    stack = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def extract_module(path: str, source: str, tree: ast.Module,
                   modname: Optional[str] = None) -> ModuleSummary:
    """Reduce one parsed module to its :class:`ModuleSummary`."""
    return _ModuleExtractor(path, source, tree, modname=modname).summary


# ------------------------------------------------------------------ linking
@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    lineno: int


class CallGraph:
    """Cross-module call graph linked from a set of module summaries."""

    def __init__(self, modules: Sequence[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {
            mod.modname: mod for mod in modules}
        self.functions: Dict[str, FunctionSummary] = {}
        self.function_module: Dict[str, ModuleSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        for mod in modules:
            for qualname, func in mod.functions.items():
                self.functions[qualname] = func
                self.function_module[qualname] = mod
            self.classes.update(mod.classes)
        #: caller qualname -> outgoing edges (sorted, deterministic).
        self.edges: Dict[str, List[CallEdge]] = {}
        #: callee qualname -> incoming edges.
        self.redges: Dict[str, List[CallEdge]] = {}
        self._link()

    # ------------------------------------------------------------- queries
    @property
    def import_graph(self) -> Dict[str, List[str]]:
        """modname -> imported modnames (restricted to analyzed modules)."""
        return {name: sorted(m for m in mod.imports if m in self.modules)
                for name, mod in sorted(self.modules.items())}

    def path_of(self, qualname: str) -> str:
        mod = self.function_module.get(qualname)
        return mod.path if mod is not None else "<unknown>"

    def entry_points(self) -> List[str]:
        """Functions the kernel can drive: spawned targets + generators."""
        entries: Set[str] = set()
        for qualname, func in self.functions.items():
            if func.is_generator:
                entries.add(qualname)
            for target, _ in func.spawns:
                resolved = self.resolve(target, func.class_name)
                if resolved:
                    entries.add(resolved)
        return sorted(entries)

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        return self.redges.get(qualname, [])

    # ------------------------------------------------------------- linking
    def _link(self) -> None:
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            seen: Set[Tuple[str, int]] = set()
            out: List[CallEdge] = []
            for target, lineno in func.calls:
                resolved = self.resolve(target, func.class_name)
                if resolved is None or resolved == qualname:
                    continue
                key = (resolved, lineno)
                if key in seen:
                    continue
                seen.add(key)
                out.append(CallEdge(qualname, resolved, lineno))
            if out:
                self.edges[qualname] = out
                for edge in out:
                    self.redges.setdefault(edge.callee, []).append(edge)

    def resolve(self, target: str,
                class_ctx: Optional[str] = None) -> Optional[str]:
        """Resolve a recorded call target to a known function qualname."""
        if target.startswith("self."):
            if class_ctx is None:
                return None
            return self._resolve_method(class_ctx, target[5:])
        return self._resolve_dotted(target)

    def _resolve_method(self, class_qualname: str, method: str,
                        _depth: int = 0) -> Optional[str]:
        """Look ``method`` up on a class, then its statically known bases."""
        if _depth > 8:
            return None
        cls = self.classes.get(class_qualname)
        if cls is None:
            resolved = self._resolve_dotted(class_qualname)
            cls = self.classes.get(resolved) if resolved else None
            if cls is None:
                return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            found = self._resolve_method(base, method, _depth + 1)
            if found:
                return found
        return None

    def _resolve_dotted(self, target: str,
                        _depth: int = 0) -> Optional[str]:
        if _depth > 8:
            return None
        if target in self.functions:
            return target
        if target in self.classes:
            return self._resolve_method(target, "__init__", _depth + 1)
        # Follow re-export chains: find the longest known-module prefix and
        # walk the remaining attributes through that module's exports.
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            modname = ".".join(parts[:cut])
            mod = self.modules.get(modname)
            if mod is None:
                continue
            rest = parts[cut:]
            exported = mod.exports.get(rest[0])
            if exported is None:
                return None
            rewritten = ".".join([exported] + rest[1:])
            if rewritten == target:
                return None
            return self._resolve_dotted(rewritten, _depth + 1)
        return None
