"""Profile a registry experiment: hot functions + kernel counters.

The harness answers the two questions that matter for simulator speed:

* **where does host CPU go?** — cProfile's top functions by internal time;
* **how hard is the kernel working?** — events processed per host-second,
  the cancelled-timer ratio (dead heap entries discarded vs. events
  processed: high values mean deadline timers are being minted and
  abandoned faster than compaction can absorb), and the heap high-water
  mark (peak outstanding events, a memory and ``heappush`` cost driver).

Everything runs in-process and serially (``jobs`` is forced to 1): a
worker-pool fan-out would escape both cProfile and the kernel counters.
Use ``benchmarks/perf/bench_pr5.py`` for subprocess-isolated wall-clock
comparisons; use this harness to understand *why* a number moved.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.kernel import kernel_stats, reset_kernel_stats


@dataclass
class ProfileReport:
    """Everything one profiling run measured; renderable and JSON-able."""

    experiment: str
    profile: str                       # size profile: quick/default/paper
    wall_seconds: float
    kernel: Dict[str, int]             # snapshot of kernel_stats()
    top_functions: List[Tuple[str, int, float, float]] = field(
        default_factory=list)          # (location, calls, tottime, cumtime)
    peak_traced_mb: Optional[float] = None    # tracemalloc high-water
    trace_top: List[Tuple[str, float]] = field(default_factory=list)
    epochs: Optional[Dict[str, int]] = None   # epoch_stats() (--kernel only)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.kernel.get("events_processed", 0) / self.wall_seconds

    @property
    def cancelled_ratio(self) -> float:
        processed = self.kernel.get("events_processed", 0)
        if processed == 0:
            return 0.0
        return self.kernel.get("cancelled_discarded", 0) / processed

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "profile": self.profile,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_second": round(self.events_per_second, 1),
            "cancelled_ratio": round(self.cancelled_ratio, 6),
            "kernel": dict(self.kernel),
            "top_functions": [
                {"where": where, "calls": calls,
                 "tottime": round(tottime, 6), "cumtime": round(cumtime, 6)}
                for where, calls, tottime, cumtime in self.top_functions],
            "peak_traced_mb": self.peak_traced_mb,
            "tracemalloc_top": [
                {"where": where, "mb": round(mb, 3)}
                for where, mb in self.trace_top],
            "epochs": dict(self.epochs) if self.epochs is not None else None,
        }

    def render(self) -> str:
        k = self.kernel
        lines = [
            f"profile of {self.experiment!r} ({self.profile} profile)",
            "",
            f"  wall time          {self.wall_seconds * 1e3:10.1f} ms",
            f"  events processed   {k.get('events_processed', 0):10d}"
            f"   ({self.events_per_second:,.0f}/s)",
            f"  events scheduled   {k.get('events_scheduled', 0):10d}",
            f"  cancelled dropped  {k.get('cancelled_discarded', 0):10d}"
            f"   (ratio {self.cancelled_ratio:.3f})",
            f"  heap high-water    {k.get('heap_high_water', 0):10d}"
            f"   (compactions {k.get('compactions', 0)})",
            f"  simulators         {k.get('simulators', 0):10d}",
        ]
        if self.peak_traced_mb is not None:
            lines.append(f"  peak traced heap   {self.peak_traced_mb:10.1f} MB")
        if self.epochs is not None:
            e = self.epochs
            lines += [
                "",
                "  kernel breakdown:",
                f"    wheel advances     {k.get('wheel_advances', 0):10d}"
                f"   (cascades {k.get('wheel_cascades', 0)})",
                f"    overflow promoted  {k.get('wheel_overflow', 0):10d}"
                f"   (max bucket {k.get('wheel_max_bucket', 0)})",
                f"    epochs formed      {e.get('epochs_formed', 0):10d}"
                f"   (committed {e.get('epochs_completed', 0)}, "
                f"demoted {e.get('epochs_demoted', 0)})",
                f"    epochs rejected    {e.get('epochs_rejected', 0):10d}"
                f"   (replay records {e.get('epoch_records', 0)})",
            ]
        lines += ["", "  hottest functions (by internal time):"]
        width = max((len(where) for where, *_ in self.top_functions),
                    default=10)
        lines.append(f"    {'function'.ljust(width)}  {'calls':>9}  "
                     f"{'tottime':>8}  {'cumtime':>8}")
        for where, calls, tottime, cumtime in self.top_functions:
            lines.append(f"    {where.ljust(width)}  {calls:>9d}  "
                         f"{tottime:>8.3f}  {cumtime:>8.3f}")
        if self.trace_top:
            lines += ["", "  largest allocation sites (tracemalloc):"]
            for where, mb in self.trace_top:
                lines.append(f"    {mb:8.2f} MB  {where}")
        return "\n".join(lines)


def _shorten(path: str) -> str:
    marker = "repro/"
    index = path.rfind(marker)
    return path[index:] if index >= 0 else path


def profile_experiment(experiment: str, profile: str = "quick",
                       seed: int = 0, top: int = 15,
                       memory: bool = False,
                       kernel_breakdown: bool = False) -> ProfileReport:
    """Run ``experiment`` under cProfile and return a :class:`ProfileReport`.

    ``memory=True`` additionally enables tracemalloc (slower: every
    allocation is traced) and reports the peak traced heap plus the
    largest allocation sites.  ``kernel_breakdown=True`` additionally
    snapshots the fast-path counters — timer-wheel cascade/overflow
    activity and epoch-coalescing commits vs demotions — so a regression
    in either fast path shows up as counter drift, not just wall time.
    """
    from repro.experiments import runner

    tracemalloc = None
    if memory:
        import tracemalloc as tracemalloc_module
        tracemalloc = tracemalloc_module
        tracemalloc.start()
    epoch_stats = None
    if kernel_breakdown:
        from repro.hostmodel.cpu import epoch_stats, reset_epoch_stats
        reset_epoch_stats()
    reset_kernel_stats()
    profiler = cProfile.Profile()
    started = time.perf_counter()  # simlint: disable=no-wallclock
    profiler.enable()
    try:
        runner.run_experiment(experiment, profile=profile, jobs=1, seed=seed)
    finally:
        profiler.disable()
    wall = time.perf_counter() - started  # simlint: disable=no-wallclock
    kernel = kernel_stats()
    epochs = epoch_stats() if epoch_stats is not None else None

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("tottime")
    top_functions: List[Tuple[str, int, float, float]] = []
    for func in stats.fcn_list[:top]:  # (file, line, name)
        cc, ncalls, tottime, cumtime, _ = stats.stats[func]
        filename, lineno, name = func
        if filename == "~":
            where = name  # builtins render as '~:0(<method ...>)'
        else:
            where = f"{_shorten(filename)}:{lineno}({name})"
        top_functions.append((where, ncalls, tottime, cumtime))

    peak_mb = None
    trace_top: List[Tuple[str, float]] = []
    if tracemalloc is not None:
        current, peak = tracemalloc.get_traced_memory()
        peak_mb = peak / (1 << 20)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        for stat in snapshot.statistics("lineno")[:10]:
            frame = stat.traceback[0]
            trace_top.append((f"{_shorten(frame.filename)}:{frame.lineno}",
                              stat.size / (1 << 20)))
    return ProfileReport(experiment=experiment, profile=profile,
                         wall_seconds=wall, kernel=kernel,
                         top_functions=top_functions,
                         peak_traced_mb=peak_mb, trace_top=trace_top,
                         epochs=epochs)


def write_json(report: ProfileReport, path: str) -> None:
    """Write the report's JSON form to ``path``."""
    with open(path, "w") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
