"""Profiling harness for the simulator (``python -m repro profile``).

Wraps any registry experiment in cProfile (and optionally tracemalloc),
combining the Python-level hot-function view with the kernel's own
occupancy counters (events/sec, cancelled-timer ratio, heap high-water
from :func:`repro.sim.kernel.kernel_stats`).  See
:mod:`repro.perf.profiler` and ``docs/performance.md``.
"""

from repro.perf.profiler import ProfileReport, profile_experiment

__all__ = ["ProfileReport", "profile_experiment"]
