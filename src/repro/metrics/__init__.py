"""Measurement infrastructure: CPU accounting, statistics, report rendering.

The paper's evaluation reports three kinds of quantities, all of which this
package measures directly from the simulation rather than estimating:

* per-component CPU utilization breakdowns (Figs 6-8, 12) via
  :class:`~repro.metrics.accounting.CpuAccounting`,
* latency/throughput distributions (Figs 2, 3, 9, 11, 13) via
  :class:`~repro.metrics.stats.SummaryStats`,
* tables/series formatted like the paper's via :mod:`repro.metrics.report`.

Streaming aggregation lives in :mod:`repro.metrics.sinks`: bounded-memory
:class:`MetricSink` accumulators (log-bucketed quantile sketch, windowed
counters, seeded reservoir) that merge deterministically across parallel
jobs — the open-loop load generator (:mod:`repro.load`) reports SLO tails
through them, and :class:`SummaryStats` is built on top.
"""

from repro.metrics.accounting import (
    CpuAccounting,
    FaultCounters,
    UtilizationBreakdown,
)
from repro.metrics.sinks import (
    EmptyMetricError,
    LogHistogram,
    MetricSink,
    Reservoir,
    WindowedCounter,
    sink_digest,
)
from repro.metrics.stats import SummaryStats, percentile
from repro.metrics.timeline import IntervalRecorder, TimeSeries
from repro.metrics.report import Table, format_figure_series
from repro.metrics.tracing import TraceEvent, Tracer

__all__ = [
    "CpuAccounting",
    "EmptyMetricError",
    "FaultCounters",
    "IntervalRecorder",
    "LogHistogram",
    "MetricSink",
    "Reservoir",
    "SummaryStats",
    "Table",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "UtilizationBreakdown",
    "WindowedCounter",
    "format_figure_series",
    "percentile",
    "sink_digest",
]
