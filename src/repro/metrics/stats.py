"""Summary statistics for latency/throughput samples."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class SummaryStats:
    """Streaming collection of samples with common summary accessors."""

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: List[float] = list(samples)

    def add(self, sample: float) -> None:
        self._samples.append(sample)

    def extend(self, samples: Iterable[float]) -> None:
        self._samples.extend(samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return self.total / len(self._samples)

    @property
    def minimum(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return min(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return max(self._samples)

    @property
    def stdev(self) -> float:
        """Population standard deviation (0.0 for a single sample)."""
        if not self._samples:
            raise ValueError("no samples")
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples)
                         / len(self._samples))

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    @property
    def median(self) -> float:
        return self.percentile(50)

    def __repr__(self) -> str:
        if not self._samples:
            return "<SummaryStats empty>"
        return (f"<SummaryStats n={self.count} mean={self.mean:.6g} "
                f"min={self.minimum:.6g} max={self.maximum:.6g}>")
