"""Summary statistics for latency/throughput samples.

:class:`SummaryStats` is implemented on top of the streaming sinks
(:mod:`repro.metrics.sinks`): a seeded bounded :class:`Reservoir` plus a
:class:`LogHistogram` sketch, with exact running aggregates (count, total,
min, max, sum of squares) kept alongside.  While the sample count is
within the reservoir capacity the behaviour is bit-identical to the old
keep-every-sample implementation — percentiles interpolate over the full
sample list, ``stdev`` uses the exact two-pass formula, ``total`` is the
same left-to-right float sum.  Past capacity, memory stays bounded:
percentiles come from the sketch (nearest-rank, bucket resolution) and
``stdev`` from running moments.

Empty-state accessors raise
:class:`~repro.metrics.sinks.EmptyMetricError` — a ``ValueError`` whose
message follows the package-wide ``"<where>: no samples recorded"``
contract (see ``docs/extending.md``).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

from repro.metrics.sinks import EmptyMetricError, LogHistogram, Reservoir

#: Default number of samples SummaryStats retains exactly; experiments in
#: this repo record well under this per stats object, so the exact
#: (pre-sink) behaviour is preserved for all of them.
DEFAULT_RESERVOIR_CAPACITY = 4096


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation."""
    if not samples:
        raise EmptyMetricError("percentile")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class SummaryStats:
    """Streaming collection of samples with common summary accessors.

    ``capacity`` bounds the retained-sample reservoir;
    ``bins_per_decade`` sets the quantile sketch's resolution.  Both
    default to values under which every existing experiment behaves
    exactly as before the sink redesign.
    """

    __slots__ = ("_reservoir", "_sketch", "_count", "_total", "_sumsq",
                 "_min", "_max")

    def __init__(self, samples: Iterable[float] = (),
                 capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 bins_per_decade: int = 100) -> None:
        self._reservoir = Reservoir(capacity=capacity)
        self._sketch = LogHistogram(bins_per_decade=bins_per_decade)
        self._count = 0
        self._total = 0.0
        self._sumsq = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self.extend(samples)

    def add(self, sample: float) -> None:
        sample = float(sample)
        self._count += 1
        self._total += sample
        self._sumsq += sample * sample
        if self._min is None or sample < self._min:
            self._min = sample
        if self._max is None or sample > self._max:
            self._max = sample
        self._reservoir.observe(sample)
        self._sketch.observe(sample)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.add(sample)

    def merge(self, other: "SummaryStats") -> None:
        """Fold another stats object in (multi-job fan-in).

        Exact aggregates combine exactly; the sketch merges bucket-wise.
        Note the float ``total`` adds in call order — digest-grade
        determinism across job topologies comes from the sketch
        (:meth:`sketch_digest`), not from ``total``.
        """
        self._count += other._count
        self._total += other._total
        self._sumsq += other._sumsq
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        self._reservoir.merge(other._reservoir)
        self._sketch.merge(other._sketch)

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return self._count

    @property
    def exact(self) -> bool:
        """True while every sample is retained (exact percentiles/stdev)."""
        return self._reservoir.exact

    @property
    def samples(self) -> Tuple[float, ...]:
        """Retained samples — every sample, in insertion order, while
        :attr:`exact`; a seeded reservoir subset past capacity."""
        return self._reservoir.samples

    @property
    def sketch(self) -> LogHistogram:
        """The underlying quantile sketch (shared, not a copy)."""
        return self._sketch

    def sketch_digest(self) -> str:
        """Canonical digest of the sketch state (determinism gates)."""
        return self._sketch.digest()

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            raise EmptyMetricError("SummaryStats.mean")
        return self._total / self._count

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise EmptyMetricError("SummaryStats.minimum")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise EmptyMetricError("SummaryStats.maximum")
        return self._max

    @property
    def stdev(self) -> float:
        """Population standard deviation (0.0 for a single sample).

        Exact (two-pass over retained samples, matching the historical
        implementation bit-for-bit) while :attr:`exact`; computed from
        running moments once the reservoir has spilled.
        """
        if not self._count:
            raise EmptyMetricError("SummaryStats.stdev")
        if self._reservoir.exact:
            mu = self.mean
            retained = self._reservoir.samples
            return math.sqrt(sum((x - mu) ** 2 for x in retained)
                             / len(retained))
        variance = self._sumsq / self._count - self.mean ** 2
        return math.sqrt(max(0.0, variance))

    def percentile(self, q: float) -> float:
        """Exact interpolated percentile while :attr:`exact`, else the
        sketch's nearest-rank bucket-midpoint quantile."""
        if not self._count:
            raise EmptyMetricError("SummaryStats.percentile")
        if self._reservoir.exact:
            return percentile(self._reservoir.samples, q)
        return self._sketch.quantile(q)

    @property
    def median(self) -> float:
        return self.percentile(50)

    def __repr__(self) -> str:
        if not self._count:
            return "<SummaryStats empty>"
        return (f"<SummaryStats n={self.count} mean={self.mean:.6g} "
                f"min={self.minimum:.6g} max={self.maximum:.6g}>")
