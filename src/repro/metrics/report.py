"""ASCII rendering of tables and figure series.

Benchmarks use these helpers to print the same rows/series the paper
reports, so ``pytest benchmarks/ --benchmark-only`` output can be compared
to the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


class Table:
    """A simple fixed-width ASCII table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_figure_series(title: str,
                         x_label: str,
                         x_values: Sequence,
                         series: Mapping[str, Sequence[float]],
                         unit: str = "") -> str:
    """Render a figure as one row per x-value with one column per series.

    Mirrors reading values off a grouped-bar chart: for Fig 9 this prints
    request sizes down the side and vanilla/vRead x 2vms/4vms across.
    """
    headers = [x_label] + [f"{name}{f' ({unit})' if unit else ''}"
                           for name in series]
    table = Table(headers, title=title)
    for i, x in enumerate(x_values):
        table.add_row(x, *[values[i] for values in series.values()])
    return table.render()


def improvement_pct(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    Positive when ``improved`` is larger — use for throughput.  For latency
    or completion time (lower is better) use :func:`reduction_pct`.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (improved - baseline) / baseline * 100.0


def reduction_pct(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline * 100.0


class GroupedTotals:
    """Per-group aggregation of measurements (e.g. per rack, per host).

    Multi-rack sweeps record one sample per (rack, host) measurement
    point; ``totals()`` rolls them up at any grouping level and
    ``render()`` prints the familiar ASCII table.  Insertion order of
    groups is preserved so deterministic runs render identically::

        agg = GroupedTotals("rack", unit="MB/s")
        agg.add("rack1", 312.0, host="host1")
        agg.add("rack1", 298.5, host="host2")
        agg.add("rack2", 144.8, host="host3")
        agg.totals()   # {"rack1": 610.5, "rack2": 144.8}
    """

    def __init__(self, group_label: str, unit: str = ""):
        self.group_label = group_label
        self.unit = unit
        #: group -> list of (subgroup, value) samples, insertion-ordered.
        self._samples: dict = {}

    def add(self, group: str, value: float,
            host: Optional[str] = None) -> None:
        """Record one sample for ``group`` (optionally tagged by host)."""
        self._samples.setdefault(group, []).append((host, value))

    def groups(self) -> List[str]:
        return list(self._samples)

    def totals(self) -> "dict[str, float]":
        """Sum of samples per group, insertion-ordered."""
        return {group: sum(v for _, v in samples)
                for group, samples in self._samples.items()}

    def means(self) -> "dict[str, float]":
        """Mean of samples per group, insertion-ordered."""
        return {group: sum(v for _, v in samples) / len(samples)
                for group, samples in self._samples.items()}

    def by_host(self) -> "dict[str, float]":
        """Sum of samples per host tag across all groups."""
        out: dict = {}
        for samples in self._samples.values():
            for host, value in samples:
                if host is not None:
                    out[host] = out.get(host, 0.0) + value
        return out

    def render(self, title: Optional[str] = None) -> str:
        """One table row per group: samples, total, mean."""
        unit = f" ({self.unit})" if self.unit else ""
        table = Table([self.group_label, "samples", f"total{unit}",
                       f"mean{unit}"], title=title)
        totals, means = self.totals(), self.means()
        for group, samples in self._samples.items():
            table.add_row(group, len(samples), totals[group], means[group])
        return table.render()

    def __repr__(self) -> str:
        return (f"<GroupedTotals {self.group_label} "
                f"groups={len(self._samples)}>")
