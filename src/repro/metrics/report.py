"""ASCII rendering of tables and figure series.

Benchmarks use these helpers to print the same rows/series the paper
reports, so ``pytest benchmarks/ --benchmark-only`` output can be compared
to the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


class Table:
    """A simple fixed-width ASCII table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_figure_series(title: str,
                         x_label: str,
                         x_values: Sequence,
                         series: Mapping[str, Sequence[float]],
                         unit: str = "") -> str:
    """Render a figure as one row per x-value with one column per series.

    Mirrors reading values off a grouped-bar chart: for Fig 9 this prints
    request sizes down the side and vanilla/vRead x 2vms/4vms across.
    """
    headers = [x_label] + [f"{name}{f' ({unit})' if unit else ''}"
                           for name in series]
    table = Table(headers, title=title)
    for i, x in enumerate(x_values):
        table.add_row(x, *[values[i] for values in series.values()])
    return table.render()


def improvement_pct(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    Positive when ``improved`` is larger — use for throughput.  For latency
    or completion time (lower is better) use :func:`reduction_pct`.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (improved - baseline) / baseline * 100.0


def reduction_pct(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline * 100.0
