"""Streaming metric sinks: bounded-memory, mergeable, deterministic.

The results layer used to accumulate every sample in Python lists
(``SummaryStats``), which made memory grow linearly with sample count and
made multi-job runs impossible to merge reproducibly.  This module is the
redesigned core: a :class:`MetricSink` is a bounded-memory accumulator
that can

* **observe** samples one at a time (streaming, no retained list),
* **merge** with another sink of the same configuration (fan-out across
  ``--jobs N`` workers, then combine), and
* serialize to a canonical **state** whose SHA-256 **digest** is
  byte-identical for any merge order and for serial-vs-parallel runs.

Three concrete sinks cover the package's needs:

:class:`LogHistogram`
    A fixed-bin log-bucketed quantile sketch.  Bucket ``i`` covers values
    in ``[10^(i/b), 10^((i+1)/b))`` for ``b`` bins per decade, so bucket
    membership is a pure function of the value — unlike t-digest the
    result does not depend on insertion order, which is what makes
    ``--jobs N`` byte-identical to serial.  Quantiles use nearest-rank
    selection and return the bucket's geometric midpoint; the relative
    error is bounded by :attr:`LogHistogram.relative_error_bound`.

:class:`WindowedCounter`
    Occurrence counts per fixed time window (throughput, deadline-miss
    tracking).  Integer counts, so merging is exact.

:class:`Reservoir`
    A seeded bounded reservoir (Algorithm R).  Below capacity it retains
    every sample in insertion order — the compatibility path that lets
    :class:`~repro.metrics.stats.SummaryStats` keep its exact historical
    behaviour for small runs.

Empty-state contract
--------------------
Every accessor that needs at least one sample raises
:class:`EmptyMetricError` (a ``ValueError`` subclass) with a message of
the form ``"<where>: no samples recorded"``.  See ``docs/extending.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "EmptyMetricError",
    "LogHistogram",
    "MetricSink",
    "Reservoir",
    "WindowedCounter",
    "sink_digest",
]


class EmptyMetricError(ValueError):
    """An accessor needed samples but the sink/stats object has none.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    handlers (and tests) keep working.  The message always follows
    ``"<where>: no samples recorded"`` so empty-state failures read the
    same across the metrics package.
    """

    def __init__(self, where: str):
        super().__init__(f"{where}: no samples recorded")
        self.where = where


def _canonical(state: Any) -> str:
    """Canonical JSON text for digesting (sorted keys, repr-exact floats).

    Floats go through ``repr`` (shortest round-trip form), so two states
    digest equal iff their floats are bit-equal — the property the
    serial-vs-``--jobs N`` determinism gates check.
    """
    def encode(obj: Any) -> Any:
        if isinstance(obj, float):
            return repr(obj)
        if isinstance(obj, dict):
            return {str(key): encode(value) for key, value in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [encode(item) for item in obj]
        return obj

    return json.dumps(encode(state), sort_keys=True, separators=(",", ":"))


def sink_digest(state: Any) -> str:
    """SHA-256 hex digest of a sink state (or any canonical-able value)."""
    return hashlib.sha256(_canonical(state).encode("ascii")).hexdigest()


class MetricSink:
    """Base class for streaming metric accumulators.

    Subclasses implement :meth:`observe`, :meth:`merge` and
    :meth:`state`; :meth:`digest` is derived.  ``merge`` must be
    associative and commutative on everything :meth:`state` exposes, so
    any fan-out/fan-in topology over the same samples produces the same
    digest.
    """

    def observe(self, value: float) -> None:
        raise NotImplementedError

    def merge(self, other: "MetricSink") -> None:
        raise NotImplementedError

    def state(self) -> Dict[str, Any]:
        """Canonical JSON-able snapshot of the sink's contents."""
        raise NotImplementedError

    def digest(self) -> str:
        """SHA-256 over the canonical state (see :func:`sink_digest`)."""
        return sink_digest(self.state())

    def _require_same_config(self, other: "MetricSink",
                             attribute: str) -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(self).__name__} with "
                f"{type(other).__name__}")
        if getattr(self, attribute) != getattr(other, attribute):
            raise ValueError(
                f"cannot merge {type(self).__name__} sinks with different "
                f"{attribute}: {getattr(self, attribute)!r} != "
                f"{getattr(other, attribute)!r}")


class LogHistogram(MetricSink):
    """Fixed-bin log-bucketed histogram: a deterministic quantile sketch.

    Positive values land in bucket ``floor(log10(v) * bins_per_decade)``;
    zero and negative values are counted in a dedicated underflow bucket
    (latencies are positive, but a sink must not crash on a degenerate
    sample).  Exact minimum and maximum are tracked alongside — both are
    merge-order-invariant — and quantile results are clamped into
    ``[minimum, maximum]`` so a sparse histogram never reports a value
    outside the observed range.
    """

    __slots__ = ("bins_per_decade", "_counts", "_underflow", "_count",
                 "_min", "_max")

    def __init__(self, bins_per_decade: int = 100):
        if bins_per_decade < 1:
            raise ValueError(
                f"bins_per_decade must be positive: {bins_per_decade}")
        self.bins_per_decade = bins_per_decade
        self._counts: Dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------- streaming
    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= 0.0:
            self._underflow += 1
            return
        index = math.floor(math.log10(value) * self.bins_per_decade)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        self._require_same_config(other, "bins_per_decade")
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n
        self._underflow += other._underflow
        self._count += other._count
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max

    # -------------------------------------------------------------- reading
    @property
    def count(self) -> int:
        return self._count

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise EmptyMetricError("LogHistogram.minimum")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise EmptyMetricError("LogHistogram.maximum")
        return self._max

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error of :meth:`quantile`.

        A bucket spans a factor of ``10^(1/b)``; returning its geometric
        midpoint is off from any member by at most ``10^(1/(2b)) - 1``
        (about 1.16% at 100 bins per decade).
        """
        return 10.0 ** (1.0 / (2.0 * self.bins_per_decade)) - 1.0

    def _bucket_midpoint(self, index: int) -> float:
        return 10.0 ** ((index + 0.5) / self.bins_per_decade)

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile (0..100), bucket-resolution.

        Selects the sample of rank ``max(1, ceil(q/100 * count))`` in
        sorted order and returns the geometric midpoint of its bucket,
        clamped into ``[minimum, maximum]``.  Bucketing is monotonic, so
        the selected bucket is exactly the one holding that sample; the
        result is within :attr:`relative_error_bound` of it (for positive
        samples; ranks falling in the underflow bucket report
        ``minimum``).
        """
        if self._count == 0:
            raise EmptyMetricError("LogHistogram.quantile")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        rank = max(1, math.ceil(q / 100.0 * self._count))
        if rank <= self._underflow:
            return self._min  # underflow bucket: all values <= 0
        cumulative = self._underflow
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                midpoint = self._bucket_midpoint(index)
                return min(max(midpoint, self._min), self._max)
        return self._max  # unreachable unless counts were mutated

    def approx_sum(self) -> float:
        """Deterministic approximate sum: midpoint-weighted bucket counts.

        Computed from the (merge-invariant) state in sorted bucket order,
        so unlike a running float total it is identical for any merge
        topology.  Underflow samples contribute zero.
        """
        return sum(self._counts[index] * self._bucket_midpoint(index)
                   for index in sorted(self._counts))

    def state(self) -> Dict[str, Any]:
        return {
            "type": "log_histogram",
            "bins_per_decade": self.bins_per_decade,
            "count": self._count,
            "underflow": self._underflow,
            "counts": [[index, self._counts[index]]
                       for index in sorted(self._counts)],
            "min": self._min,
            "max": self._max,
        }

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (f"<LogHistogram n={self._count} "
                f"buckets={len(self._counts)} b={self.bins_per_decade}>")


class WindowedCounter(MetricSink):
    """Occurrence counts per fixed-width time window.

    ``observe(t)`` increments the window ``floor(t / window_seconds)``.
    Counts are integers, so merges are exact in any order.  Feeds
    throughput ("goodput per second") and SLO-violation time-fraction
    reporting: a consumer compares two counters window-by-window (e.g.
    completions vs deadline misses).
    """

    __slots__ = ("window_seconds", "_windows", "_count")

    def __init__(self, window_seconds: float = 1.0):
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive: {window_seconds}")
        self.window_seconds = float(window_seconds)
        self._windows: Dict[int, int] = {}
        self._count = 0

    def observe(self, time: float) -> None:
        self.add(time, 1)

    def add(self, time: float, n: int = 1) -> None:
        index = math.floor(time / self.window_seconds)
        self._windows[index] = self._windows.get(index, 0) + n
        self._count += n

    def merge(self, other: "WindowedCounter") -> None:
        self._require_same_config(other, "window_seconds")
        for index, n in other._windows.items():
            self._windows[index] = self._windows.get(index, 0) + n
        self._count += other._count

    @property
    def count(self) -> int:
        return self._count

    def windows(self) -> List[Tuple[int, int]]:
        """Sorted ``(window_index, count)`` pairs (empty windows omitted)."""
        return [(index, self._windows[index])
                for index in sorted(self._windows)]

    def get(self, index: int) -> int:
        return self._windows.get(index, 0)

    def rate(self, index: int) -> float:
        """Events per second in window ``index``."""
        return self._windows.get(index, 0) / self.window_seconds

    def span(self) -> Tuple[int, int]:
        """``(first, last)`` populated window indices (inclusive)."""
        if not self._windows:
            raise EmptyMetricError("WindowedCounter.span")
        indices = self._windows.keys()
        return min(indices), max(indices)

    def state(self) -> Dict[str, Any]:
        return {
            "type": "windowed_counter",
            "window_seconds": self.window_seconds,
            "count": self._count,
            "windows": [[index, self._windows[index]]
                        for index in sorted(self._windows)],
        }

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (f"<WindowedCounter n={self._count} "
                f"windows={len(self._windows)} w={self.window_seconds}>")


class Reservoir(MetricSink):
    """Seeded bounded reservoir sample (Vitter's Algorithm R).

    The first ``capacity`` samples are kept verbatim in insertion order;
    past capacity, each new sample replaces a random retained one with
    probability ``capacity / seen``, driven by a private seeded RNG so
    runs are reproducible.  :attr:`exact` reports whether the reservoir
    still holds *every* observed sample — the condition under which
    :class:`~repro.metrics.stats.SummaryStats` serves exact percentiles.

    ``merge`` re-feeds the other reservoir's retained samples through
    :meth:`observe`; once either side has spilled this is a heuristic
    (the result is deterministic but no longer a uniform sample), which
    is why multi-job quantile aggregation uses :class:`LogHistogram`,
    not reservoirs.  The reservoir's own samples are deliberately left
    out of :meth:`state` for the same reason — its digest would not be
    merge-order-invariant; only the counters are exposed.
    """

    __slots__ = ("capacity", "seed", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(f"repro.metrics.reservoir:{seed}")

    def observe(self, value: float) -> None:
        value = float(value)
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def merge(self, other: "Reservoir") -> None:
        self._require_same_config(other, "capacity")
        spilled = other._seen - len(other._samples)
        for value in other._samples:
            self.observe(value)
        self._seen += spilled  # dropped samples still count as seen

    @property
    def count(self) -> int:
        """Total samples observed (including any no longer retained)."""
        return self._seen

    @property
    def exact(self) -> bool:
        """True while every observed sample is still retained."""
        return self._seen == len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        """Retained samples (insertion order while :attr:`exact`)."""
        return tuple(self._samples)

    def state(self) -> Dict[str, Any]:
        return {
            "type": "reservoir",
            "capacity": self.capacity,
            "seed": self.seed,
            "seen": self._seen,
            "retained": len(self._samples),
        }

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (f"<Reservoir {len(self._samples)}/{self.capacity} "
                f"seen={self._seen}>")
