"""Structured event tracing for simulation debugging.

A :class:`Tracer` is a bounded in-memory log of typed events.  The CPU
scheduler emits dispatch/preempt/stacking events when a tracer is attached
(``host.scheduler.tracer = Tracer()``); any component or test can record
its own.  Rendering produces a chronological, grep-friendly text trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record."""
    time: float
    category: str
    name: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def render(self) -> str:
        details = " ".join(f"{key}={value}" for key, value in self.fields)
        return f"[{self.time * 1e3:12.6f}ms] {self.category:10s} {self.name}" \
               + (f" {details}" if details else "")


class Tracer:
    """A bounded, filterable event log."""

    def __init__(self, capacity: int = 100_000,
                 categories: Optional[Iterable[str]] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        #: None = trace everything; otherwise only these categories.
        self.categories = set(categories) if categories is not None else None
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, time: float, category: str, name: str,
               **fields: Any) -> None:
        if not self.wants(category):
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self.recorded += 1
        self._events.append(TraceEvent(time, category, name,
                                       tuple(sorted(fields.items()))))

    def events(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[TraceEvent]:
        return [event for event in self._events
                if (category is None or event.category == category)
                and (name is None or event.name == name)]

    def __len__(self) -> int:
        return len(self._events)

    def render(self, limit: Optional[int] = None) -> str:
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(event.render() for event in events)

    def clear(self) -> None:
        self._events.clear()

    def __repr__(self) -> str:
        return (f"<Tracer events={len(self._events)} "
                f"recorded={self.recorded} dropped={self.dropped}>")
