"""Time-series and interval recording utilities."""

from __future__ import annotations

from typing import List, Optional, Tuple


class TimeSeries:
    """A sequence of (time, value) samples with window aggregation."""

    def __init__(self) -> None:
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError("samples must be recorded in time order")
        self._points.append((time, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._points)

    def values_in(self, start: float, end: float) -> List[float]:
        """Values of samples with start <= time < end."""
        return [v for t, v in self._points if start <= t < end]

    def rate(self, start: float, end: float) -> float:
        """Sum of values in the window divided by its length (e.g. MB/s)."""
        if end <= start:
            raise ValueError("window must have positive length")
        return sum(self.values_in(start, end)) / (end - start)


class IntervalRecorder:
    """Records named begin/end intervals (e.g. per-request service times)."""

    def __init__(self) -> None:
        self._open: dict = {}
        self._closed: List[Tuple[str, float, float]] = []

    def begin(self, key: str, time: float) -> None:
        if key in self._open:
            raise ValueError(f"interval {key!r} already open")
        self._open[key] = time

    def end(self, key: str, time: float) -> float:
        """Close ``key``; returns the interval duration."""
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"interval {key!r} is not open")
        if time < start:
            raise ValueError("interval ends before it starts")
        self._closed.append((key, start, time))
        return time - start

    @property
    def durations(self) -> List[float]:
        return [end - start for _, start, end in self._closed]

    def intervals(self) -> Tuple[Tuple[str, float, float], ...]:
        return tuple(self._closed)

    @property
    def open_count(self) -> int:
        return len(self._open)
