"""Per-thread, per-category CPU time accounting.

Every cycle a simulated thread burns is charged to a *category* — the same
labels the paper uses in its CPU-utilization breakdowns: ``client-application``,
``loop device``, ``data copy(virtio-vqueue)``, ``data copy(vRead-buffer)``,
``vhost-net``, ``rdma``, ``vRead-net``, ``disk read``, ``others``.

The accounting object belongs to a host; the scheduler reports busy
intervals into it as they complete.  Utilization is then *measured* over a
window, exactly like running ``top`` during the experiment.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

# Canonical category names used throughout the code base (paper's labels).
CLIENT_APPLICATION = "client-application"
LOOP_DEVICE = "loop device"
COPY_VIRTIO = "data copy(virtio-vqueue)"
COPY_VREAD_BUFFER = "data copy(vRead-buffer)"
VHOST_NET = "vhost-net"
RDMA = "rdma"
VREAD_NET = "vRead-net"
DISK_READ = "disk read"
OTHERS = "others"

#: Order used when rendering breakdowns, mirroring the paper's legends.
CATEGORY_ORDER = (
    CLIENT_APPLICATION,
    DISK_READ,
    LOOP_DEVICE,
    COPY_VIRTIO,
    COPY_VREAD_BUFFER,
    VHOST_NET,
    VREAD_NET,
    RDMA,
    OTHERS,
)


class CpuAccounting:
    """Accumulates CPU busy time per (thread name, category).

    Supports *marks*: :meth:`snapshot` captures the current totals so a
    later :meth:`since` returns only the activity inside a measurement
    window — experiments use this to exclude setup/teardown work.
    """

    def __init__(self) -> None:
        self._busy: Dict[Tuple[str, str], float] = defaultdict(float)
        self._settle_hooks: list = []
        # (first-charge time, tie-break seq) per key; see _fold_order.
        self._birth: Dict[Tuple[str, str], Tuple[float, int]] = {}
        self._birth_seq = 0
        self._clock: Optional[Callable[[], float]] = None

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Stamp first charges with simulated time (see :meth:`_fold_order`).

        The CPU scheduler wires this to its simulator's clock so key birth
        times are comparable with the coalesced fast path's back-dated
        births; without a clock, births fall back to arrival order.
        """
        self._clock = clock

    def add_settle_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable run before every read.

        The CPU scheduler's coalesced fast path charges lazily; its hook
        folds the already-elapsed boundaries of in-flight bursts into
        ``_busy`` so reads mid-burst see exactly what the per-slice
        reference path would have charged by now.
        """
        self._settle_hooks.append(hook)

    def _settle(self) -> None:
        for hook in self._settle_hooks:
            hook()

    def charge(self, thread_name: str, category: str, seconds: float) -> None:
        """Record ``seconds`` of busy CPU for ``thread_name`` in ``category``."""
        if seconds < 0:
            raise ValueError(f"negative busy time {seconds}")
        key = (thread_name, category)
        if key not in self._birth:
            self._note_birth(key, self._clock() if self._clock is not None
                             else 0.0)
        self._busy[key] += seconds

    def _note_birth(self, key: Tuple[str, str], when: float) -> None:
        self._birth[key] = (when, self._birth_seq)
        self._birth_seq += 1

    def _fold_order(self):
        """``_busy`` items ordered by each key's first charge.

        Float sums are order-sensitive, so every reader folds in a defined
        order: the (time, arrival) at which each key was first charged.
        For the per-slice reference this *is* dict insertion order; the
        coalesced fast path charges a whole burst at its wake-up but
        back-dates each key's birth to the boundary the reference would
        have first charged it at, so both paths fold — and therefore
        round — identically.
        """
        birth = self._birth
        return sorted(self._busy.items(), key=lambda item: birth[item[0]])

    def total(self) -> float:
        """Total busy seconds across all threads and categories."""
        self._settle()
        return sum(seconds for _, seconds in self._fold_order())

    def by_category(self, threads: Optional[Iterable[str]] = None) -> Dict[str, float]:
        """Busy seconds per category, optionally restricted to ``threads``."""
        self._settle()
        wanted = set(threads) if threads is not None else None
        out: Dict[str, float] = defaultdict(float)
        for (thread_name, category), seconds in self._fold_order():
            if wanted is None or thread_name in wanted:
                out[category] += seconds
        return dict(out)

    def by_thread(self) -> Dict[str, float]:
        """Busy seconds per thread across all categories."""
        self._settle()
        out: Dict[str, float] = defaultdict(float)
        for (thread_name, _), seconds in self._fold_order():
            out[thread_name] += seconds
        return dict(out)

    def snapshot(self) -> Dict[Tuple[str, str], float]:
        """Capture current totals (for later :meth:`since`)."""
        self._settle()
        return dict(self._fold_order())

    def since(self, mark: Mapping[Tuple[str, str], float]) -> "CpuAccounting":
        """Return a new accounting holding only activity after ``mark``."""
        self._settle()
        delta = CpuAccounting()
        for key, seconds in self._fold_order():
            diff = seconds - mark.get(key, 0.0)
            if diff > 0:
                delta.charge(key[0], key[1], diff)
        return delta


class FaultCounters:
    """Counts injected faults and recovery actions.

    Names follow a two-level convention: ``fault.<kind>`` for injections
    (e.g. ``fault.datanode-crash``) and ``recovery.<action>`` for the
    resilience machinery's responses (``recovery.replica-failover``,
    ``recovery.fallback-vanilla``, ``recovery.daemon-reprobe``, ...).

    Every count is also emitted through the attached
    :class:`~repro.metrics.tracing.Tracer` (category ``fault``) when one is
    given, stamped with the simulation time supplied by ``clock``.
    """

    def __init__(self, tracer=None,
                 clock: Optional[Callable[[], float]] = None):
        self._counts: Dict[str, int] = defaultdict(int)
        self.tracer = tracer
        self._clock = clock

    def count(self, name: str, **fields) -> int:
        """Increment ``name``; returns the new total for that name."""
        self._counts[name] += 1
        tracer = self.tracer
        if tracer is not None and tracer.wants("fault"):
            now = self._clock() if self._clock is not None else 0.0
            tracer.record(now, "fault", name, **fields)
        return self._counts[name]

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self, prefix: str = "") -> int:
        """Sum of all counts whose name starts with ``prefix``."""
        return sum(count for name, count in self._counts.items()
                   if name.startswith(prefix))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def render(self) -> str:
        """One ``name: count`` line per counter, sorted by name."""
        if not self._counts:
            return "(no fault/recovery events)"
        return "\n".join(f"{name}: {count}"
                         for name, count in sorted(self._counts.items()))

    def __repr__(self) -> str:
        return (f"<FaultCounters faults={self.total('fault.')} "
                f"recoveries={self.total('recovery.')}>")


class UtilizationBreakdown:
    """A CPU-utilization breakdown over a measurement window.

    ``utilization[cat]`` is busy-seconds / (window x cores): the fraction of
    the host's total CPU capacity spent in that category, matching the
    paper's stacked-bar charts.
    """

    def __init__(self, busy_by_category: Mapping[str, float],
                 window_seconds: float, cores: int):
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        if cores < 1:
            raise ValueError("need at least one core")
        self.window_seconds = window_seconds
        self.cores = cores
        capacity = window_seconds * cores
        self.utilization: Dict[str, float] = {
            category: seconds / capacity
            for category, seconds in busy_by_category.items() if seconds > 0
        }

    @property
    def total(self) -> float:
        """Total utilization (fraction of host CPU capacity, 0..1)."""
        return sum(self.utilization.values())

    def get(self, category: str) -> float:
        return self.utilization.get(category, 0.0)

    def merge(self, other: "UtilizationBreakdown") -> "UtilizationBreakdown":
        """Combine two measurement windows into one breakdown.

        Busy-seconds add; the combined window is capacity-weighted (the
        result reports busy / total capacity across both windows), so
        merging a bar's per-point breakdowns from a fanout is equivalent
        to having measured one long window.  Merge order does not matter
        beyond float-addition association.
        """
        merged_busy: Dict[str, float] = {}
        for source in (self, other):
            capacity = source.window_seconds * source.cores
            for category, utilization in source.utilization.items():
                merged_busy[category] = (merged_busy.get(category, 0.0)
                                         + utilization * capacity)
        total_capacity = (self.window_seconds * self.cores
                          + other.window_seconds * other.cores)
        cores = max(self.cores, other.cores)
        return UtilizationBreakdown(merged_busy, total_capacity / cores,
                                    cores)

    def rows(self) -> Iterable[Tuple[str, float]]:
        """(category, utilization) rows in the paper's legend order.

        A plain data iterator, not a simulation process — hence the
        yield-discipline exemptions.
        """
        for category in CATEGORY_ORDER:
            if category in self.utilization:
                yield category, self.utilization[category]  # simlint: disable=yield-discipline
        for category in sorted(self.utilization):
            if category not in CATEGORY_ORDER:
                yield category, self.utilization[category]  # simlint: disable=yield-discipline

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}={u:.1%}" for c, u in self.rows())
        return f"<UtilizationBreakdown total={self.total:.1%} [{parts}]>"
