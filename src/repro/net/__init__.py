"""Network substrate: physical LAN, VM TCP sockets, RDMA over RoCE.

Three layers:

* :class:`~repro.net.lan.Lan` / :class:`~repro.net.lan.HostNic` — the
  physical 10 GbE fabric connecting hosts (bandwidth + switching latency).
* :mod:`repro.net.tcp` — message-oriented TCP sockets between VMs.  A send
  charges the sender vCPU (syscall + per-segment TCP tx + copy), then the
  data crosses either the **intra-host** path (sender VM's vhost-net thread
  performs the inter-VM copy) or the **inter-host** path (vhost-net out,
  host NIC, wire, receiving host's vhost-net in), and finally the receiver
  vCPU pays TCP rx + the kernel-to-application copy.  This is the vanilla
  HDFS data path of the paper's Figure 1.
* :mod:`repro.net.rdma` — queue pairs between *hosts* with NIC-side DMA:
  near-zero CPU per byte, small per-work-request cost.  Used by vRead
  daemons for remote reads (paper Section 3.2), with RoCE semantics (no
  infiniband switch required — the same LAN carries the traffic).
"""

from repro.net.lan import HostNic, Lan
from repro.net.rdma import RdmaLink, RdmaQueuePair
from repro.net.tcp import TcpConnection, TcpListener, VmNetwork

__all__ = [
    "HostNic",
    "Lan",
    "RdmaLink",
    "RdmaQueuePair",
    "TcpConnection",
    "TcpListener",
    "VmNetwork",
]
