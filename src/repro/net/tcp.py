"""Message-oriented TCP between VMs over virtio-net/vhost-net.

This models the paper's vanilla data path (Figure 1).  For every message:

* the **sender vCPU** pays a syscall, per-TSO-segment TCP transmit
  processing, and the user-buffer -> skb copy;
* the **sender VM's vhost-net thread** pays per-segment processing plus the
  per-byte copy out of the VM (straight into the co-located receiver VM, or
  into the host kernel for remote peers);
* remote peers additionally pay host network-stack cycles, the wire time on
  the physical NIC, and the receiving host's vhost-net copy into the VM;
* the **receiver vCPU** pays the virtual interrupt, per-segment TCP receive
  processing, and the kernel -> user copy on ``recv``.

Because the vhost-net threads are schedulable entities on the host's CPU
scheduler, every message crossing VMs synchronizes with up to four threads
(two vCPUs + two I/O threads) — the effect the paper's Figure 3 isolates.

Payloads are real objects (bytes / ByteSource / protocol dataclasses); the
wire size can be given explicitly for control messages.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.hostmodel.costs import CostModel
from repro.metrics.accounting import OTHERS, VHOST_NET
from repro.net.lan import Lan
from repro.sim import SimulationError, Simulator, Store
from repro.storage.content import ByteSource


def payload_size(payload: Any, explicit: Optional[int] = None) -> int:
    """Wire size of a payload: explicit, ByteSource size, or len(bytes)."""
    if explicit is not None:
        if explicit < 0:
            raise ValueError(f"negative payload size {explicit}")
        return explicit
    if isinstance(payload, ByteSource):
        return payload.size
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, memoryview):
        return payload.nbytes
    #: Control/protocol objects default to a small header-sized message.
    return 128


class _Message:
    __slots__ = ("payload", "size")

    def __init__(self, payload: Any, size: int):
        self.payload = payload
        self.size = size


class TcpListener:
    """A passive socket bound to (vm, port); yields connections on accept."""

    def __init__(self, network: "VmNetwork", vm, port: int):
        self.network = network
        self.vm = vm
        self.port = port
        self._backlog = Store(network.sim)

    def accept(self):
        """Generator: wait for and return the next :class:`TcpConnection`."""
        connection = yield self._backlog.get()
        return connection


class _Direction:
    """One direction of a connection: sender-side queue, pipe, receiver queue."""

    def __init__(self, network: "VmNetwork", sender_vm, receiver_vm,
                 inflight_messages: int):
        self.network = network
        self.sender_vm = sender_vm
        self.receiver_vm = receiver_vm
        self.tx = Store(network.sim, capacity=inflight_messages)
        # Bounded receive buffer: an unread backlog eventually blocks the
        # sender (TCP flow control).
        self.rx = Store(network.sim, capacity=inflight_messages)
        network.sim.process(self._pipe())

    def _pipe(self):
        """Move messages through vhost/LAN, preserving FIFO order."""
        costs = self.network.costs
        while True:
            message = yield self.tx.get()
            segments = costs.segments(message.size)
            vhost_cycles = (costs.vhost_segment_cycles * segments
                            + costs.vhost_copy_cycles_per_byte * message.size)
            if self.sender_vm.host is self.receiver_vm.host:
                # Co-located: the sender's vhost-net handles the tx
                # descriptors; the receiver's vhost-net performs the single
                # inter-VM copy into the receiving guest's rx buffers.
                yield from self.sender_vm.vhost.run(
                    costs.vhost_segment_cycles * segments, VHOST_NET)
                yield from self.receiver_vm.vhost.run(vhost_cycles, VHOST_NET)
            else:
                # Out through the host kernel and the physical NIC...
                host_tx_cycles = (
                    costs.host_net_segment_cycles * segments
                    + costs.host_net_copy_cycles_per_byte * message.size)
                yield from self.sender_vm.vhost.run(
                    vhost_cycles + host_tx_cycles, VHOST_NET)
                yield from self.network.lan.transfer(
                    self.sender_vm.host, self.receiver_vm.host, message.size)
                # ...and in through the receiving host's vhost-net.
                host_rx_cycles = (
                    costs.host_net_segment_cycles * segments
                    + costs.host_net_copy_cycles_per_byte * message.size)
                recv_vhost_cycles = (
                    costs.vhost_segment_cycles * segments
                    + costs.vhost_copy_cycles_per_byte * message.size)
                yield from self.receiver_vm.vhost.run(
                    host_rx_cycles + recv_vhost_cycles, VHOST_NET)
            yield self.rx.put(message)


class TcpConnection:
    """An established, bidirectional, message-oriented TCP connection."""

    def __init__(self, network: "VmNetwork", vm_a, vm_b,
                 inflight_messages: int = 8):
        self.network = network
        self.vm_a = vm_a
        self.vm_b = vm_b
        self._directions = {
            vm_a.name: _Direction(network, vm_a, vm_b, inflight_messages),
            vm_b.name: _Direction(network, vm_b, vm_a, inflight_messages),
        }
        self.closed = False

    def _direction_from(self, vm) -> _Direction:
        try:
            direction = self._directions[vm.name]
        except KeyError:
            raise SimulationError(f"{vm.name!r} is not an endpoint")
        if direction.sender_vm is not vm:
            raise SimulationError(f"{vm.name!r} endpoint mismatch")
        return direction

    def peer_of(self, vm):
        if vm is self.vm_a:
            return self.vm_b
        if vm is self.vm_b:
            return self.vm_a
        raise SimulationError(f"{vm.name!r} is not an endpoint")

    def send(self, vm, payload: Any, size: Optional[int] = None,
             copy_category: str = OTHERS, stack_category: str = OTHERS):
        """Generator: send ``payload`` from endpoint ``vm``.

        Blocks (backpressure) when the in-flight window is full.  The
        user->kernel copy is charged to ``copy_category``, TCP processing to
        ``stack_category`` (both on the sender vCPU).
        """
        if self.closed:
            raise SimulationError("connection is closed")
        direction = self._direction_from(vm)
        costs = self.network.costs
        nbytes = payload_size(payload, size)
        segments = costs.segments(nbytes)
        stack_cycles = (costs.syscall_cycles
                        + costs.tcp_tx_segment_cycles * segments)
        yield from vm.vcpu.run(stack_cycles, stack_category)
        copy_cycles = costs.tcp_copy_cycles_per_byte * nbytes
        if copy_cycles:
            yield from vm.vcpu.run(copy_cycles, copy_category)
        yield direction.tx.put(_Message(payload, nbytes))

    def recv(self, vm, copy_category: str = OTHERS,
             stack_category: str = OTHERS):
        """Generator: receive the next message at endpoint ``vm``.

        Returns the payload object.  The kernel->user copy is charged to
        ``copy_category`` on the receiver vCPU.
        """
        if self.closed:
            raise SimulationError("connection is closed")
        peer = self.peer_of(vm)
        direction = self._directions[peer.name]
        message = yield direction.rx.get()
        costs = self.network.costs
        segments = costs.segments(message.size)
        stack_cycles = (costs.virq_cycles + costs.syscall_cycles
                        + costs.tcp_rx_segment_cycles * segments)
        yield from vm.vcpu.run(stack_cycles, stack_category)
        copy_cycles = costs.tcp_copy_cycles_per_byte * message.size
        if copy_cycles:
            yield from vm.vcpu.run(copy_cycles, copy_category)
        return message.payload

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return f"<TcpConnection {self.vm_a.name}<->{self.vm_b.name}>"


class VmNetwork:
    """The TCP/IP service tying VMs, vhost threads, and the LAN together."""

    def __init__(self, sim: Simulator, lan: Lan,
                 costs: Optional[CostModel] = None):
        self.sim = sim
        self.lan = lan
        self.costs = costs or lan.costs
        self._listeners: dict = {}

    def listen(self, vm, port: int) -> TcpListener:
        key = (vm.name, port)
        if key in self._listeners:
            raise SimulationError(f"{vm.name}:{port} already listening")
        listener = TcpListener(self, vm, port)
        self._listeners[key] = listener
        return listener

    def unlisten(self, vm, port: int) -> None:
        """Release a listen port (server VM shut down or removed)."""
        key = (vm.name, port)
        if key not in self._listeners:
            raise SimulationError(f"{vm.name}:{port} is not listening")
        del self._listeners[key]

    def connect(self, client_vm, server_vm, port: int,
                inflight_messages: int = 8):
        """Generator: three-way handshake; returns a :class:`TcpConnection`."""
        key = (server_vm.name, port)
        try:
            listener = self._listeners[key]
        except KeyError:
            raise SimulationError(f"connection refused: {server_vm.name}:{port}")
        costs = self.costs
        yield from client_vm.vcpu.run(costs.syscall_cycles, OTHERS)
        # SYN / SYN-ACK latency: one LAN round trip for remote peers.
        if client_vm.host is not server_vm.host:
            yield self.sim.timeout(2 * costs.lan_latency)
        connection = TcpConnection(self, client_vm, server_vm,
                                   inflight_messages)
        yield listener._backlog.put(connection)
        return connection
