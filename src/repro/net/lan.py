"""The physical fabric: host NICs, top-of-rack switches, aggregation.

Transmission time is paid on the sending host's NIC (a serialized
resource), plus a fixed one-way switching/propagation latency.  The
receiving side's CPU costs are charged by the protocol layers (TCP or
RDMA), not here — DMA puts the bytes in memory either way.

Rack awareness (multi-rack topologies): every host attaches to the LAN
under a rack name.  Traffic between hosts of the same rack crosses only
the top-of-rack switch — the flat single-switch model the paper's
two-host testbed uses, unchanged.  Traffic between racks additionally
crosses the source rack's **aggregation uplink**, a shared, oversubscribed
resource (bandwidth = sum of the rack's NIC bandwidths divided by the
oversubscription ratio) plus two extra store-and-forward switch hops
(ToR -> aggregation -> ToR).  Single-rack clusters never touch the
uplink, so their timing is byte-identical to the pre-rack model.

:func:`host_distance` exposes the HDFS-style network distance
(``0`` same host / ``2`` same rack / ``4`` cross rack) that the placement
policy and the vRead transport selection consume.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hostmodel.costs import CostModel
from repro.sim import Resource, SimulationError, Simulator

#: HDFS-style network distances (NetworkTopology.getDistance analogues).
SAME_HOST = 0
SAME_RACK = 2
CROSS_RACK = 4

#: Rack assigned to hosts attached without an explicit rack (flat LAN).
DEFAULT_RACK = "rack1"


def host_distance(host_a, host_b) -> int:
    """Network distance between two physical hosts (0 / 2 / 4).

    Works from the ``rack`` attribute the LAN stamps on attached hosts;
    hosts without one (bare unit-test fixtures) count as same-rack, which
    reproduces the flat-LAN behaviour.
    """
    if host_a is host_b:
        return SAME_HOST
    rack_a = getattr(host_a, "rack", None)
    rack_b = getattr(host_b, "rack", None)
    if rack_a == rack_b or rack_a is None or rack_b is None:
        return SAME_RACK
    return CROSS_RACK


class HostNic:
    """A host's physical NIC: a serialized transmit queue."""

    def __init__(self, sim: Simulator, host, costs: CostModel):
        self.sim = sim
        self.host = host
        self.costs = costs
        self._tx = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def transmit(self, nbytes: int):
        """Generator: occupy the wire for ``nbytes`` (sender side)."""
        if nbytes < 0:
            raise ValueError(f"negative transmit size {nbytes}")
        with self._tx.request() as grant:
            yield grant
            yield self.sim.timeout(
                nbytes / self.costs.nic_bandwidth_bytes_per_sec)
            self.bytes_sent += nbytes

    def __repr__(self) -> str:
        return f"<HostNic {self.host.name} tx={self.bytes_sent}B>"


class RackUplink:
    """A rack's ToR->aggregation uplink: shared, oversubscribed.

    All cross-rack flows leaving the rack serialize on this resource at
    ``(rack NIC bandwidth sum) / oversubscription`` — the fan-in that
    makes cross-rack reads measurably worse than rack-local ones.
    """

    def __init__(self, sim: Simulator, rack: str, costs: CostModel,
                 n_hosts: int, oversubscription: float):
        self.sim = sim
        self.rack = rack
        self.costs = costs
        self.bandwidth_bytes_per_sec = (
            costs.nic_bandwidth_bytes_per_sec * n_hosts / oversubscription)
        self._tx = Resource(sim, capacity=1)
        self.bytes_sent = 0

    def transmit(self, nbytes: int):
        """Generator: occupy the uplink for ``nbytes`` leaving the rack."""
        with self._tx.request() as grant:
            yield grant
            yield self.sim.timeout(nbytes / self.bandwidth_bytes_per_sec)
            self.bytes_sent += nbytes

    def __repr__(self) -> str:
        return (f"<RackUplink {self.rack} "
                f"{self.bandwidth_bytes_per_sec / 1e9:.2f}GB/s "
                f"tx={self.bytes_sent}B>")


class Lan:
    """The switched fabric connecting physical hosts, rack by rack."""

    def __init__(self, sim: Simulator, costs: Optional[CostModel] = None,
                 oversubscription: float = 1.0):
        self.sim = sim
        self.costs = costs or CostModel()
        if oversubscription < 1.0:
            raise SimulationError(
                f"oversubscription must be >= 1.0: {oversubscription}")
        self.oversubscription = oversubscription
        self._nics: Dict[str, HostNic] = {}
        #: host name -> rack name.
        self._racks: Dict[str, str] = {}
        #: rack name -> lazily-built aggregation uplink.
        self._uplinks: Dict[str, RackUplink] = {}

    def attach(self, host, rack: Optional[str] = None) -> HostNic:
        """Wire a host into the fabric under ``rack`` (default: flat LAN)."""
        if host.name in self._nics:
            raise SimulationError(f"{host.name!r} is already attached")
        nic = HostNic(self.sim, host, self.costs)
        self._nics[host.name] = nic
        host.nic = nic
        host.rack = rack or DEFAULT_RACK
        self._racks[host.name] = host.rack
        return nic

    def detach(self, host) -> None:
        """Unwire a host from the fabric (decommissioned hardware).

        Drops the NIC and rack mapping and invalidates the rack's cached
        aggregation uplink so a later rebuild sizes its bandwidth from the
        hosts actually left in the rack.
        """
        if host.name not in self._nics:
            raise SimulationError(f"{host.name!r} is not attached to the LAN")
        del self._nics[host.name]
        rack = self._racks.pop(host.name)
        self._uplinks.pop(rack, None)
        host.nic = None
        host.rack = None

    def nic_of(self, host) -> HostNic:
        try:
            return self._nics[host.name]
        except KeyError:
            raise SimulationError(f"{host.name!r} is not attached to the LAN")

    def rack_of(self, host) -> str:
        try:
            return self._racks[host.name]
        except KeyError:
            raise SimulationError(f"{host.name!r} is not attached to the LAN")

    def uplink_of(self, rack: str) -> RackUplink:
        """The rack's aggregation uplink (built on first cross-rack use)."""
        uplink = self._uplinks.get(rack)
        if uplink is None:
            n_hosts = sum(1 for r in self._racks.values() if r == rack)
            if n_hosts == 0:
                raise SimulationError(f"no hosts in rack {rack!r}")
            uplink = RackUplink(self.sim, rack, self.costs, n_hosts,
                                self.oversubscription)
            self._uplinks[rack] = uplink
        return uplink

    def same_host(self, host_a, host_b) -> bool:
        return host_a is host_b

    def distance(self, host_a, host_b) -> int:
        """HDFS-style network distance: 0 same host, 2 same rack, 4 cross."""
        return host_distance(host_a, host_b)

    def transfer(self, src_host, dst_host, nbytes: int):
        """Generator: move ``nbytes`` from one host to another on the wire.

        Charges sender NIC occupancy plus the one-way switching latency;
        cross-rack transfers additionally pay the source rack's
        oversubscribed aggregation uplink and two extra switch hops.
        Intra-host "transfers" are a modelling error — callers must
        special-case co-located endpoints.
        """
        if src_host is dst_host:
            raise SimulationError("transfer() called for co-located hosts")
        nic = self.nic_of(src_host)
        yield from nic.transmit(nbytes)
        if host_distance(src_host, dst_host) >= CROSS_RACK:
            yield from self.uplink_of(self.rack_of(src_host)).transmit(nbytes)
            yield self.sim.timeout(2 * self.costs.lan_latency)
        yield self.sim.timeout(self.costs.lan_latency)
        self.nic_of(dst_host).bytes_received += nbytes

    def __repr__(self) -> str:
        return f"<Lan hosts={sorted(self._nics)}>"
