"""The physical LAN: host NICs and the switched 10 GbE fabric.

Transmission time is paid on the sending host's NIC (a serialized
resource), plus a fixed one-way switching/propagation latency.  The
receiving side's CPU costs are charged by the protocol layers (TCP or
RDMA), not here — DMA puts the bytes in memory either way.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hostmodel.costs import CostModel
from repro.sim import Resource, SimulationError, Simulator


class HostNic:
    """A host's physical NIC: a serialized transmit queue."""

    def __init__(self, sim: Simulator, host, costs: CostModel):
        self.sim = sim
        self.host = host
        self.costs = costs
        self._tx = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def transmit(self, nbytes: int):
        """Generator: occupy the wire for ``nbytes`` (sender side)."""
        if nbytes < 0:
            raise ValueError(f"negative transmit size {nbytes}")
        with self._tx.request() as grant:
            yield grant
            yield self.sim.timeout(
                nbytes / self.costs.nic_bandwidth_bytes_per_sec)
            self.bytes_sent += nbytes

    def __repr__(self) -> str:
        return f"<HostNic {self.host.name} tx={self.bytes_sent}B>"


class Lan:
    """A switched LAN connecting physical hosts."""

    def __init__(self, sim: Simulator, costs: Optional[CostModel] = None):
        self.sim = sim
        self.costs = costs or CostModel()
        self._nics: Dict[str, HostNic] = {}

    def attach(self, host) -> HostNic:
        """Wire a host into the LAN, installing its NIC."""
        if host.name in self._nics:
            raise SimulationError(f"{host.name!r} is already attached")
        nic = HostNic(self.sim, host, self.costs)
        self._nics[host.name] = nic
        host.nic = nic
        return nic

    def nic_of(self, host) -> HostNic:
        try:
            return self._nics[host.name]
        except KeyError:
            raise SimulationError(f"{host.name!r} is not attached to the LAN")

    def same_host(self, host_a, host_b) -> bool:
        return host_a is host_b

    def transfer(self, src_host, dst_host, nbytes: int):
        """Generator: move ``nbytes`` from one host to another on the wire.

        Charges sender NIC occupancy plus the one-way LAN latency.  Intra-
        host "transfers" are a modelling error — callers must special-case
        co-located endpoints.
        """
        if src_host is dst_host:
            raise SimulationError("transfer() called for co-located hosts")
        nic = self.nic_of(src_host)
        yield from nic.transmit(nbytes)
        yield self.sim.timeout(self.costs.lan_latency)
        self.nic_of(dst_host).bytes_received += nbytes

    def __repr__(self) -> str:
        return f"<Lan hosts={sorted(self._nics)}>"
