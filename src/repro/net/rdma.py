"""RDMA over Converged Ethernet (RoCE) between hosts.

Models the verbs the paper's vRead daemons use (``ibv_reg_mr``,
``ibv_post_send``, ``ibv_post_recv``): a :class:`RdmaQueuePair` connects two
daemon threads on different hosts.  The defining property is the CPU-cost
asymmetry against TCP: the NIC DMAs payload bytes directly between
registered memory regions, so per-byte CPU is ~zero and only small
per-work-request costs hit the CPUs.  Wire time is still paid on the same
10 GbE LAN (RoCE, not infiniband).

The paper's prototype uses an *active push* model — the datanode-side
daemon posts RDMA writes into the client host's ring buffer — so the
sender/datanode side carries more of the (already small) RDMA CPU cost,
visible in Figure 7's breakdown.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.hostmodel.costs import CostModel
from repro.metrics.accounting import RDMA
from repro.net.lan import Lan
from repro.net.tcp import payload_size
from repro.sim import SimulationError, Simulator, Store


class RdmaError(Exception):
    """A work request failed because the RDMA link is down (link flap)."""


class RdmaLink:
    """Factory/registry for queue pairs between hosts on a RoCE LAN.

    A link *flap* (:meth:`fail`/:meth:`restore`) fails every in-flight and
    subsequent work request with :class:`RdmaError`; the vRead transport
    layer reacts by falling back to its TCP path until the link recovers.
    """

    def __init__(self, sim: Simulator, lan: Lan,
                 costs: Optional[CostModel] = None):
        self.sim = sim
        self.lan = lan
        self.costs = costs or lan.costs
        self.down = False
        self.failures = 0

    def fail(self) -> None:
        """Take the link down (start of a flap)."""
        self.down = True

    def restore(self) -> None:
        """Bring the link back up."""
        self.down = False

    def _check_up(self) -> None:
        if self.down:
            self.failures += 1
            raise RdmaError("RDMA link is down")

    def queue_pair(self, local_host, local_thread, remote_host,
                   remote_thread) -> Tuple["RdmaQueuePair", "RdmaQueuePair"]:
        """Create a connected QP pair (one endpoint per host).

        Each endpoint registers its memory region at creation, paying the
        one-time ``ibv_reg_mr`` cost lazily on first use.
        """
        if local_host is remote_host:
            raise SimulationError("RDMA endpoints must be on different hosts")
        a = RdmaQueuePair(self, local_host, local_thread)
        b = RdmaQueuePair(self, remote_host, remote_thread)
        a._peer, b._peer = b, a
        return a, b


class RdmaQueuePair:
    """One endpoint of an RDMA connection (QP + CQ + registered MR)."""

    def __init__(self, link: RdmaLink, host, thread):
        self.link = link
        self.host = host
        #: The daemon thread that posts/reaps work requests at this end.
        self.thread = thread
        self._peer: Optional["RdmaQueuePair"] = None
        self._receive_queue = Store(link.sim)
        self._mr_registered = False
        self.messages_sent = 0
        self.bytes_sent = 0

    @property
    def peer(self) -> "RdmaQueuePair":
        if self._peer is None:
            raise SimulationError("queue pair is not connected")
        return self._peer

    def _ensure_mr(self):
        """Pay the one-time memory-region registration cost."""
        if not self._mr_registered:
            self._mr_registered = True
            yield from self.thread.run(
                self.link.costs.rdma_mr_registration_cycles, RDMA)

    def post_send(self, payload: Any, size: Optional[int] = None):
        """Generator: ibv_post_send — push a message to the peer's memory.

        The local CPU pays per-WR posting cost plus a tiny per-byte cost;
        the NIC pays the wire time; the peer's CPU pays nothing until it
        reaps the completion in :meth:`poll_recv`.
        """
        peer = self.peer
        costs = self.link.costs
        nbytes = payload_size(payload, size)
        self.link._check_up()
        yield from self._ensure_mr()
        post_cycles = (costs.rdma_work_request_cycles
                       + costs.rdma_copy_cycles_per_byte * nbytes)
        yield from self.thread.run(post_cycles, RDMA)
        self.link._check_up()
        yield from self.link.lan.transfer(self.host, peer.host, nbytes)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        yield peer._receive_queue.put((payload, nbytes))

    def prune_cancelled(self) -> int:
        """Drop receive waiters orphaned by an interrupted poller."""
        return self._receive_queue.prune_cancelled()

    def poll_recv(self):
        """Generator: wait for the next completed receive; returns payload.

        The local CPU pays the completion-queue reap cost.
        """
        payload, _ = yield self._receive_queue.get()
        yield from self._ensure_mr()
        yield from self.thread.run(
            self.link.costs.rdma_work_request_cycles, RDMA)
        return payload

    def __repr__(self) -> str:
        return f"<RdmaQueuePair host={self.host.name} sent={self.messages_sent}>"
