"""repro — reproduction of vRead (Middleware '15) on a simulated cloud.

vRead gives HDFS clients in VMs a hypervisor-level shortcut to the block
files on datanode VMs' disk images, skipping the virtio/vhost/TCP copy
chain.  This package implements the whole stack — discrete-event simulator,
KVM-like hosts, virtio devices, page caches, networks, HDFS, and vRead
itself — plus the workloads and experiment drivers that regenerate every
table and figure in the paper.

Start here::

    from repro.cluster import VirtualHadoopCluster

    cluster = VirtualHadoopCluster(vread=True)

or run ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
