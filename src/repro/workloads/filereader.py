"""The "simple Java application" of the delay microbenchmarks (Figs 2, 9).

Reads a file either from the VM's local filesystem (the baseline in Fig 2)
or from HDFS (vanilla or vRead client), with a configurable request size,
recording the delay of every request.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.accounting import CLIENT_APPLICATION
from repro.metrics.stats import SummaryStats


class FileReadBenchmark:
    """Per-request read-delay measurement over local-FS or HDFS files."""

    def __init__(self, request_bytes: int):
        if request_bytes <= 0:
            raise ValueError(f"request size must be positive: {request_bytes}")
        self.request_bytes = request_bytes
        self.delays = SummaryStats()

    # -------------------------------------------------------------- local FS
    def read_local(self, vm, path: str):
        """Generator: read ``path`` from the VM's own filesystem.

        The baseline of Figure 2: only the disk->guest-kernel and
        kernel->application copies are involved.
        """
        sim = vm.sim
        size = vm.guest_fs.size(path)
        offset = 0
        while offset < size:
            length = min(self.request_bytes, size - offset)
            start = sim.now
            yield from vm.read_file(path, offset, length,
                                    copy_category=CLIENT_APPLICATION)
            self.delays.add(sim.now - start)
            offset += length
        return self.delays

    # ------------------------------------------------------------------ HDFS
    def read_hdfs(self, client, path: str):
        """Generator: read ``path`` through an HDFS client (vanilla/vRead)."""
        sim = client.vm.sim
        stream = yield from client.open(path)
        while True:
            start = sim.now
            piece = yield from stream.read(self.request_bytes)
            if piece is None:
                break
            self.delays.add(sim.now - start)
        stream.close()
        return self.delays

    @property
    def mean_delay(self) -> float:
        return self.delays.mean

    def __repr__(self) -> str:
        return (f"<FileReadBenchmark req={self.request_bytes}B "
                f"n={self.delays.count}>")
