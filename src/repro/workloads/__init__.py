"""Workloads: the benchmarks and applications the paper evaluates with.

* :mod:`repro.workloads.lookbusy` — the lookbusy CPU-load generator used as
  background VM load (85% in the paper).
* :mod:`repro.workloads.netperf` — netperf TCP_RR between two VMs (Fig 3).
* :mod:`repro.workloads.filereader` — the "simple Java application" used
  for the data-access-delay microbenchmarks (Figs 2 and 9).
* :mod:`repro.workloads.mapreduce` — a mini MapReduce engine over HDFS.
* :mod:`repro.workloads.testdfsio` — TestDFSIO read/re-read/write
  (Figs 11, 12, 13).
* :mod:`repro.workloads.hbase` — an HBase-like store (Table 2).
* :mod:`repro.workloads.hive` — a Hive-like SQL scan (Table 3).
* :mod:`repro.workloads.sqoop` — a Sqoop-like export to MySQL (Table 3).
"""

from repro.workloads.filereader import FileReadBenchmark
from repro.workloads.hbase import HBaseOpResult, HBaseTable
from repro.workloads.hive import HiveTable, QueryResult
from repro.workloads.lookbusy import Lookbusy
from repro.workloads.mapreduce import MapSpec, MiniMapReduce, TaskResult
from repro.workloads.netperf import NetperfRR
from repro.workloads.sqoop import ExportResult, MySqlServer, SqoopExport
from repro.workloads.testdfsio import DfsioResult, TestDfsio

__all__ = [
    "DfsioResult",
    "ExportResult",
    "FileReadBenchmark",
    "HBaseOpResult",
    "HBaseTable",
    "HiveTable",
    "Lookbusy",
    "MapSpec",
    "MiniMapReduce",
    "MySqlServer",
    "NetperfRR",
    "QueryResult",
    "SqoopExport",
    "TaskResult",
    "TestDfsio",
]
